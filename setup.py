"""Legacy entry point so `setup.py develop` works in offline environments
that lack the `wheel` package (all metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
