#!/usr/bin/env python3
"""The extensible HTTP server with load balancing (paper §3.2).

Compares four cluster configurations at one load level (figure 8's
operating point): a single server, the PLAN-P gateway over two servers,
the built-in "C" gateway, and two servers with disjoint clients.

Run:  python examples/http_cluster.py
"""

from repro.apps.http import run_http_experiment


def main() -> None:
    n_clients = 8
    results = {}
    for mode in ("single", "asp", "builtin", "disjoint"):
        results[mode] = run_http_experiment(mode=mode,
                                            n_clients=n_clients,
                                            duration=12.0, warmup=3.0)

    print(f"{'configuration':12s} {'throughput':>12s} {'latency':>9s} "
          f"{'balance':>8s}")
    for mode, r in results.items():
        print(f"{mode:12s} {r.throughput_rps:9.1f} rps "
              f"{r.mean_latency_s * 1000:6.1f} ms "
              f"{r.balance_ratio:8.2f}")

    asp = results["asp"].throughput_rps
    single = results["single"].throughput_rps
    builtin = results["builtin"].throughput_rps
    disjoint = results["disjoint"].throughput_rps
    print(f"\nASP gateway vs single server: {asp / single:.2f}x "
          f"(paper: 1.75x)")
    print(f"ASP gateway vs disjoint pair:  {asp / disjoint:.2f} "
          f"(paper: ~0.85)")
    print(f"ASP gateway vs built-in C:     {asp / builtin:.2f} "
          f"(paper: 'little or no difference')")


if __name__ == "__main__":
    main()
