#!/usr/bin/env python3
"""Image distillation over a slow link (paper section 5, implemented).

A mobile client behind a 64 kbit/s access link fetches an image
catalogue.  With the distiller ASP on the border router, oversized
images are downscaled in flight to fit a byte budget: fetches that took
seconds complete in fractions of a second, at reduced fidelity.

Run:  python examples/image_distillation.py
"""

from repro.apps.images import run_image_experiment


def main() -> None:
    plain = run_image_experiment(distillation=False)
    distilled = run_image_experiment(distillation=True)

    print(f"{'image':20s} {'original':>9s} {'plain-lat':>10s} "
          f"{'distilled':>10s} {'dist-lat':>9s} {'size':>11s}")
    for p in plain.fetches:
        d = distilled.result_for(p.name)
        print(f"{p.name:20s} {p.original_bytes:8d}B "
              f"{p.latency * 1000:8.1f}ms {d.received_bytes:8d}B "
              f"{d.latency * 1000:7.1f}ms {d.width}x{d.height}")

    speedup = plain.mean_latency() / distilled.mean_latency()
    print(f"\nmean fetch latency: {plain.mean_latency() * 1000:.0f} ms -> "
          f"{distilled.mean_latency() * 1000:.0f} ms "
          f"({speedup:.1f}x faster)")
    print(f"images distilled: {distilled.distilled_count} of "
          f"{len(distilled.fetches)}")


if __name__ == "__main__":
    main()
