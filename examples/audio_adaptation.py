#!/usr/bin/env python3
"""Audio broadcasting with in-router bandwidth adaptation (paper §3.1).

Reproduces figure 6 on a scaled clock (60 s instead of 450 s): as the
load generator steps through large / medium / small loads, the router
ASP degrades the stream to 8-bit mono, oscillates, and settles at
16-bit mono — and the client ASP restores every frame so the unmodified
player always sees 16-bit stereo.

Run:  python examples/audio_adaptation.py
"""

from repro.apps.audio import run_audio_experiment, run_gap_sweep
from repro.apps.audio.codec import FORMAT_NAMES


def main() -> None:
    duration = 60.0
    print(f"figure 6 (scaled to {duration:.0f} s) — "
          f"audio bandwidth at the client:")
    result = run_audio_experiment(duration=duration)
    for sample in result.bandwidth_series:
        bar = "#" * int(sample.kbps / 4)
        name = FORMAT_NAMES[sample.quality]
        print(f"  t={sample.time:5.1f}s {sample.kbps:7.1f} kbit/s "
              f"{name:14s} {bar}")

    print(f"\nframes: {result.frames_received}/{result.frames_sent} "
          f"received; every frame restored to 16-bit stereo: "
          f"{result.restored}")
    print(f"silent periods with adaptation: {result.silent_periods}")

    print("\nfigure 7 — silent periods under constant load, with vs "
          "without adaptation:")
    sweep = run_gap_sweep(
        load_levels_bps=[1_000_000, 1_500_000, 1_900_000],
        duration=30.0)
    print(f"  {'load':>10s} {'with-ASP':>9s} {'without':>9s}")
    for load, row in sweep.items():
        print(f"  {load/1e6:9.1f}M {row['with_adaptation']:9d} "
              f"{row['without_adaptation']:9d}")


if __name__ == "__main__":
    main()
