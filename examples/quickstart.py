#!/usr/bin/env python3
"""Quickstart: write an ASP, verify it, JIT it, push packets through it.

This exercises the library's core pipeline without a network simulation:
parse -> type check -> the four safety analyses -> JIT compilation ->
channel execution against a recording context.

Run:  python examples/quickstart.py
"""

from repro.interp import RecordingContext
from repro.jit import load_program
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader

# An ASP in PLAN-P: redirect web traffic for one host to a mirror, count
# everything else through untouched.
SOURCE = """
val mirror : host = 10.9.9.9
val origin : host = 10.1.1.1

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  let
    val iph : ip = #1 p
    val tcp : tcp = #2 p
  in
    if tcpDst(tcp) = 80 andalso ipDst(iph) = origin then
      (OnRemote(network, (ipDestSet(iph, mirror), tcp, #3 p));
       (ps + 1, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""


def main() -> None:
    # load_program runs the full download path: parse, type check, the
    # four safety analyses of the paper, then JIT compilation.
    loaded = load_program(SOURCE, backend="closure",
                          source_name="quickstart")
    print(f"verified + compiled {loaded.source_lines} lines in "
          f"{loaded.codegen_ms:.2f} ms")

    ctx = RecordingContext()
    channel = loaded.info.channels["network"][0]
    ps: object = 0
    ss = loaded.engine.initial_channel_state(channel, ctx)

    packets = [
        (IpHeader(src=HostAddr.parse("10.2.2.2"),
                  dst=HostAddr.parse("10.1.1.1")),
         TcpHeader(src_port=55555, dst_port=80), b"GET / HTTP/1.0"),
        (IpHeader(src=HostAddr.parse("10.2.2.2"),
                  dst=HostAddr.parse("10.1.1.1")),
         TcpHeader(src_port=55555, dst_port=22), b"ssh"),
    ]
    for packet in packets:
        ps, ss = loaded.engine.run_channel(channel, ps, ss, packet, ctx)

    for emission in ctx.emissions:
        ip = emission.packet_value[0]
        tcp = emission.packet_value[1]
        print(f"emitted on {emission.channel!r}: {ip.src} -> {ip.dst} "
              f"port {tcp.dst_port}")
    print(f"redirected connections counted by protocol state: {ps}")

    assert ps == 1
    assert str(ctx.emissions[0].packet_value[0].dst) == "10.9.9.9"
    assert str(ctx.emissions[1].packet_value[0].dst) == "10.1.1.1"
    print("quickstart OK")


if __name__ == "__main__":
    main()
