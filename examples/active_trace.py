#!/usr/bin/env python3
"""An active-networks classic: in-network traceroute with a user channel.

A user-defined PLAN-P channel accumulates each hop's address into the
packet payload as it crosses the network — the kind of "new packet
processing behaviour injected into routers" that active networks were
invented for, using channel tagging (paper section 2: user-defined
channels carry an identification tag).

Run:  python examples/active_trace.py
"""

from repro.net import Network
from repro.runtime import Deployment, PlanPLayer

# Each PLAN-P node appends its own address to the path; when the packet
# reaches its destination the accumulated string is delivered.
TRACE_ASP = """
channel trace(ps : int, ss : unit, p : ip*udp*string) is
  let
    val iph : ip = #1 p
    val hops : string = #3 p ^ " " ^ hostToString(thisHost())
  in
    if ipDst(iph) = thisHost() then
      (deliver((iph, #2 p, hops)); (ps + 1, ss))
    else
      (OnRemote(trace, (iph, #2 p, hops)); (ps, ss))
  end
"""


def main() -> None:
    net = Network(seed=2)
    source = net.add_host("source")
    routers = [net.add_router(f"hop{i}") for i in range(4)]
    target = net.add_host("target")
    previous = source
    for router in routers:
        net.link(previous, router)
        previous = router
    net.link(previous, target)
    net.finalize()

    deployment = Deployment()
    record = deployment.install(TRACE_ASP, routers + [target],
                                source_name="active-trace")
    print(f"verified and installed on {len(record.nodes)} nodes "
          f"({record.report.summary().count('PASS')} analyses passed)")

    # Launch a trace packet on the user channel from the source.
    paths = []
    sock = net.udp(target).bind(9999)
    sock.on_datagram = lambda data, src, sport: paths.append(
        data.decode("latin-1"))

    from repro.runtime import codec
    from repro.net.packet import IpHeader, UdpHeader

    probe = codec.encode(
        (IpHeader(src=source.address, dst=target.address, proto=17),
         UdpHeader(src_port=9999, dst_port=9999), "trace:"),
        channel="trace")
    source.ip_send(probe)
    net.run(until=1.0)

    assert len(paths) == 1, "trace packet did not arrive"
    print("path recorded in-network:")
    for hop in paths[0].split(" ")[1:]:
        print(f"  -> {hop}")
    hops = paths[0].split(" ")[1:]
    assert len(hops) == len(routers) + 1  # every router plus the target
    print("active traceroute OK")


if __name__ == "__main__":
    main()
