#!/usr/bin/env python3
"""Late checking in action (paper §2.1).

Shows the four safety analyses accepting every shipped ASP and
rejecting three adversarial programs: a destination ping-pong (packet
cycle), a silent discarder (no guaranteed delivery), and an exponential
duplicator.

Run:  python examples/verifier_demo.py
"""

from repro.analysis import verify_report
from repro.asps import (audio_client_asp, audio_router_asp,
                        http_gateway_asp, mpeg_client_asp,
                        mpeg_monitor_asp)
from repro.lang import parse, typecheck

GOOD = {
    "audio-router": audio_router_asp(),
    "audio-client": audio_client_asp(),
    "http-gateway": http_gateway_asp("10.0.1.2",
                                     ["10.0.2.2", "10.0.3.2"]),
    "mpeg-monitor": mpeg_monitor_asp(),
    "mpeg-client": mpeg_client_asp(),
}

BAD = {
    # Ping-pong: every packet bounces back toward its sender, forever.
    "ping-pong": """
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, (ipSwap(#1 p), udpSwap(#2 p), #3 p)); (ps, ss))
""",
    # Black hole: packets for port 7 silently vanish.
    "black-hole": """
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = 7 then
    (ps + 1, ss)
  else
    (OnRemote(network, p); (ps, ss))
""",
    # Amplifier: two copies per hop -> exponential duplication.
    "amplifier": """
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); OnRemote(network, p); (ps, ss))
""",
}


def show(name: str, source: str) -> None:
    report = verify_report(typecheck(parse(source, name)))
    verdict = "ACCEPTED" if report.passed else "REJECTED"
    print(f"\n=== {name}: {verdict}")
    print(report.summary())


def main() -> None:
    for name, source in GOOD.items():
        show(name, source)
    for name, source in BAD.items():
        show(name, source)


if __name__ == "__main__":
    main()
