#!/usr/bin/env python3
"""Deploying ASPs over the network itself (paper section 5's "protocol
management functionalities, such as ASP deployment").

An administration host pushes a PLAN-P program to three routers; each
router verifies it locally (late checking) before installing.  A second,
unsafe program is rejected by every router.

Run:  python examples/network_deployment.py
"""

from repro.net import Network
from repro.runtime import DeploymentManager, DeploymentService

FORWARD = """
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""

AMPLIFIER = """
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); OnRemote(network, p); (ps, ss))
"""


def main() -> None:
    net = Network(seed=1)
    admin = net.add_host("admin")
    routers = [net.add_router(f"r{i}") for i in range(3)]
    previous = admin
    for router in routers:
        net.link(previous, router, bandwidth=100e6)
        previous = router
    net.finalize()

    services = [DeploymentService(net, r) for r in routers]
    manager = DeploymentManager(net, admin)

    good = manager.push(FORWARD, [r.address for r in routers],
                        name="forwarder")
    bad = manager.push(AMPLIFIER, [r.address for r in routers],
                       name="amplifier")
    net.run(until=2.0)

    for xfer in (good, bad):
        print(f"push {xfer!r}:")
        for addr, status in manager.status(xfer).items():
            if status.ok:
                print(f"  {addr}: installed "
                      f"(codegen {status.codegen_ms:.2f} ms)")
            else:
                print(f"  {addr}: REJECTED — {status.detail[:60]}...")

    assert manager.all_ok(good)
    assert not manager.all_ok(bad)
    assert all(s.installed == ["forwarder"] for s in services)
    print("\nall routers run the safe program; the amplifier was "
          "rejected by late checking on every node")


if __name__ == "__main__":
    main()
