#!/usr/bin/env python3
"""Point-to-point to multipoint MPEG delivery (paper §3.3).

Three viewers on one segment watch the same live stream.  With the
monitor and capture ASPs deployed, only the first opens a real server
connection; the other two discover it through the monitor and capture
the stream off the segment.  Server egress shrinks to one stream while
every viewer keeps the full frame rate.

Run:  python examples/mpeg_multipoint.py
"""

from repro.apps.mpeg import run_mpeg_experiment


def main() -> None:
    n_clients = 3
    with_asps = run_mpeg_experiment(use_asps=True, n_clients=n_clients,
                                    duration=15.0, warmup=2.0)
    without = run_mpeg_experiment(use_asps=False, n_clients=n_clients,
                                  duration=15.0, warmup=2.0)

    for result in (without, with_asps):
        label = "with ASPs" if result.use_asps else "no ASPs"
        rates = ", ".join(f"{r:.1f}" for r in result.per_client_rate)
        print(f"{label:10s} server sessions: {result.server_sessions}  "
              f"uplink: {result.uplink_bytes / 1e6:5.2f} MB  "
              f"client fps: [{rates}]  modes: {result.modes}")

    saved = 1 - with_asps.uplink_bytes / without.uplink_bytes
    print(f"\nupstream traffic saved by sharing: {saved:.0%}")
    print(f"no traffic-rate degradation: "
          f"{with_asps.all_clients_at_full_rate}")


if __name__ == "__main__":
    main()
