"""The IP/PLAN-P layer of a node (paper figure 1).

One instance per node holds the downloaded program, its execution engine
(interpreter or JIT), the shared protocol state and per-channel states,
and implements the :class:`ExecutionContext` primitives against the node.

Dispatch rules (paper §2 and §2.3):

* a packet tagged with a user-defined channel name runs that channel;
* an untagged packet runs the first ``network`` overload whose declared
  packet type matches the wire packet;
* unmatched packets fall through to standard IP processing.

Steady-state dispatch takes a fast path precomputed at install time: a
table keyed by (channel tag, transport-header class) maps straight to
the candidate :class:`~repro.lang.ast.ChannelDecl`\\ s with their payload
size constraints and prebuilt decoders, so classifying a packet is one
dict lookup plus a length check instead of a structural type walk — and
the decl matched in :meth:`PlanPLayer.wants` is carried into
:meth:`PlanPLayer.process`, so each packet is matched exactly once.

A verified program cannot raise at run time on any *delivered* path, but
the layer still guards: if a channel invocation fails — including a
decoder choking on a truncated or garbage payload, or an emission that
cannot be encoded — the packet falls back to standard processing and the
error is counted — an unverified (privileged) program must not take the
node down.

The layer also carries the hooks of the ASP lifecycle manager
(:mod:`repro.runtime.lifecycle`): a ``quarantined`` gate that reverts
the node to standard IP processing while an error-budget circuit
breaker is open, per-packet success/error callbacks feeding that
breaker, and :meth:`snapshot_program` / :meth:`restore_program` so a
rollback can reinstate the previous generation *with* its protocol and
channel state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..interp.values import default_value
from ..jit.batching import BatchFault, run_rows
from ..jit.pipeline import Engine, LoadedProgram, load_program
from ..lang import ast
from ..lang import types as T
from ..lang.errors import PlanPError
from ..net.addresses import HostAddr
from ..net.node import Interface, Node
from ..net.packet import Packet
from ..net.sim import SerialResource
from ..obs.metrics import Histogram
from . import codec

if TYPE_CHECKING:
    from .lifecycle import NodeLifecycle


@dataclass
class PlanPStats:
    packets_processed: int = 0
    packets_emitted: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    runtime_errors: int = 0
    #: dispatch decisions answered by the precomputed match table
    fastpath_dispatches: int = 0
    #: dispatch decisions that fell back to the structural matcher
    structural_dispatches: int = 0
    #: tier-3 batch executions (same-entry runs of two or more packets
    #: folded through one specialized loop)
    fastpath_batches: int = 0
    #: packets that went through those batch executions
    batched_packets: int = 0


@dataclass
class ProgramSnapshot:
    """A program plus its live state, captured for rollback.

    The lifecycle manager snapshots the running generation before a new
    one replaces it; :meth:`PlanPLayer.restore_program` reinstates the
    program *and* the protocol/channel state it had accumulated —
    rollback does not reset a restored protocol to its initial state.
    """

    loaded: LoadedProgram
    protocol_state: object
    channel_states: dict[int, object] = field(default_factory=dict)


#: missing-channel-state sentinel (``None`` is a legal state value)
_NO_STATE = object()


class _DispatchEntry:
    """One channel overload in the fast-path match table."""

    __slots__ = ("decl", "plan", "hit")

    def __init__(self, decl: ast.ChannelDecl, plan: codec.DispatchPlan):
        self.decl = decl
        self.plan = plan
        #: the classification result handed out for every packet this
        #: entry admits — one stable tuple, so the batch drain can group
        #: same-entry runs by identity with no per-packet allocation
        self.hit = (decl, plan.decode, plan)


class PlanPLayer:
    """The extensible packet-processing layer of one node."""

    def __init__(self, node: Node, promiscuous: bool = False):
        self.node = node
        node.planp = self
        #: promiscuous layers also see traffic not addressed to the node
        #: (hosts only; the MPEG capture ASP needs this, paper §3.3)
        self.promiscuous = promiscuous
        self.loaded: LoadedProgram | None = None
        self.engine: Engine | None = None
        self.protocol_state: object = None
        self.channel_states: dict[int, object] = {}
        self.stats = PlanPStats()
        self.console: list[str] = []
        #: content digests of every program installed on this layer, in
        #: install order (the deployment manifest; survives uninstall
        #: and node crashes, so recovery can check what *should* run)
        self.manifest: list[str] = []
        #: per-packet execution cost charged to the node (0 = free);
        #: models the CPU the paper's gateway burns per packet
        self.cpu = SerialResource(node.sim)
        #: interface/packet being processed (passthrough re-emissions of
        #: the unchanged packet must not reflect back out of the arrival
        #: interface; new or modified packets route normally)
        self._arrival_iface: Interface | None = None
        self._arrival_packet: Packet | None = None
        #: fast-path match table: (channel tag, transport-header class)
        #: -> candidate entries in declaration order
        self._dispatch: dict[tuple[str | None, type],
                             list[_DispatchEntry]] | None = None
        #: the match computed by wants(), carried into process() so a
        #: packet is classified exactly once: (packet uid, hit | None)
        self._carry: tuple[int, tuple | None] | None = None
        #: tier-3 batch drain: up to this many packets queued during one
        #: scheduler activation run through a single specialized batch
        #: loop (0 disables; routers default it on via Node.batch_size)
        self.batch_size = int(getattr(node, "batch_size", 0) or 0)
        #: packets enqueued during the current event, drained at its end
        self._pending: list[tuple[Packet, Interface | None, tuple]] = []
        self._drain_scheduled = False
        #: the chunk being batch-executed (for per-row passthrough
        #: exclusion) and the row offset of the current sub-batch
        self._batch_chunk: list | None = None
        self._batch_base = 0
        #: row index the engine is currently executing (engines assign
        #: ``ctx._row`` before each row) and the last row that emitted
        #: or delivered — together they reproduce the serial path's
        #: "did the failed invocation already emit?" check per row
        self._row = -1
        self._last_emit_row = -1
        self._batch_hist: Histogram | None = None
        #: opt-in per-packet processing-time histogram (ms); ``None``
        #: keeps the hot path at a single truthiness check
        self.profile: Histogram | None = None
        #: circuit-breaker gate: while True the layer matches nothing
        #: and every packet takes standard IP processing.  Installing a
        #: program lifts the gate (the quarantined program is gone).
        self.quarantined = False
        #: the node's lifecycle handle (set by
        #: :meth:`repro.runtime.lifecycle.LifecycleManager.manage`);
        #: ``None`` keeps the packet path at one attribute check
        self.lifecycle: "NodeLifecycle | None" = None

    def enable_profiling(self) -> Histogram:
        """Time every channel invocation into the node network's
        ``asp.process_ms`` histogram (or a private one when the node is
        not part of a :class:`~repro.net.topology.Network`)."""
        if self.profile is None:
            obs = self.node.obs
            if obs is not None:
                self.profile = obs.metrics.histogram("asp.process_ms")
            else:
                self.profile = Histogram("asp.process_ms")
        return self.profile

    # -- program installation ---------------------------------------------------

    def install(self, source: str, *, backend: str = "closure",
                verify: bool = True, source_name: str = "") -> LoadedProgram:
        """Download a program: parse, type check, verify, compile.

        ``verify=False`` is the authenticated-privileged-user path the
        paper reserves for protocols the analyses cannot prove.
        """
        loaded = load_program(source, backend=backend, verify=verify,
                              ctx=self,
                              source_name=source_name or
                              f"<asp@{self.node.name}>")
        self.install_loaded(loaded)
        return loaded

    def install_loaded(self, loaded: LoadedProgram) -> None:
        if self.lifecycle is not None:
            # Versioned history: snapshot the superseded generation's
            # program + state so a rollback can restore it.
            self.lifecycle.before_install(loaded)
        self.loaded = loaded
        self.engine = loaded.engine
        if loaded.source_sha:
            self.manifest.append(loaded.source_sha)
        # (Re)installation hook: an engine moved from another node must
        # drop node-bound state (the interpreter's cached globals env).
        on_install = getattr(self.engine, "on_install", None)
        if on_install is not None:
            on_install(self)
        channels = loaded.info.all_channels()
        self.protocol_state = default_value(
            channels[0].protocol_state_type)
        self.channel_states = {
            id(decl): self.engine.initial_channel_state(decl, self)
            for decl in channels}
        self._dispatch = self._build_dispatch_table(channels)
        self._carry = None
        # A fresh install replaces whatever was quarantined.
        self.quarantined = False
        obs = self.node.obs
        if obs is not None:
            obs.events.emit("deploy", node=self.node.name,
                            action="install",
                            sha=loaded.source_sha or "",
                            engine=type(self.engine).__name__)
        if self.lifecycle is not None:
            self.lifecycle.on_install(loaded)

    def _build_dispatch_table(
            self, channels: list[ast.ChannelDecl],
    ) -> dict[tuple[str | None, type], list[_DispatchEntry]]:
        """Precompute the packet-signature match table (once per
        install, so per-packet dispatch does no structural matching)."""
        table: dict[tuple[str | None, type], list[_DispatchEntry]] = {}
        for decl in channels:
            pkt_type = decl.packet_type
            if not isinstance(pkt_type, T.TupleType):
                continue
            plan = codec.dispatch_plan(pkt_type)
            if plan is None:  # malformed layout: never matches
                continue
            tag = None if decl.name == "network" else decl.name
            table.setdefault((tag, plan.transport_cls),
                             []).append(_DispatchEntry(decl, plan))
        return table

    @property
    def current_sha(self) -> str | None:
        """Digest of the running program (None when nothing is loaded)."""
        return self.loaded.source_sha if self.loaded is not None else None

    def uninstall(self) -> None:
        """Remove the program — and every trace of its run-time state
        (protocol state, per-channel states, the match table), so a
        later reinstall starts from a clean slate."""
        self.loaded = None
        self.engine = None
        self.protocol_state = None
        self.channel_states = {}
        self._dispatch = None
        self._carry = None

    # -- lifecycle support (rollback with state) ---------------------------------

    def snapshot_program(self) -> ProgramSnapshot | None:
        """Capture the running program plus its live protocol/channel
        state (``None`` when nothing is installed)."""
        if self.loaded is None:
            return None
        return ProgramSnapshot(loaded=self.loaded,
                               protocol_state=self.protocol_state,
                               channel_states=dict(self.channel_states))

    def restore_program(self, snap: ProgramSnapshot) -> None:
        """Reinstate a snapshotted generation *with* its state.

        The rollback path of :mod:`repro.runtime.lifecycle`: unlike
        :meth:`install_loaded`, the protocol and channel states come
        back exactly as the generation left them.  Lifecycle hooks are
        *not* re-entered — the manager that restores also bookkeeps.
        """
        self.loaded = snap.loaded
        self.engine = snap.loaded.engine
        on_install = getattr(self.engine, "on_install", None)
        if on_install is not None:
            on_install(self)
        self.protocol_state = snap.protocol_state
        self.channel_states = dict(snap.channel_states)
        self._dispatch = self._build_dispatch_table(
            snap.loaded.info.all_channels())
        self._carry = None
        self.quarantined = False
        if snap.loaded.source_sha:
            self.manifest.append(snap.loaded.source_sha)
        obs = self.node.obs
        if obs is not None:
            obs.events.emit("deploy", node=self.node.name,
                            action="restore",
                            sha=snap.loaded.source_sha or "",
                            engine=type(self.engine).__name__)

    # -- dispatch -----------------------------------------------------------------

    def _match(self, packet: Packet) -> ast.ChannelDecl | None:
        if self.loaded is None:
            return None
        info = self.loaded.info
        if packet.channel is not None:
            overloads = info.channel_overloads(packet.channel)
            for decl in overloads:
                pkt_type = decl.packet_type
                if isinstance(pkt_type, T.TupleType) and \
                        codec.matches(packet, pkt_type):
                    return decl
            return None
        for decl in info.channel_overloads("network"):
            pkt_type = decl.packet_type
            if isinstance(pkt_type, T.TupleType) and \
                    codec.matches(packet, pkt_type):
                return decl
        return None

    def _lookup(self, packet: Packet) -> tuple | None:
        """Classify a packet once: ``(decl, decoder | None, plan | None)``
        or None.

        The fast path answers from the precomputed table; the structural
        matcher only runs when no table exists (a program installed by
        poking internals rather than :meth:`install_loaded`).  Fast-path
        hits are the entry's one stable tuple, so consecutive packets
        admitted by the same overload compare identical by identity —
        structural hits are fresh tuples and therefore never batch.
        """
        table = self._dispatch
        if table is None:
            self.stats.structural_dispatches += 1
            decl = self._match(packet)
            return None if decl is None else (decl, None, None)
        entries = table.get((packet.channel, packet.transport.__class__))
        if not entries:
            return None
        self.stats.fastpath_dispatches += 1
        payload_len = len(packet.payload)
        for entry in entries:
            if entry.plan.admits(payload_len):
                return entry.hit
        return None

    def wants(self, packet: Packet, iface: Interface | None) -> bool:
        if self.loaded is None or self.quarantined:
            return False
        hit = self._lookup(packet)
        self._carry = (packet.uid, hit)
        return hit is not None

    def process(self, packet: Packet, iface: Interface | None) -> None:
        """Run the matching channel on an arriving packet (through the
        node's CPU model, if one is configured).

        Reuses the match :meth:`wants` just computed for this packet, so
        the wants()/process() pair classifies it exactly once.
        """
        carry = self._carry
        if carry is not None and carry[0] == packet.uid:
            hit = carry[1]
            self._carry = None
        else:
            hit = self._lookup(packet)
        if self.cpu.per_item_s > 0:
            self.cpu.submit(lambda: self._process_now(packet, iface, hit))
            return
        if (self.batch_size > 1 and hit is not None and hit[2] is not None
                and self.profile is None):
            # Tier 3: defer to the end of the current event, so several
            # packets delivered by one scheduler activation coalesce
            # into same-entry runs.  Profiling stays per-packet.
            self._pending.append((packet, iface, hit))
            if not self._drain_scheduled:
                self._drain_scheduled = True
                self.node.sim.call_soon(self._drain_batch)
            return
        self._process_now(packet, iface, hit)

    # -- tier 3: batched execution -------------------------------------------------

    def _drain_batch(self) -> None:
        """Run everything enqueued during the event that just finished:
        maximal same-entry runs (capped at ``batch_size``) go through
        the engine's batch loop, singletons through the per-packet path.
        Packet order — and therefore every emission's scheduling order —
        is exactly the enqueue order."""
        self._drain_scheduled = False
        pending = self._pending
        if not pending:
            return
        self._pending = []
        limit = self.batch_size
        n = len(pending)
        i = 0
        while i < n:
            hit = pending[i][2]
            end = i + limit
            if end > n:
                end = n
            j = i + 1
            while j < end and pending[j][2] is hit:
                j += 1
            if j - i == 1:
                packet, iface, hit = pending[i]
                self._process_now(packet, iface, hit)
            else:
                self._run_batch(pending[i:j])
            i = j

    def classify_batches(self, packets: list[Packet],
                         batch_size: int = 64) -> list:
        """The standalone tier-3 front door for a pre-queued stream:
        split it into maximal same-entry runs of at most ``batch_size``
        and wrap each in its lazily-decoded struct-of-arrays
        :class:`~repro.runtime.codec.PacketBatch` — one classification
        and one decoder setup per run instead of per packet.

        A run only extends over packets with the same transport class,
        channel tag, *and payload length* as its head: equal length
        guarantees every overload's ``admits`` answers identically, so
        the head's match-table entry is provably the entry each
        follower would get.
        """
        out: list[tuple[ast.ChannelDecl, codec.PacketBatch]] = []
        lookup = self._lookup
        n = len(packets)
        i = 0
        while i < n:
            p = packets[i]
            hit = lookup(p)
            if hit is None or hit[2] is None:
                i += 1
                continue
            decl, _decoder, plan = hit
            tcls = p.transport.__class__
            chan = p.channel
            plen = len(p.payload)
            end = i + batch_size
            if end > n:
                end = n
            j = i + 1
            while j < end:
                q = packets[j]
                if (q.transport.__class__ is not tcls
                        or q.channel != chan
                        or len(q.payload) != plen):
                    break
                j += 1
            out.append((decl, plan.batch_decoder().batch(packets[i:j])))
            i = j
        return out

    def _batch_histogram(self) -> Histogram | None:
        hist = self._batch_hist
        if hist is None:
            obs = self.node.obs
            if obs is None:
                return None
            hist = self._batch_hist = obs.metrics.histogram(
                f"node.{self.node.name}.planp.batch_size")
        return hist

    def _run_batch(self, chunk: list) -> None:
        """Execute one same-entry run (two or more packets) through the
        engine's batch entry point, preserving the serial path's
        observable behaviour packet for packet:

        * a row that raises a contained error is accounted exactly like
          the serial path (state committed up to it, ``_contain``, and
          standard-IP fallback unless that row already emitted), and the
          remaining rows resume in a fresh sub-batch — no stale
          struct-of-arrays state survives a fault;
        * a decode/setup failure reaches here with *zero* rows executed
          (the :class:`BatchFault` contract), so the whole run replays
          through the per-packet path, which locates and contains the
          malformed packet(s);
        * any other exception commits the completed rows and propagates,
          as it would have from the serial path.
        """
        decl, _decoder, plan = chunk[0][2]
        engine = self.engine
        state = self.channel_states.get(id(decl), _NO_STATE)
        if engine is None or state is _NO_STATE:
            # Stale classification (program removed or replaced between
            # wants() and the drain): standard treatment, like the
            # per-packet stale path.
            for packet, iface, _hit in chunk:
                self.node.standard_processing(packet, iface)
            return
        self.stats.fastpath_batches += 1
        self.stats.batched_packets += len(chunk)
        hist = self._batch_histogram()
        if hist is not None:
            hist.observe(len(chunk))
        run = getattr(engine, "run_channel_batch", None)
        packets = [c[0] for c in chunk]
        lifecycle = self.lifecycle
        chunk_len = len(chunk)
        start = 0
        while start < chunk_len:
            batch = plan.batch_decoder().batch(
                packets[start:] if start else packets)
            self._batch_chunk = chunk
            self._batch_base = start
            self._last_emit_row = -1
            self._row = -1
            try:
                if run is not None:
                    ps, ss = run(decl, self.protocol_state, state, batch,
                                 self)
                else:
                    ps, ss = run_rows(engine.run_channel, decl,
                                      self.protocol_state, state, batch,
                                      self)
            except BatchFault as fault:
                # Rows before the fault committed; replay their
                # accounting, then contain the faulted row.
                self.stats.packets_processed += fault.index
                self.protocol_state = fault.ps
                self.channel_states[id(decl)] = fault.ss
                state = fault.ss
                if lifecycle is not None:
                    for _ in range(fault.index):
                        lifecycle.on_packet_ok()
                err = fault.err
                if not isinstance(err, (PlanPError, codec.CodecError)):
                    raise err
                self.stats.packets_processed += 1
                self._contain(decl, err, reason="runtime")
                fi = start + fault.index
                packet_f, iface_f, _hit = chunk[fi]
                if self._last_emit_row != fault.index:
                    self.node.standard_processing(packet_f, iface_f)
                start = fi + 1
                if self.quarantined and start < chunk_len:
                    # Serial execution re-classifies each packet, so the
                    # ones behind a breaker trip would have failed
                    # wants(); mirror that — including the node-level
                    # asp_handled accounting done at enqueue time.
                    for packet_r, iface_r, _hit2 in chunk[start:]:
                        self.node.stats.asp_handled -= 1
                        self.node.standard_processing(packet_r, iface_r)
                    return
            except Exception:
                # Decode or setup failed before any row ran: replay the
                # rest packet by packet for serial-identical containment
                # of the malformed packet(s).
                for packet_r, iface_r, hit_r in chunk[start:]:
                    self._process_now(packet_r, iface_r, hit_r)
                return
            else:
                rows = chunk_len - start
                self.stats.packets_processed += rows
                self.protocol_state = ps
                self.channel_states[id(decl)] = ss
                if lifecycle is not None:
                    for _ in range(rows):
                        lifecycle.on_packet_ok()
                return
            finally:
                self._batch_chunk = None
                self._row = -1

    def _process_now(self, packet: Packet, iface: Interface | None,
                     hit: tuple | None) -> None:
        if hit is None:  # pragma: no cover - wants() gates this
            self.node.standard_processing(packet, iface)
            return
        decl, decoder, _plan = hit
        engine = self.engine
        state = self.channel_states.get(id(decl), _NO_STATE)
        if engine is None or state is _NO_STATE:
            # Stale classification: the program was uninstalled,
            # quarantined, or replaced between wants() and a
            # CPU-deferred execution.  Not an error — the packet simply
            # predates the change; give it standard treatment.
            self.node.standard_processing(packet, iface)
            return
        self.stats.packets_processed += 1
        try:
            if decoder is not None:
                value = decoder(packet)
            else:
                value = codec.decode(packet, decl.packet_type)  # type: ignore[arg-type]
        except Exception as err:
            # A truncated or garbage payload must not take the node
            # down: decoding is driven entirely by wire data, so any
            # failure here is the packet's fault, never the program's.
            self._contain(decl, err, reason="decode")
            self.node.standard_processing(packet, iface)
            return
        self._arrival_iface = iface
        self._arrival_packet = packet
        emitted_before = (self.stats.packets_emitted
                          + self.stats.packets_delivered)
        try:
            if self.profile is None:
                ps, ss = engine.run_channel(
                    decl, self.protocol_state, state, value, self)
            else:
                with self.profile.time():
                    ps, ss = engine.run_channel(
                        decl, self.protocol_state, state, value, self)
        except (PlanPError, codec.CodecError) as err:
            # Fail open: the node survives and the error is visible in
            # stats.  The packet gets standard treatment only if the
            # failed invocation had not already emitted it - otherwise
            # falling back would duplicate it.  CodecError covers an
            # unverified program emitting a value that cannot be
            # encoded — previously that escaped containment entirely.
            self._contain(decl, err, reason="runtime")
            emitted_after = (self.stats.packets_emitted
                             + self.stats.packets_delivered)
            if emitted_after == emitted_before:
                self.node.standard_processing(packet, iface)
            return
        finally:
            self._arrival_iface = None
            self._arrival_packet = None
        self.protocol_state = ps
        self.channel_states[id(decl)] = ss
        if self.lifecycle is not None:
            self.lifecycle.on_packet_ok()

    def _contain(self, decl: ast.ChannelDecl, err: Exception,
                 reason: str) -> None:
        """Account a contained per-packet failure: count it, log it,
        and feed the node's circuit breaker (if one is attached)."""
        self.stats.runtime_errors += 1
        obs = self.node.obs
        if obs is not None:
            obs.events.emit("error", node=self.node.name,
                            where="asp", channel=decl.name,
                            reason=reason, detail=str(err))
        if self.lifecycle is not None:
            self.lifecycle.on_packet_error(reason)

    # -- ExecutionContext implementation ---------------------------------------------

    def emit_remote(self, channel: str, packet_value: tuple) -> None:
        tag = None if channel == "network" else channel
        packet = codec.encode(packet_value, channel=tag,
                              created_at=self.node.sim.now)
        self.stats.packets_emitted += 1
        self._last_emit_row = self._row
        self.node.ip_send(packet,
                          exclude_iface=self._passthrough_exclusion(packet),
                          from_planp=True)

    def _passthrough_exclusion(self, packet: Packet) -> Interface | None:
        """An unchanged re-emission of the packet being processed (an
        observing ASP's ``OnRemote(network, p)``) must not be sent back
        out of the interface it arrived on — the original transmission
        is already on that wire.  Anything new or modified routes
        normally.  During a batch execution the arrival packet/interface
        of the *current row* apply."""
        orig = self._arrival_packet
        iface = self._arrival_iface
        if orig is None:
            chunk = self._batch_chunk
            if chunk is None:
                return None
            orig, iface, _hit = chunk[self._batch_base + self._row]
        same = (packet.ip.src == orig.ip.src
                and packet.ip.dst == orig.ip.dst
                and packet.transport == orig.transport
                and packet.payload == orig.payload)
        return iface if same else None

    def emit_neighbor(self, channel: str, packet_value: tuple,
                      neighbor: HostAddr) -> None:
        tag = None if channel == "network" else channel
        packet = codec.encode(packet_value, channel=tag,
                              created_at=self.node.sim.now)
        self.stats.packets_emitted += 1
        self._last_emit_row = self._row
        out = self.node.iface_toward(neighbor)
        if out is not None:
            out.send(packet)

    def deliver(self, packet_value: tuple) -> None:
        packet = codec.encode(packet_value, created_at=self.node.sim.now)
        self.stats.packets_delivered += 1
        self._last_emit_row = self._row
        self.node.deliver_local(packet)

    def drop(self, packet_value: tuple) -> None:
        self.stats.packets_dropped += 1

    def this_host(self) -> HostAddr:
        return self.node.address

    def time_ms(self) -> int:
        return int(self.node.sim.now * 1000)

    def link_load(self, toward: HostAddr) -> int:
        return self.node.link_load_toward(toward)

    def link_bandwidth(self, toward: HostAddr) -> int:
        return self.node.link_bandwidth_toward(toward)

    def queue_len(self, toward: HostAddr) -> int:
        return self.node.queue_len_toward(toward)

    def random_int(self, bound: int) -> int:
        # Drawn from the node's private stream (not the shared sim.rng)
        # so one node's sequence doesn't depend on unrelated traffic —
        # which is what keeps sharded execution byte-identical.
        return self.node.entropy.randrange(bound) if bound > 0 else 0

    def output(self, text: str) -> None:
        self.console.append(text)
