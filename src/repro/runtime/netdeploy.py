"""Reliable ASP deployment over the network itself (paper §5: "protocol
management functionalities, such as ASP deployment").

A :class:`DeploymentService` runs on every managed node and listens on a
UDP control port; a :class:`DeploymentManager` pushes program source to
any set of nodes.  The receiving node runs the full download path —
parse, type check, the four analyses, JIT — and acknowledges
acceptance (with its code-generation time) or rejection (with the
failing analysis), exactly the late-checking deployment story of §2.1.

Managed nodes crash, restart, and sit behind lossy links, so the push
protocol is engineered for failure (after Burgy et al.'s argument that
robustness belongs in the messaging layer itself):

* **Sliding window + ack per chunk.**  The manager holds at most
  ``RetryPolicy.window`` unacknowledged ``CHUNK`` datagrams in flight
  per target (bounding drop-tail queue pressure) and advances on each
  ``CACK``.
* **Retransmission with exponential backoff.**  Every protocol stage
  (``BEGIN``, outstanding chunks, ``COMMIT``) retransmits on a timer
  that doubles up to ``max_timeout``, jittered from the simulator's
  seeded RNG so synchronized failures don't retry in lockstep — and
  runs stay exactly reproducible.
* **Terminal deadlines.**  ``RetryPolicy.deadline`` sim-seconds after a
  (re-)push, any target still pending fails with reason ``timeout`` —
  or ``unreachable`` when the manager no longer has a route to it.  No
  push remains ``ok=None`` past its deadline; poll with
  :meth:`DeploymentManager.await_converged`.
* **Idempotent re-push and restart recovery.**  A receiver that lost
  its transfer state (crash, restart) answers retransmissions with
  ``REJ <xfer> unknown transfer``; the manager restarts that transfer
  from ``BEGIN``.  :meth:`DeploymentManager.repush` re-pushes a decided
  transfer to targets that rejoined later.  Installs go through the
  content-addressed program cache, so re-pushes re-verify and re-compile
  at cache speed.
* **Persistent install manifest.**  The service records every installed
  program (digest + source) in :attr:`DeploymentService.manifest`,
  which survives a crash; on restart the node re-installs its ASP set
  from the manifest through the warm program cache.

Wire protocol (one datagram per message, text headers):

    manager -> node:  BEGIN <xfer> <n_chunks> <backend> <verify>
                      CHUNK <xfer> <index>\\n<raw source bytes>
                      COMMIT <xfer>
    node -> manager:  BEGACK <xfer>
                      CACK <xfer> <index>
                      OK <xfer> <codegen_ms> [<cache_hit>]
                      REJ <xfer> <reason>

Transfers are idempotent per ``<xfer>`` id; a retransmitted ``COMMIT``
whose verdict was lost is re-answered from the service's completion
memo, and malformed datagrams are rejected (never raised through the
node's receive path).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..lang.errors import PlanPError
from ..net.addresses import HostAddr
from ..net.node import Host, Node
from ..net.overload import Backoff
from ..net.sim import EventHandle
from ..net.topology import Network
from .planp_layer import PlanPLayer

DEPLOY_PORT = 9900
CHUNK_BYTES = 900

#: ``REJ`` reason prefixes that report lost receiver state rather than
#: a verdict on the program itself; the manager restarts such transfers
#: from ``BEGIN`` instead of failing them.
RECOVERABLE_REASONS = ("unknown transfer", "incomplete", "malformed")


# ---------------------------------------------------------------------------
# Receiving side
# ---------------------------------------------------------------------------


@dataclass
class _Transfer:
    n_chunks: int
    backend: str
    verify: bool
    chunks: dict[int, bytes] = field(default_factory=dict)


@dataclass
class ManifestEntry:
    """One installed program in the service's persistent manifest."""

    xfer: str
    sha: str
    source: str
    backend: str
    verify: bool


class DeploymentService:
    """The on-node receiver: reassembles, verifies, installs.

    In-progress transfers and the completion memo are volatile (lost on
    :meth:`~repro.net.node.Node.crash`); the install manifest is
    persistent, and the service replays it through the program cache
    when the node restarts.
    """

    def __init__(self, net: Network, node: Node,
                 port: int = DEPLOY_PORT):
        self.net = net
        self.node = node
        self.port = port
        self.installed: list[str] = []
        self.rejected: list[tuple[str, str]] = []
        #: persistent install manifest (survives crashes), install order
        self.manifest: dict[str, ManifestEntry] = {}
        #: transfers re-installed from the manifest after restarts
        self.reinstalled: list[str] = []
        #: datagrams dropped or rejected for unparseable headers
        self.malformed = 0
        self._transfers: dict[str, _Transfer] = {}
        #: verdict memo per completed transfer, so a retransmitted
        #: COMMIT whose OK/REJ reply was lost is re-answered, not
        #: re-judged (volatile, like the kernel state it describes)
        self._completed: dict[str, str] = {}
        self._socket = net.udp(node).bind(port)
        self._socket.on_datagram = self._on_datagram
        if node.planp is None:
            PlanPLayer(node)
        node.crash_hooks.append(self._on_crash)
        node.restart_hooks.append(self._on_restart)
        net.obs.metrics.register(f"deploy.service.{node.name}",
                                 self._stats_dict)

    def _stats_dict(self) -> dict[str, int]:
        return {"installed": len(self.installed),
                "rejected": len(self.rejected),
                "reinstalled": len(self.reinstalled),
                "malformed": self.malformed}

    # -- protocol ----------------------------------------------------------------

    def _on_datagram(self, payload: bytes, src: HostAddr,
                     src_port: int) -> None:
        header, _, body = payload.partition(b"\n")
        parts = header.decode("latin-1", errors="replace").split(" ")
        try:
            self._dispatch(parts, body, src, src_port)
        except (ValueError, IndexError):
            # A malformed header must not take down the node's receive
            # path; reject identifiably when a transfer id is parseable.
            self.malformed += 1
            if len(parts) >= 2 and parts[1]:
                self._reply(src, src_port, f"REJ {parts[1]} malformed")

    def _dispatch(self, parts: list[str], body: bytes, src: HostAddr,
                  src_port: int) -> None:
        cmd = parts[0]
        if cmd == "BEGIN" and len(parts) == 5:
            self._begin(parts[1], int(parts[2]), parts[3],
                        parts[4] == "1", src, src_port)
        elif cmd == "CHUNK" and len(parts) == 3:
            self._chunk(parts[1], int(parts[2]), body, src, src_port)
        elif cmd == "COMMIT" and len(parts) == 2:
            self._commit(parts[1], src, src_port)
        else:
            raise ValueError(f"bad deploy datagram {parts[:1]!r}")

    def _begin(self, xfer: str, n_chunks: int, backend: str,
               verify: bool, src: HostAddr, src_port: int) -> None:
        if n_chunks <= 0:
            raise ValueError(f"bad chunk count {n_chunks}")
        self._completed.pop(xfer, None)  # a new push supersedes
        transfer = self._transfers.get(xfer)
        if (transfer is None or transfer.n_chunks != n_chunks
                or transfer.backend != backend
                or transfer.verify != verify):
            # Duplicate BEGINs with identical parameters keep already
            # received chunks (the BEGACK was lost, not the transfer).
            self._transfers[xfer] = _Transfer(
                n_chunks=n_chunks, backend=backend, verify=verify)
        self._reply(src, src_port, f"BEGACK {xfer}")

    def _chunk(self, xfer: str, index: int, body: bytes, src: HostAddr,
               src_port: int) -> None:
        transfer = self._transfers.get(xfer)
        if transfer is None:
            memo = self._completed.get(xfer)
            if memo is not None:
                # Retransmission of a decided push: re-answer it.
                self._reply(src, src_port, memo)
            else:
                # Receiver state was lost (crash/restart) — tell the
                # manager so it restarts the transfer from BEGIN.
                self._reply(src, src_port, f"REJ {xfer} unknown transfer")
            return
        if not 0 <= index < transfer.n_chunks:
            raise ValueError(f"chunk index {index} out of range")
        transfer.chunks[index] = body
        self._reply(src, src_port, f"CACK {xfer} {index}")

    def _commit(self, xfer: str, src: HostAddr, src_port: int) -> None:
        transfer = self._transfers.pop(xfer, None)
        if transfer is None:
            memo = self._completed.get(xfer)
            self._reply(src, src_port,
                        memo if memo is not None
                        else f"REJ {xfer} unknown transfer")
            return
        if len(transfer.chunks) != transfer.n_chunks:
            self._reply(src, src_port,
                        f"REJ {xfer} incomplete "
                        f"({len(transfer.chunks)}/{transfer.n_chunks})")
            return
        source = b"".join(transfer.chunks[i]
                          for i in range(transfer.n_chunks)) \
            .decode("latin-1")
        assert self.node.planp is not None
        try:
            loaded = self.node.planp.install(
                source, backend=transfer.backend,
                verify=transfer.verify, source_name=f"<net:{xfer}>")
        except PlanPError as err:
            self.rejected.append((xfer, err.message))
            self.net.obs.events.emit("deploy", node=self.node.name,
                                     action="reject", xfer=xfer,
                                     reason=err.message)
            self._conclude(src, src_port, xfer,
                           f"REJ {xfer} {err.message}")
            return
        self.installed.append(xfer)
        self.manifest[xfer] = ManifestEntry(
            xfer=xfer, sha=loaded.source_sha, source=source,
            backend=transfer.backend, verify=transfer.verify)
        self._conclude(src, src_port, xfer,
                       f"OK {xfer} {loaded.codegen_ms:.3f} "
                       f"{1 if loaded.cache_hit else 0}")

    def _conclude(self, dst: HostAddr, dst_port: int, xfer: str,
                  verdict: str) -> None:
        self._completed[xfer] = verdict
        self._reply(dst, dst_port, verdict)

    def _reply(self, dst: HostAddr, dst_port: int, text: str) -> None:
        self._socket.sendto(dst, dst_port, text.encode("latin-1"))

    # -- crash / restart recovery ------------------------------------------------

    def _on_crash(self) -> None:
        self._transfers.clear()
        self._completed.clear()

    def _on_restart(self) -> None:
        """Re-install the node's ASP set from the persistent manifest —
        through the content-addressed program cache, so the re-verify
        and code generation are warm."""
        assert self.node.planp is not None
        for entry in self.manifest.values():
            try:
                self.node.planp.install(
                    entry.source, backend=entry.backend,
                    verify=entry.verify,
                    source_name=f"<manifest:{entry.xfer}>")
            except PlanPError:  # pragma: no cover - verdicts are cached
                continue
            self.reinstalled.append(entry.xfer)
            self.net.obs.events.emit("deploy", node=self.node.name,
                                     action="reinstall",
                                     xfer=entry.xfer, sha=entry.sha)


# ---------------------------------------------------------------------------
# Sending side
# ---------------------------------------------------------------------------


@dataclass
class RetryPolicy:
    """Reliability knobs of one push (all times in sim-seconds)."""

    #: max unacknowledged CHUNK datagrams in flight per target
    window: int = 8
    #: first retransmission timeout
    initial_timeout: float = 0.05
    #: backoff ceiling
    max_timeout: float = 1.0
    #: timeout multiplier per silent retry
    backoff: float = 2.0
    #: ± fraction of jitter on every timer (from the sim's seeded RNG)
    jitter: float = 0.5
    #: sim-seconds from (re-)push until a pending target fails
    deadline: float = 10.0


@dataclass
class PushStatus:
    """Outcome of one node's installation, as acknowledged.

    ``ok`` is ``None`` only while the push is in flight; the deadline
    guarantees it reaches a terminal ``True``/``False`` (with
    ``detail`` carrying the rejection reason, ``timeout``, or
    ``unreachable``).
    """

    target: HostAddr
    ok: bool | None = None   # None until terminal
    detail: str = ""
    codegen_ms: float | None = None
    #: did the node's install reuse the program cache? (None if the ack
    #: predates the flag)
    cache_hit: bool | None = None
    #: absolute sim-time by which this push reaches a terminal state
    deadline: float | None = None
    #: retransmission timer firings
    retries: int = 0
    #: transfer restarts from BEGIN (receiver lost its state)
    restarts: int = 0
    #: CHUNK datagrams sent, retransmissions included
    chunks_sent: int = 0
    #: acks that arrived after the status was already terminal
    late_acks: int = 0

    @property
    def terminal(self) -> bool:
        return self.ok is not None


class _TargetTransfer:
    """Manager-side reliable delivery of one transfer to one target."""

    def __init__(self, manager: "DeploymentManager", xfer: str,
                 target: HostAddr, chunks: list[bytes], backend: str,
                 verify: bool, policy: RetryPolicy, status: PushStatus):
        self.manager = manager
        self.xfer = xfer
        self.target = target
        self.chunks = chunks
        self.backend = backend
        self.verify = verify
        self.policy = policy
        self.status = status
        self.state = "begin"     # begin -> data -> commit -> done
        self.acked: set[int] = set()
        self.outstanding: set[int] = set()
        self.next_idx = 0
        self._timer: EventHandle | None = None
        self._deadline: EventHandle | None = None
        # Per-transfer jitter stream: retry desynchronization must not
        # depend on what other transfers (or unrelated traffic) drew
        # from the shared stream, so sharded runs stay byte-identical.
        # The schedule itself is the shared overload-control Backoff
        # (one jitter draw per armed timer, doubled per silent firing,
        # reset on progress).
        self.backoff = Backoff(
            initial=policy.initial_timeout, ceiling=policy.max_timeout,
            multiplier=policy.backoff, jitter=policy.jitter,
            entropy=manager.host.sim.entropy(
                f"deploy:{xfer}:{target}"))

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        sim = self.manager.host.sim
        self.status.deadline = sim.now + self.policy.deadline
        self._deadline = sim.at(self.status.deadline, self._on_deadline)
        self._send_begin()

    def _send_begin(self) -> None:
        self.state = "begin"
        self.manager._send(
            self.target,
            f"BEGIN {self.xfer} {len(self.chunks)} {self.backend} "
            f"{1 if self.verify else 0}")
        self._arm()

    def on_begack(self) -> None:
        if self.state != "begin":
            return
        self.state = "data"
        self.backoff.reset()
        self._fill_window()
        self._arm()

    def on_cack(self, index: int) -> None:
        if self.state != "data" or index in self.acked:
            return
        self.acked.add(index)
        self.outstanding.discard(index)
        self.backoff.reset()  # progress: reset backoff
        if len(self.acked) == len(self.chunks):
            self._send_commit()
        else:
            self._fill_window()
            self._arm()

    def restart_transfer(self) -> None:
        """The receiver lost its transfer state (it crashed and came
        back): start over from BEGIN.  The content-addressed program
        cache makes the repeated install cheap on the node."""
        if self.state == "begin":
            return  # already restarting; duplicate loss report
        self.status.restarts += 1
        self.acked.clear()
        self.outstanding.clear()
        self.next_idx = 0
        self.backoff.reset()
        self._send_begin()

    def finish(self) -> None:
        self.state = "done"
        self._cancel_timer()
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        self.manager._live.pop((self.xfer, self.target), None)

    # -- transmission -------------------------------------------------------------

    def _fill_window(self) -> None:
        while (self.next_idx < len(self.chunks)
               and len(self.outstanding) < self.policy.window):
            self._send_chunk(self.next_idx)
            self.outstanding.add(self.next_idx)
            self.next_idx += 1

    def _send_chunk(self, index: int) -> None:
        self.status.chunks_sent += 1
        self.manager._send_raw(
            self.target,
            f"CHUNK {self.xfer} {index}\n".encode("latin-1")
            + self.chunks[index])

    def _send_commit(self) -> None:
        self.state = "commit"
        self.manager._send(self.target, f"COMMIT {self.xfer}")
        self._arm()

    # -- timers -------------------------------------------------------------------

    def _arm(self) -> None:
        self._cancel_timer()
        self._timer = self.manager.host.sim.schedule(
            self.backoff.delay(), self._on_timer)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timer(self) -> None:
        self._timer = None
        if self.state == "done":
            return
        self.status.retries += 1
        self.backoff.bump()
        if self.state == "begin":
            self._send_begin()
            return  # _send_begin re-arms
        if self.state == "data":
            for index in sorted(self.outstanding):
                self._send_chunk(index)
        elif self.state == "commit":
            self.manager._send(self.target, f"COMMIT {self.xfer}")
        self._arm()

    def _on_deadline(self) -> None:
        self._deadline = None
        if self.state == "done":
            return
        route = self.manager.host.routes.lookup(self.target)
        self.status.ok = False
        self.status.detail = "timeout" if route is not None \
            else "unreachable"
        self.finish()
        self.manager.net.obs.events.emit(
            "deploy", node=self.manager.host.name, action="push-failed",
            xfer=self.xfer, target=str(self.target),
            reason=self.status.detail)


class DeploymentManager:
    """Pushes programs to DeploymentServices across the network."""

    _ids = itertools.count(1)

    def __init__(self, net: Network, host: Host,
                 port: int = DEPLOY_PORT,
                 policy: RetryPolicy | None = None):
        self.net = net
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.pushes: dict[str, dict[HostAddr, PushStatus]] = {}
        self._socket = net.udp(host).bind()
        self._socket.on_datagram = self._on_ack
        #: push parameters kept for retransmission and re-push
        self._sources: dict[str,
                            tuple[list[bytes], str, bool, RetryPolicy]] = {}
        self._live: dict[tuple[str, HostAddr], _TargetTransfer] = {}
        net.obs.metrics.register("deploy.manager", self._stats_dict)

    def _stats_dict(self) -> dict[str, int]:
        statuses = [s for push in self.pushes.values()
                    for s in push.values()]
        return {"pushes": len(self.pushes),
                "targets_ok": sum(1 for s in statuses if s.ok is True),
                "targets_failed": sum(1 for s in statuses
                                      if s.ok is False),
                "targets_pending": sum(1 for s in statuses
                                       if s.ok is None),
                "retries": sum(s.retries for s in statuses),
                "restarts": sum(s.restarts for s in statuses),
                "chunks_sent": sum(s.chunks_sent for s in statuses),
                "late_acks": sum(s.late_acks for s in statuses)}

    # -- pushing ------------------------------------------------------------------

    def push(self, source: str, targets: list[HostAddr], *,
             backend: str = "closure", verify: bool = True,
             name: str = "", policy: RetryPolicy | None = None) -> str:
        """Ship ``source`` to every target; returns the transfer id.

        Acks arrive asynchronously; poll :meth:`status` after running
        the simulation, or drive it with :meth:`await_converged`.
        Every target reaches a terminal status by its deadline."""
        xfer = name or f"asp{next(self._ids)}"
        data = source.encode("latin-1")
        chunks = [data[i:i + CHUNK_BYTES]
                  for i in range(0, max(len(data), 1), CHUNK_BYTES)]
        policy = policy or self.policy
        self.pushes[xfer] = {t: PushStatus(target=t) for t in targets}
        self._sources[xfer] = (chunks, backend, verify, policy)
        self.net.obs.events.emit("deploy", node=self.host.name,
                                 action="push", xfer=xfer,
                                 targets=len(targets),
                                 chunks=len(chunks))
        for target in targets:
            self._start(xfer, target)
        return xfer

    def repush(self, xfer: str,
               targets: list[HostAddr] | None = None,
               policy: RetryPolicy | None = None) -> list[HostAddr]:
        """Idempotently re-push ``xfer`` — by default to every target
        that has not acknowledged success (failed pushes, nodes that
        rejoined after a crash).  Their statuses return to pending with
        a fresh deadline; cumulative counters are preserved.  ``policy``
        replaces the push's retry policy from here on.  Returns the
        targets re-pushed."""
        statuses = self.pushes.get(xfer)
        if statuses is None:
            raise KeyError(f"unknown transfer {xfer!r}")
        if policy is not None:
            chunks, backend, verify, _old = self._sources[xfer]
            self._sources[xfer] = (chunks, backend, verify, policy)
        if targets is None:
            targets = [t for t, s in statuses.items() if s.ok is not True]
        for target in targets:
            status = statuses[target]
            live = self._live.get((xfer, target))
            if live is not None:
                live.finish()
            status.ok = None
            status.detail = ""
            self._start(xfer, target)
        return list(targets)

    def _start(self, xfer: str, target: HostAddr) -> None:
        chunks, backend, verify, policy = self._sources[xfer]
        transfer = _TargetTransfer(self, xfer, target, chunks, backend,
                                   verify, policy,
                                   self.pushes[xfer][target])
        self._live[(xfer, target)] = transfer
        transfer.start()

    def _send(self, target: HostAddr, text: str) -> None:
        self._socket.sendto(target, self.port, text.encode("latin-1"))

    def _send_raw(self, target: HostAddr, payload: bytes) -> None:
        self._socket.sendto(target, self.port, payload)

    # -- acknowledgements ---------------------------------------------------------

    def _on_ack(self, payload: bytes, src: HostAddr,
                src_port: int) -> None:
        parts = payload.decode("latin-1", errors="replace").split(" ")
        if len(parts) < 2:
            return
        verdict, xfer = parts[0], parts[1]
        statuses = self.pushes.get(xfer)
        if statuses is None or src not in statuses:
            return
        status = statuses[src]
        if status.terminal:
            # A late or duplicate ack must not flip a terminal verdict:
            # an OK limping in after the deadline already marked the
            # target FAILED does not resurrect it.  Count it instead.
            status.late_acks += 1
            return
        live = self._live.get((xfer, src))
        if verdict == "OK":
            status.ok = True
            status.codegen_ms = _float_or_none(parts[2]) \
                if len(parts) > 2 else None
            status.cache_hit = parts[3] == "1" if len(parts) > 3 else None
            if live is not None:
                live.finish()
            self.net.obs.events.emit("deploy", node=self.host.name,
                                     action="push-ok", xfer=xfer,
                                     target=str(src))
        elif verdict == "REJ":
            reason = " ".join(parts[2:])
            if live is not None and \
                    reason.startswith(RECOVERABLE_REASONS):
                live.restart_transfer()
            else:
                status.ok = False
                status.detail = reason
                if live is not None:
                    live.finish()
                self.net.obs.events.emit("deploy", node=self.host.name,
                                         action="push-rej", xfer=xfer,
                                         target=str(src), reason=reason)
        elif verdict == "BEGACK":
            if live is not None:
                live.on_begack()
        elif verdict == "CACK" and len(parts) == 3:
            if live is not None and parts[2].isdigit():
                live.on_cack(int(parts[2]))

    # -- observability ------------------------------------------------------------

    def status(self, xfer: str) -> dict[HostAddr, PushStatus]:
        return self.pushes.get(xfer, {})

    def all_ok(self, xfer: str) -> bool:
        statuses = self.status(xfer)
        return bool(statuses) and all(s.ok for s in statuses.values())

    def converged(self, xfer: str) -> bool:
        """Has every target of ``xfer`` reached a terminal status?"""
        statuses = self.status(xfer)
        return bool(statuses) and all(s.terminal
                                      for s in statuses.values())

    def await_converged(self, xfer: str, timeout: float | None = None,
                        poll: float = 0.05) -> bool:
        """Drive the simulation until every target of ``xfer`` is
        terminal (or ``timeout`` sim-seconds pass).  The per-target
        deadline guarantees convergence, so with ``timeout=None`` this
        returns once the slowest target's deadline has passed."""
        sim = self.net.sim
        statuses = self.status(xfer)
        if not statuses:
            return False
        if timeout is None:
            horizon = max((s.deadline if s.deadline is not None
                           else sim.now) for s in statuses.values()) + poll
        else:
            horizon = sim.now + timeout
        while sim.now < horizon and not self.converged(xfer):
            # Drive through the network façade (not the simulator
            # directly) so sharded topologies poll correctly too.
            self.net.run(until=min(sim.now + poll, horizon))
        return self.converged(xfer)

    def counters(self, xfer: str) -> dict[str, int]:
        """Aggregate retry/loss counters for one push (observability of
        recovery: how hard did the protocol work to converge?)."""
        statuses = self.status(xfer)
        return {
            "retries": sum(s.retries for s in statuses.values()),
            "restarts": sum(s.restarts for s in statuses.values()),
            "chunks_sent": sum(s.chunks_sent for s in statuses.values()),
            "late_acks": sum(s.late_acks for s in statuses.values()),
        }


def _float_or_none(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None
