"""ASP deployment over the network itself (paper §5: "protocol
management functionalities, such as ASP deployment").

A :class:`DeploymentService` runs on every managed node and listens on a
UDP control port; a :class:`DeploymentManager` pushes program source to
any set of nodes.  The receiving node runs the full download path —
parse, type check, the four analyses, JIT — and acknowledges
acceptance (with its code-generation time) or rejection (with the
failing analysis), exactly the late-checking deployment story of §2.1.

Wire protocol (one datagram per message, text headers):

    manager -> node:  BEGIN <xfer> <n_chunks> <backend> <verify>
                      CHUNK <xfer> <index>\\n<raw source bytes>
                      COMMIT <xfer>
    node -> manager:  OK <xfer> <codegen_ms> [<cache_hit>]
                      REJ <xfer> <reason>

Transfers are idempotent per ``<xfer>`` id; unknown or incomplete
commits are rejected rather than guessed at.

Nodes install through the content-addressed program cache
(:data:`repro.jit.pipeline.PROGRAM_CACHE`), so pushing one ASP to N
nodes runs the parse/type-check/verify front end once; the ``OK`` ack's
trailing ``cache_hit`` flag (``1``/``0``) tells the manager which nodes
amortized the download.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..lang.errors import PlanPError
from ..net.addresses import HostAddr
from ..net.node import Host, Node
from ..net.topology import Network
from .planp_layer import PlanPLayer

DEPLOY_PORT = 9900
CHUNK_BYTES = 900


@dataclass
class _Transfer:
    n_chunks: int
    backend: str
    verify: bool
    chunks: dict[int, bytes] = field(default_factory=dict)


class DeploymentService:
    """The on-node receiver: reassembles, verifies, installs."""

    def __init__(self, net: Network, node: Node,
                 port: int = DEPLOY_PORT):
        self.net = net
        self.node = node
        self.port = port
        self.installed: list[str] = []
        self.rejected: list[tuple[str, str]] = []
        self._transfers: dict[str, _Transfer] = {}
        self._socket = net.udp(node).bind(port)
        self._socket.on_datagram = self._on_datagram
        if node.planp is None:
            PlanPLayer(node)

    # -- protocol ----------------------------------------------------------------

    def _on_datagram(self, payload: bytes, src: HostAddr,
                     src_port: int) -> None:
        header, _, body = payload.partition(b"\n")
        parts = header.decode("latin-1", errors="replace").split(" ")
        if not parts:
            return
        if parts[0] == "BEGIN" and len(parts) == 5:
            self._transfers[parts[1]] = _Transfer(
                n_chunks=int(parts[2]), backend=parts[3],
                verify=parts[4] == "1")
        elif parts[0] == "CHUNK" and len(parts) == 3:
            transfer = self._transfers.get(parts[1])
            if transfer is not None:
                transfer.chunks[int(parts[2])] = body
        elif parts[0] == "COMMIT" and len(parts) == 2:
            self._commit(parts[1], src, src_port)

    def _commit(self, xfer: str, src: HostAddr, src_port: int) -> None:
        transfer = self._transfers.pop(xfer, None)
        if transfer is None:
            self._reply(src, src_port, f"REJ {xfer} unknown transfer")
            return
        if len(transfer.chunks) != transfer.n_chunks:
            self._reply(src, src_port,
                        f"REJ {xfer} incomplete "
                        f"({len(transfer.chunks)}/{transfer.n_chunks})")
            return
        source = b"".join(transfer.chunks[i]
                          for i in range(transfer.n_chunks)) \
            .decode("latin-1")
        assert self.node.planp is not None
        try:
            loaded = self.node.planp.install(
                source, backend=transfer.backend,
                verify=transfer.verify, source_name=f"<net:{xfer}>")
        except PlanPError as err:
            self.rejected.append((xfer, err.message))
            self._reply(src, src_port, f"REJ {xfer} {err.message}")
            return
        self.installed.append(xfer)
        self._reply(src, src_port,
                    f"OK {xfer} {loaded.codegen_ms:.3f} "
                    f"{1 if loaded.cache_hit else 0}")

    def _reply(self, dst: HostAddr, dst_port: int, text: str) -> None:
        self._socket.sendto(dst, dst_port, text.encode("latin-1"))


@dataclass
class PushStatus:
    """Outcome of one node's installation, as acknowledged."""

    target: HostAddr
    ok: bool | None = None   # None until acknowledged
    detail: str = ""
    codegen_ms: float | None = None
    #: did the node's install reuse the program cache? (None if the ack
    #: predates the flag)
    cache_hit: bool | None = None


class DeploymentManager:
    """Pushes programs to DeploymentServices across the network."""

    _ids = itertools.count(1)

    def __init__(self, net: Network, host: Host,
                 port: int = DEPLOY_PORT):
        self.net = net
        self.host = host
        self.port = port
        self.pushes: dict[str, dict[HostAddr, PushStatus]] = {}
        self._socket = net.udp(host).bind()
        self._socket.on_datagram = self._on_ack
        self._by_xfer: dict[str, dict[HostAddr, PushStatus]] = {}

    def push(self, source: str, targets: list[HostAddr], *,
             backend: str = "closure", verify: bool = True,
             name: str = "") -> str:
        """Ship ``source`` to every target; returns the transfer id.

        Acks arrive asynchronously; poll :meth:`status` after running
        the simulation."""
        xfer = name or f"asp{next(self._ids)}"
        data = source.encode("latin-1")
        chunks = [data[i:i + CHUNK_BYTES]
                  for i in range(0, max(len(data), 1), CHUNK_BYTES)]
        statuses = {t: PushStatus(target=t) for t in targets}
        self.pushes[xfer] = statuses
        self._by_xfer[xfer] = statuses
        for target in targets:
            self._socket.sendto(
                target, self.port,
                f"BEGIN {xfer} {len(chunks)} {backend} "
                f"{1 if verify else 0}".encode("latin-1"))
            for i, chunk in enumerate(chunks):
                self._socket.sendto(
                    target, self.port,
                    f"CHUNK {xfer} {i}\n".encode("latin-1") + chunk)
            self._socket.sendto(target, self.port,
                                f"COMMIT {xfer}".encode("latin-1"))
        return xfer

    def _on_ack(self, payload: bytes, src: HostAddr,
                src_port: int) -> None:
        parts = payload.decode("latin-1", errors="replace") \
            .split(" ", 2)
        if len(parts) < 2:
            return
        verdict, xfer = parts[0], parts[1]
        statuses = self._by_xfer.get(xfer)
        if statuses is None or src not in statuses:
            return
        status = statuses[src]
        if verdict == "OK":
            status.ok = True
            fields = parts[2].split(" ") if len(parts) > 2 else []
            status.codegen_ms = float(fields[0]) if fields else None
            status.cache_hit = fields[1] == "1" if len(fields) > 1 \
                else None
        else:
            status.ok = False
            status.detail = parts[2] if len(parts) > 2 else ""

    def status(self, xfer: str) -> dict[HostAddr, PushStatus]:
        return self.pushes.get(xfer, {})

    def all_ok(self, xfer: str) -> bool:
        statuses = self.status(xfer)
        return bool(statuses) and all(s.ok for s in statuses.values())
