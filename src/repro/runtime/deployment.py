"""ASP deployment management (paper §5's "protocol management").

``Deployment`` verifies a program once, then installs it on any number of
nodes — routers and end hosts alike — compiling per node (the paper's
run-time specialization happens at each downloading node).  It records
the verification report so operators can audit why a program was accepted
or rejected.

All front-end work goes through the content-addressed
:class:`~repro.jit.pipeline.ProgramCache`: an N-node install parses,
type checks and verifies the source exactly once, and per node only the
node-dependent remainder of compilation runs.  The record keeps the
cache hit/miss delta so operators can see the amortization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.verifier import VerificationReport
from ..jit import pipeline
from ..lang.errors import VerificationError
from ..net.node import Node
from .planp_layer import PlanPLayer


@dataclass
class DeploymentRecord:
    source_name: str
    nodes: list[str]
    backend: str
    verified: bool
    report: VerificationReport | None
    codegen_ms: dict[str, float] = field(default_factory=dict)
    #: content digest of the deployed source (the program-cache key)
    source_sha: str = ""
    #: program-cache hits/misses incurred by this install
    cache_hits: int = 0
    cache_misses: int = 0


class Deployment:
    """Distributes ASPs across a simulated network."""

    def __init__(self, cache: pipeline.ProgramCache | None = None):
        self.records: list[DeploymentRecord] = []
        self._cache = cache

    @property
    def cache(self) -> pipeline.ProgramCache:
        return self._cache if self._cache is not None \
            else pipeline.PROGRAM_CACHE

    def layer_of(self, node: Node) -> PlanPLayer:
        """The node's PLAN-P layer (created on first use)."""
        if node.planp is None:
            PlanPLayer(node)
        assert node.planp is not None
        return node.planp

    def install(self, source: str, nodes: list[Node], *,
                backend: str = "closure", verify: bool = True,
                source_name: str = "<asp>") -> DeploymentRecord:
        """Verify once, install everywhere.

        Raises :class:`VerificationError` (without touching any node) if
        verification is requested and fails.
        """
        cache = self.cache
        before = cache.stats.snapshot()
        # Front-end once, centrally: a rejected program reaches no node.
        key, info = cache.frontend(source, source_name)
        report: VerificationReport | None = None
        if verify:
            report = cache.verification(key, info)
            if not report.passed:
                failure = report.failures[0]
                raise VerificationError(
                    f"{source_name} rejected by {failure.name}: "
                    f"{failure.detail}", analysis=failure.name)

        record = DeploymentRecord(source_name=source_name,
                                  nodes=[n.name for n in nodes],
                                  backend=backend, verified=verify,
                                  report=report, source_sha=key)
        for node in nodes:
            layer = self.layer_of(node)
            loaded = pipeline.load_program(
                source, backend=backend, verify=False, ctx=layer,
                source_name=source_name, cache=cache)
            layer.install_loaded(loaded)
            record.codegen_ms[node.name] = loaded.codegen_ms
        after = cache.stats
        record.cache_hits = after.total_hits - before.total_hits
        record.cache_misses = after.total_misses - before.total_misses
        self.records.append(record)
        return record

    def uninstall(self, nodes: list[Node]) -> None:
        for node in nodes:
            if node.planp is not None:
                node.planp.uninstall()
