"""ASP deployment management (paper §5's "protocol management").

``Deployment`` verifies a program once, then installs it on any number of
nodes — routers and end hosts alike — compiling per node (the paper's
run-time specialization happens at each downloading node).  It records
the verification report so operators can audit why a program was accepted
or rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.verifier import VerificationReport, verify_report
from ..lang import parse, typecheck
from ..lang.errors import VerificationError
from ..net.node import Node
from .planp_layer import PlanPLayer


@dataclass
class DeploymentRecord:
    source_name: str
    nodes: list[str]
    backend: str
    verified: bool
    report: VerificationReport | None
    codegen_ms: dict[str, float] = field(default_factory=dict)


class Deployment:
    """Distributes ASPs across a simulated network."""

    def __init__(self):
        self.records: list[DeploymentRecord] = []

    def layer_of(self, node: Node) -> PlanPLayer:
        """The node's PLAN-P layer (created on first use)."""
        if node.planp is None:
            PlanPLayer(node)
        assert node.planp is not None
        return node.planp

    def install(self, source: str, nodes: list[Node], *,
                backend: str = "closure", verify: bool = True,
                source_name: str = "<asp>") -> DeploymentRecord:
        """Verify once, install everywhere.

        Raises :class:`VerificationError` (without touching any node) if
        verification is requested and fails.
        """
        # Front-end once, centrally: a rejected program reaches no node.
        program = parse(source, source_name)
        info = typecheck(program)
        report: VerificationReport | None = None
        if verify:
            report = verify_report(info)
            if not report.passed:
                failure = report.failures[0]
                raise VerificationError(
                    f"{source_name} rejected by {failure.name}: "
                    f"{failure.detail}", analysis=failure.name)

        record = DeploymentRecord(source_name=source_name,
                                  nodes=[n.name for n in nodes],
                                  backend=backend, verified=verify,
                                  report=report)
        for node in nodes:
            layer = self.layer_of(node)
            loaded = layer.install(source, backend=backend, verify=False,
                                   source_name=source_name)
            record.codegen_ms[node.name] = loaded.codegen_ms
        self.records.append(record)
        return record

    def uninstall(self, nodes: list[Node]) -> None:
        for node in nodes:
            if node.planp is not None:
                node.planp.uninstall()
