"""Encoding between wire packets and PLAN-P packet values.

A channel's packet type (``ip*tcp*char*int`` etc.) describes a *view* of
a real packet: the IP header, optionally a transport header, then a
sequence of payload views decoded from the payload bytes.  This is how
overloaded ``network`` channels dispatch on the leading payload byte in
figure 4 of the paper — the ``char`` view *is* that byte.

View layout rules:

* fixed-size views: ``char``/``bool`` = 1 byte, ``int`` = 4 bytes
  big-endian signed, ``host`` = 4 bytes;
* ``blob`` and ``string`` consume the remaining payload and therefore
  may only appear as the final component;
* a packet matches a type only if the payload is long enough for all
  fixed views, and any residue is consumed by a trailing blob/string.

Two decoder shapes coexist:

* :func:`make_decoder` — one packet to one value tuple (the per-packet
  fast path);
* :func:`make_batch_decoder` — the tier-3 struct-of-arrays decoder: a
  run of same-type packets decodes into parallel *columns* with one C
  call per fixed field per batch (``struct.iter_unpack`` over the
  joined payloads when the stride is uniform), and value conversions
  (``chr``, :class:`HostAddr`, latin-1) materialize lazily per column,
  so a specialized batch loop that projects only some header fields
  never pays for the rest.
"""

from __future__ import annotations

import struct

from ..lang import types as T
from ..net.addresses import HostAddr
from ..net.packet import (PROTO_RAW, PROTO_TCP, PROTO_UDP, IpHeader, Packet,
                          TcpHeader, UdpHeader)

_FIXED_SIZES: dict[T.Type, int] = {T.CHAR: 1, T.BOOL: 1, T.INT: 4, T.HOST: 4}

#: struct format characters for the fixed-size views (big-endian)
_STRUCT_FMT: dict[T.Type, str] = {T.CHAR: "B", T.BOOL: "B", T.INT: "i",
                                  T.HOST: "I"}


class CodecError(Exception):
    """A value tuple cannot be encoded, or a type is malformed."""


def packet_views(packet_type: T.TupleType) -> tuple[T.Type | None,
                                                    list[T.Type]]:
    """Split a packet type into (transport header type | None, payload
    view types).  Raises :class:`CodecError` on malformed layouts."""
    elems = list(packet_type.elems)
    if not elems or elems[0] != T.IP:
        raise CodecError(f"packet type must start with ip: {packet_type}")
    rest = elems[1:]
    transport: T.Type | None = None
    if rest and rest[0] in (T.TCP, T.UDP):
        transport = rest[0]
        rest = rest[1:]
    for view in rest[:-1]:
        if view in (T.BLOB, T.STRING):
            raise CodecError(
                f"{view} view must be the final component: {packet_type}")
    for view in rest:
        if view not in _FIXED_SIZES and view not in (T.BLOB, T.STRING):
            raise CodecError(f"unsupported payload view {view}")
    return transport, rest


def matches(packet: Packet, packet_type: T.TupleType) -> bool:
    """Does a wire packet match a channel's packet type?"""
    try:
        transport, views = packet_views(packet_type)
    except CodecError:
        return False
    if transport == T.TCP and not isinstance(packet.transport, TcpHeader):
        return False
    if transport == T.UDP and not isinstance(packet.transport, UdpHeader):
        return False
    if transport is None and packet.transport is not None:
        return False
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    if len(packet.payload) < fixed:
        return False
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    if not has_tail and len(packet.payload) != fixed:
        return False
    return True


class DispatchPlan:
    """Everything dispatch needs to know about one channel's packet type,
    computed once (at install time) instead of per packet.

    A packet matches iff its transport header is an instance of
    ``transport_cls`` (``type(None)`` for raw) and its payload length
    fits ``fixed``/``has_tail``; ``decode`` then builds the packet value
    with all view offsets precomputed.
    """

    __slots__ = ("transport_cls", "fixed", "has_tail", "decode",
                 "packet_type", "_batch_decoder")

    def __init__(self, transport_cls: type, fixed: int, has_tail: bool,
                 decode, packet_type: T.TupleType | None = None):
        self.transport_cls = transport_cls
        self.fixed = fixed
        self.has_tail = has_tail
        self.decode = decode
        self.packet_type = packet_type
        self._batch_decoder = None

    def admits(self, payload_len: int) -> bool:
        if self.has_tail:
            return payload_len >= self.fixed
        return payload_len == self.fixed

    def batch_decoder(self) -> "BatchDecoder":
        """The tier-3 struct-of-arrays decoder for this packet type,
        compiled on first use (installs stay cheap; only channels that
        actually see batched traffic pay the codegen)."""
        bd = self._batch_decoder
        if bd is None:
            bd = self._batch_decoder = make_batch_decoder(self.packet_type)
        return bd


def _check_payload_len(n: int, fixed: int, has_tail: bool,
                       packet_type) -> None:
    """Reject payloads the view layout cannot consume exactly.

    Every decoder front door funnels malformed lengths through here so
    truncated or stride-breaking payloads surface as :class:`CodecError`
    — never as a silent short-slice decode (``int.from_bytes`` happily
    decodes a 2-byte slice of a 4-byte view) or a leaked ``IndexError``.
    """
    if n < fixed:
        raise CodecError(
            f"payload of {n} bytes is shorter than the {fixed} fixed "
            f"bytes of {packet_type}")
    if not has_tail and n != fixed:
        raise CodecError(
            f"payload of {n} bytes does not match the exact {fixed} "
            f"bytes of tail-less {packet_type}")


def _view_steps(views: list[T.Type]) -> list:
    """One closure per payload view, offset baked in."""
    steps = []
    offset = 0
    for view in views:
        if view == T.BLOB:
            steps.append(lambda payload, o=offset: payload[o:])
        elif view == T.STRING:
            steps.append(
                lambda payload, o=offset: payload[o:].decode("latin-1"))
        elif view == T.CHAR:
            steps.append(lambda payload, o=offset: chr(payload[o]))
            offset += 1
        elif view == T.BOOL:
            steps.append(lambda payload, o=offset: payload[o] != 0)
            offset += 1
        elif view == T.INT:
            steps.append(lambda payload, o=offset: int.from_bytes(
                payload[o:o + 4], "big", signed=True))
            offset += 4
        elif view == T.HOST:
            steps.append(lambda payload, o=offset: HostAddr(int.from_bytes(
                payload[o:o + 4], "big")))
            offset += 4
    return steps


def make_decoder(packet_type: T.TupleType):
    """Compile ``decode(packet, packet_type)`` down to a closure with the
    view walk and all offsets resolved ahead of time."""
    transport, views = packet_views(packet_type)
    steps = _view_steps(views)
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    if transport is None:
        def decode_raw(packet: Packet) -> tuple:
            payload = packet.payload
            n = len(payload)
            if n < fixed or (not has_tail and n != fixed):
                _check_payload_len(n, fixed, has_tail, packet_type)
            return (packet.ip, *(step(payload) for step in steps))

        return decode_raw

    def decode_transport(packet: Packet) -> tuple:
        payload = packet.payload
        n = len(payload)
        if n < fixed or (not has_tail and n != fixed):
            _check_payload_len(n, fixed, has_tail, packet_type)
        return (packet.ip, packet.transport,
                *(step(payload) for step in steps))

    return decode_transport


def dispatch_plan(packet_type: T.TupleType) -> DispatchPlan | None:
    """The precomputed matcher+decoder for a channel's packet type, or
    ``None`` if the layout is malformed (such a channel never matches)."""
    try:
        transport, views = packet_views(packet_type)
    except CodecError:
        return None
    if transport == T.TCP:
        transport_cls: type = TcpHeader
    elif transport == T.UDP:
        transport_cls = UdpHeader
    else:
        transport_cls = type(None)
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    return DispatchPlan(transport_cls, fixed, has_tail,
                        make_decoder(packet_type), packet_type)


class BatchDecoder:
    """A per-packet-type struct-of-arrays decoder for runs of matching
    packets.  ``batch(packets)`` wraps a run without touching any bytes;
    the raw columns decode on first access (one C call per fixed field
    per batch) and value conversions materialize per column on demand.
    """

    __slots__ = ("packet_type", "width", "_soa_fn", "_convs")

    def __init__(self, packet_type, width, soa_fn, convs):
        self.packet_type = packet_type
        self.width = width
        self._soa_fn = soa_fn
        self._convs = convs

    def batch(self, packets: list[Packet]) -> "PacketBatch":
        return PacketBatch(packets, self)


class PacketBatch:
    """A lazily-decoded run of same-type packets.

    ``soa()`` yields the raw columns (header objects, struct-decoded
    ints, tail slices); ``column(i)`` the value-converted column for
    component ``i`` of the packet value; ``rows()`` the full list of
    packet-value tuples.  Decode errors (a payload corrupted after
    classification) surface from ``soa()``/``column()``/``rows()``
    before any row executes, so callers can fall back per packet with
    no partially-consumed state left behind.
    """

    __slots__ = ("packets", "decoder", "_raw", "_cols", "_rows")

    def __init__(self, packets: list[Packet], decoder: BatchDecoder):
        self.packets = packets
        self.decoder = decoder
        self._raw = None
        self._cols: dict[int, list] = {}
        self._rows = None

    def __len__(self) -> int:
        return len(self.packets)

    def soa(self) -> tuple:
        raw = self._raw
        if raw is None:
            raw = self._raw = self.decoder._soa_fn(self.packets)
        return raw

    def column(self, i: int) -> list:
        col = self._cols.get(i)
        if col is None:
            raw = self.soa()[i]
            conv = self.decoder._convs[i]
            col = raw if conv is None else [conv(x) for x in raw]
            self._cols[i] = col
        return col

    def rows(self) -> list[tuple]:
        rows = self._rows
        if rows is None:
            width = self.decoder.width
            rows = self._rows = list(
                zip(*(self.column(i) for i in range(width))))
        return rows


def _latin1(b: bytes) -> str:
    return b.decode("latin-1")


def make_batch_decoder(packet_type: T.TupleType) -> BatchDecoder:
    """Compile the struct-of-arrays decoder for one packet type.

    The generated ``_soa`` function decodes a run of packets that all
    matched this type into raw parallel columns:

    * header columns are plain attribute list-comprehensions;
    * with no tail view, every payload has exactly ``fixed`` bytes
      (:meth:`DispatchPlan.admits`), so all fixed fields of the whole
      batch decode in a single ``Struct.iter_unpack`` over the joined
      payloads — a stride-count guard turns non-compensating payload
      corruption into a :class:`CodecError` instead of silent row
      misalignment;
    * with a tail view, payload lengths vary, so fixed fields use one
      ``unpack_from`` per packet and the tail is a slice column.

    Value conversions (``chr``, ``bool``, :class:`HostAddr`, latin-1)
    are *not* applied here — they belong to the lazy
    :meth:`PacketBatch.column` so untouched fields cost nothing.
    """
    transport, views = packet_views(packet_type)
    fixed_views = [v for v in views if v in _FIXED_SIZES]
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    fixed = sum(_FIXED_SIZES[v] for v in fixed_views)
    width = 1 + (1 if transport is not None else 0) + len(views)

    lines = ["def _soa(_pk):"]
    empty = ", ".join("[]" for _ in range(width))
    comma = "," if width == 1 else ""
    lines.append("    if not _pk:")
    lines.append(f"        return ({empty}{comma})")
    cols = ["_ip"]
    lines.append("    _ip = [_p.ip for _p in _pk]")
    if transport is not None:
        lines.append("    _tr = [_p.transport for _p in _pk]")
        cols.append("_tr")
    if fixed_views:
        if has_tail:
            lines.append("    try:")
            lines.append("        _ts = [_unpack(_p.payload) "
                         "for _p in _pk]")
            lines.append("    except _StructError:")
            lines.append("        raise CodecError("
                         '"batch payload shorter than the fixed views") '
                         "from None")
        else:
            # Compensating corruption (one payload short, another long)
            # keeps the joined length a stride multiple, so the
            # iter_unpack row count alone cannot be trusted: check every
            # payload length up front (n int compares per batch).
            lines.append(f"    if any(len(_p.payload) != {fixed} "
                         "for _p in _pk):")
            lines.append("        raise CodecError("
                         '"batch payload stride mismatch")')
            lines.append("    try:")
            lines.append('        _ts = list(_iter_unpack(b"".join('
                         "[_p.payload for _p in _pk])))")
            lines.append("    except _StructError:")
            lines.append("        raise CodecError("
                         '"batch payload stride mismatch") from None')
        if len(fixed_views) == 1:
            lines.append("    _f0 = [_t[0] for _t in _ts]")
        else:
            lines.append("    _fx = list(zip(*_ts))")
            for k in range(len(fixed_views)):
                lines.append(f"    _f{k} = list(_fx[{k}])")
        cols.extend(f"_f{k}" for k in range(len(fixed_views)))
    if has_tail:
        if fixed:
            lines.append(f"    _tl = [_p.payload[{fixed}:] for _p in _pk]")
        else:
            lines.append("    _tl = [_p.payload for _p in _pk]")
        cols.append("_tl")
    lines.append(f"    return ({', '.join(cols)}{comma})")

    namespace: dict[str, object] = {"CodecError": CodecError,
                                    "_StructError": struct.error}
    if fixed_views:
        fmt = ">" + "".join(_STRUCT_FMT[v] for v in fixed_views)
        packer = struct.Struct(fmt)
        namespace["_unpack"] = packer.unpack_from
        namespace["_iter_unpack"] = packer.iter_unpack
    exec(compile("\n".join(lines), "<batch-decoder>", "exec"), namespace)

    conv_of = {T.CHAR: chr, T.BOOL: bool, T.INT: None, T.HOST: HostAddr,
               T.BLOB: None, T.STRING: _latin1}
    convs: list = [None]
    if transport is not None:
        convs.append(None)
    convs.extend(conv_of[v] for v in fixed_views)
    if has_tail:
        convs.append(conv_of[views[-1]])
    return BatchDecoder(packet_type, width, namespace["_soa"], convs)


def decode(packet: Packet, packet_type: T.TupleType) -> tuple:
    """Build the PLAN-P packet value a channel receives.

    Raises :class:`CodecError` when the packet does not fit the type —
    wrong transport header, truncated payload, or a tail-less layout
    whose payload length is not exactly the fixed view size.
    """
    transport, views = packet_views(packet_type)
    if transport == T.TCP and not isinstance(packet.transport, TcpHeader):
        raise CodecError(f"packet has no tcp header for {packet_type}")
    if transport == T.UDP and not isinstance(packet.transport, UdpHeader):
        raise CodecError(f"packet has no udp header for {packet_type}")
    if transport is None and packet.transport is not None:
        raise CodecError(
            f"packet carries a transport header but {packet_type} is raw")
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    _check_payload_len(len(packet.payload), fixed, has_tail, packet_type)
    parts: list[object] = [packet.ip]
    if transport is not None:
        parts.append(packet.transport)
    offset = 0
    payload = packet.payload
    for view in views:
        if view == T.BLOB:
            parts.append(payload[offset:])
            offset = len(payload)
        elif view == T.STRING:
            parts.append(payload[offset:].decode("latin-1"))
            offset = len(payload)
        elif view == T.CHAR:
            parts.append(chr(payload[offset]))
            offset += 1
        elif view == T.BOOL:
            parts.append(payload[offset] != 0)
            offset += 1
        elif view == T.INT:
            parts.append(int.from_bytes(payload[offset:offset + 4], "big",
                                        signed=True))
            offset += 4
        elif view == T.HOST:
            parts.append(HostAddr(int.from_bytes(
                payload[offset:offset + 4], "big")))
            offset += 4
    return tuple(parts)


def encode(value: tuple, *, channel: str | None = None,
           created_at: float = 0.0) -> Packet:
    """Build a wire packet from a PLAN-P packet value.

    The layout is recovered from the runtime types of the components, so
    any well-typed channel emission encodes without extra metadata.
    """
    if not value or not isinstance(value[0], IpHeader):
        raise CodecError(f"packet value must start with an ip header, "
                         f"got {value!r}")
    ip = value[0]
    rest = value[1:]
    transport: TcpHeader | UdpHeader | None = None
    if rest and isinstance(rest[0], (TcpHeader, UdpHeader)):
        transport = rest[0]
        rest = rest[1:]
        proto = PROTO_TCP if isinstance(transport, TcpHeader) else PROTO_UDP
    else:
        proto = PROTO_RAW
    if ip.proto != proto:
        ip = IpHeader(src=ip.src, dst=ip.dst, ttl=ip.ttl, proto=proto,
                      tos=ip.tos)
    chunks: list[bytes] = []
    for part in rest:
        if isinstance(part, bytes):
            chunks.append(part)
        elif isinstance(part, bool):
            chunks.append(b"\x01" if part else b"\x00")
        elif isinstance(part, int):
            try:
                chunks.append(int(part).to_bytes(4, "big", signed=True))
            except OverflowError:
                raise CodecError(
                    f"int {part} does not fit the 4-byte wire "
                    f"encoding") from None
        elif isinstance(part, str) and len(part) == 1:
            chunks.append(part.encode("latin-1", errors="replace"))
        elif isinstance(part, str):
            chunks.append(part.encode("latin-1", errors="replace"))
        elif isinstance(part, HostAddr):
            chunks.append(part.value.to_bytes(4, "big"))
        else:
            raise CodecError(
                f"cannot encode {type(part).__name__} into a payload")
    return Packet(ip=ip, transport=transport, payload=b"".join(chunks),
                  channel=channel, created_at=created_at)
