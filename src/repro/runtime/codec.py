"""Encoding between wire packets and PLAN-P packet values.

A channel's packet type (``ip*tcp*char*int`` etc.) describes a *view* of
a real packet: the IP header, optionally a transport header, then a
sequence of payload views decoded from the payload bytes.  This is how
overloaded ``network`` channels dispatch on the leading payload byte in
figure 4 of the paper — the ``char`` view *is* that byte.

View layout rules:

* fixed-size views: ``char``/``bool`` = 1 byte, ``int`` = 4 bytes
  big-endian signed, ``host`` = 4 bytes;
* ``blob`` and ``string`` consume the remaining payload and therefore
  may only appear as the final component;
* a packet matches a type only if the payload is long enough for all
  fixed views, and any residue is consumed by a trailing blob/string.
"""

from __future__ import annotations

from ..lang import types as T
from ..net.addresses import HostAddr
from ..net.packet import (PROTO_RAW, PROTO_TCP, PROTO_UDP, IpHeader, Packet,
                          TcpHeader, UdpHeader)

_FIXED_SIZES: dict[T.Type, int] = {T.CHAR: 1, T.BOOL: 1, T.INT: 4, T.HOST: 4}


class CodecError(Exception):
    """A value tuple cannot be encoded, or a type is malformed."""


def packet_views(packet_type: T.TupleType) -> tuple[T.Type | None,
                                                    list[T.Type]]:
    """Split a packet type into (transport header type | None, payload
    view types).  Raises :class:`CodecError` on malformed layouts."""
    elems = list(packet_type.elems)
    if not elems or elems[0] != T.IP:
        raise CodecError(f"packet type must start with ip: {packet_type}")
    rest = elems[1:]
    transport: T.Type | None = None
    if rest and rest[0] in (T.TCP, T.UDP):
        transport = rest[0]
        rest = rest[1:]
    for view in rest[:-1]:
        if view in (T.BLOB, T.STRING):
            raise CodecError(
                f"{view} view must be the final component: {packet_type}")
    for view in rest:
        if view not in _FIXED_SIZES and view not in (T.BLOB, T.STRING):
            raise CodecError(f"unsupported payload view {view}")
    return transport, rest


def matches(packet: Packet, packet_type: T.TupleType) -> bool:
    """Does a wire packet match a channel's packet type?"""
    try:
        transport, views = packet_views(packet_type)
    except CodecError:
        return False
    if transport == T.TCP and not isinstance(packet.transport, TcpHeader):
        return False
    if transport == T.UDP and not isinstance(packet.transport, UdpHeader):
        return False
    if transport is None and packet.transport is not None:
        return False
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    if len(packet.payload) < fixed:
        return False
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    if not has_tail and len(packet.payload) != fixed:
        return False
    return True


class DispatchPlan:
    """Everything dispatch needs to know about one channel's packet type,
    computed once (at install time) instead of per packet.

    A packet matches iff its transport header is an instance of
    ``transport_cls`` (``type(None)`` for raw) and its payload length
    fits ``fixed``/``has_tail``; ``decode`` then builds the packet value
    with all view offsets precomputed.
    """

    __slots__ = ("transport_cls", "fixed", "has_tail", "decode")

    def __init__(self, transport_cls: type, fixed: int, has_tail: bool,
                 decode):
        self.transport_cls = transport_cls
        self.fixed = fixed
        self.has_tail = has_tail
        self.decode = decode

    def admits(self, payload_len: int) -> bool:
        if self.has_tail:
            return payload_len >= self.fixed
        return payload_len == self.fixed


def _view_steps(views: list[T.Type]) -> list:
    """One closure per payload view, offset baked in."""
    steps = []
    offset = 0
    for view in views:
        if view == T.BLOB:
            steps.append(lambda payload, o=offset: payload[o:])
        elif view == T.STRING:
            steps.append(
                lambda payload, o=offset: payload[o:].decode("latin-1"))
        elif view == T.CHAR:
            steps.append(lambda payload, o=offset: chr(payload[o]))
            offset += 1
        elif view == T.BOOL:
            steps.append(lambda payload, o=offset: payload[o] != 0)
            offset += 1
        elif view == T.INT:
            steps.append(lambda payload, o=offset: int.from_bytes(
                payload[o:o + 4], "big", signed=True))
            offset += 4
        elif view == T.HOST:
            steps.append(lambda payload, o=offset: HostAddr(int.from_bytes(
                payload[o:o + 4], "big")))
            offset += 4
    return steps


def make_decoder(packet_type: T.TupleType):
    """Compile ``decode(packet, packet_type)`` down to a closure with the
    view walk and all offsets resolved ahead of time."""
    transport, views = packet_views(packet_type)
    steps = _view_steps(views)
    if transport is None:
        def decode_raw(packet: Packet) -> tuple:
            payload = packet.payload
            return (packet.ip, *(step(payload) for step in steps))

        return decode_raw

    def decode_transport(packet: Packet) -> tuple:
        payload = packet.payload
        return (packet.ip, packet.transport,
                *(step(payload) for step in steps))

    return decode_transport


def dispatch_plan(packet_type: T.TupleType) -> DispatchPlan | None:
    """The precomputed matcher+decoder for a channel's packet type, or
    ``None`` if the layout is malformed (such a channel never matches)."""
    try:
        transport, views = packet_views(packet_type)
    except CodecError:
        return None
    if transport == T.TCP:
        transport_cls: type = TcpHeader
    elif transport == T.UDP:
        transport_cls = UdpHeader
    else:
        transport_cls = type(None)
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    return DispatchPlan(transport_cls, fixed, has_tail,
                        make_decoder(packet_type))


def decode(packet: Packet, packet_type: T.TupleType) -> tuple:
    """Build the PLAN-P packet value a channel receives."""
    transport, views = packet_views(packet_type)
    parts: list[object] = [packet.ip]
    if transport is not None:
        parts.append(packet.transport)
    offset = 0
    payload = packet.payload
    for view in views:
        if view == T.BLOB:
            parts.append(payload[offset:])
            offset = len(payload)
        elif view == T.STRING:
            parts.append(payload[offset:].decode("latin-1"))
            offset = len(payload)
        elif view == T.CHAR:
            parts.append(chr(payload[offset]))
            offset += 1
        elif view == T.BOOL:
            parts.append(payload[offset] != 0)
            offset += 1
        elif view == T.INT:
            parts.append(int.from_bytes(payload[offset:offset + 4], "big",
                                        signed=True))
            offset += 4
        elif view == T.HOST:
            parts.append(HostAddr(int.from_bytes(
                payload[offset:offset + 4], "big")))
            offset += 4
    return tuple(parts)


def encode(value: tuple, *, channel: str | None = None,
           created_at: float = 0.0) -> Packet:
    """Build a wire packet from a PLAN-P packet value.

    The layout is recovered from the runtime types of the components, so
    any well-typed channel emission encodes without extra metadata.
    """
    if not value or not isinstance(value[0], IpHeader):
        raise CodecError(f"packet value must start with an ip header, "
                         f"got {value!r}")
    ip = value[0]
    rest = value[1:]
    transport: TcpHeader | UdpHeader | None = None
    if rest and isinstance(rest[0], (TcpHeader, UdpHeader)):
        transport = rest[0]
        rest = rest[1:]
        proto = PROTO_TCP if isinstance(transport, TcpHeader) else PROTO_UDP
    else:
        proto = PROTO_RAW
    if ip.proto != proto:
        ip = IpHeader(src=ip.src, dst=ip.dst, ttl=ip.ttl, proto=proto,
                      tos=ip.tos)
    chunks: list[bytes] = []
    for part in rest:
        if isinstance(part, bytes):
            chunks.append(part)
        elif isinstance(part, bool):
            chunks.append(b"\x01" if part else b"\x00")
        elif isinstance(part, int):
            chunks.append(int(part).to_bytes(4, "big", signed=True))
        elif isinstance(part, str) and len(part) == 1:
            chunks.append(part.encode("latin-1", errors="replace"))
        elif isinstance(part, str):
            chunks.append(part.encode("latin-1", errors="replace"))
        elif isinstance(part, HostAddr):
            chunks.append(part.value.to_bytes(4, "big"))
        else:
            raise CodecError(
                f"cannot encode {type(part).__name__} into a payload")
    return Packet(ip=ip, transport=transport, payload=b"".join(chunks),
                  channel=channel, created_at=created_at)
