"""The PLAN-P run-time system: node layer, wire codec, deployment."""

from .codec import CodecError, decode, encode, matches, packet_views
from .deployment import Deployment, DeploymentRecord
from .netdeploy import DeploymentManager, DeploymentService, PushStatus
from .planp_layer import PlanPLayer, PlanPStats

__all__ = [
    "CodecError",
    "Deployment",
    "DeploymentRecord",
    "DeploymentManager",
    "DeploymentService",
    "PushStatus",
    "PlanPLayer",
    "PlanPStats",
    "decode",
    "encode",
    "matches",
    "packet_views",
]
