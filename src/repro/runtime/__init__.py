"""The PLAN-P run-time system: node layer, wire codec, deployment."""

from .codec import (CodecError, DispatchPlan, decode, dispatch_plan, encode,
                    make_decoder, matches, packet_views)
from .deployment import Deployment, DeploymentRecord
from .netdeploy import (DeploymentManager, DeploymentService,
                        ManifestEntry, PushStatus, RetryPolicy)
from .planp_layer import PlanPLayer, PlanPStats

__all__ = [
    "CodecError",
    "Deployment",
    "DeploymentRecord",
    "DeploymentManager",
    "DeploymentService",
    "DispatchPlan",
    "ManifestEntry",
    "PushStatus",
    "RetryPolicy",
    "PlanPLayer",
    "PlanPStats",
    "decode",
    "dispatch_plan",
    "encode",
    "make_decoder",
    "matches",
    "packet_views",
]
