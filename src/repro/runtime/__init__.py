"""The PLAN-P run-time system: node layer, wire codec, deployment,
and the ASP lifecycle manager (staged rollout / quarantine / rollback)."""

from .codec import (CodecError, DispatchPlan, decode, dispatch_plan, encode,
                    make_decoder, matches, packet_views)
from .deployment import Deployment, DeploymentRecord
from .lifecycle import (BreakerState, CircuitBreaker, Generation,
                        LifecycleManager, LifecyclePolicy, NodeLifecycle,
                        Rollout, RolloutState)
from .netdeploy import (DeploymentManager, DeploymentService,
                        ManifestEntry, PushStatus, RetryPolicy)
from .planp_layer import PlanPLayer, PlanPStats, ProgramSnapshot

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CodecError",
    "Deployment",
    "DeploymentRecord",
    "DeploymentManager",
    "DeploymentService",
    "DispatchPlan",
    "Generation",
    "LifecycleManager",
    "LifecyclePolicy",
    "ManifestEntry",
    "NodeLifecycle",
    "ProgramSnapshot",
    "PushStatus",
    "RetryPolicy",
    "PlanPLayer",
    "PlanPStats",
    "Rollout",
    "RolloutState",
    "decode",
    "dispatch_plan",
    "encode",
    "make_decoder",
    "matches",
    "packet_views",
]
