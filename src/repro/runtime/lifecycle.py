"""ASP lifecycle management: staged rollout, quarantine, rollback.

The paper's premise is hot-loading programs into live routers (§2.1,
§5); this module is the operational defense against a *bad* one.  A
:class:`LifecycleManager` layers three mechanisms over
:class:`~repro.runtime.deployment.Deployment` /
:mod:`~repro.runtime.netdeploy`:

* **Versioned install history.**  Every managed node keeps a
  generation-numbered list of :class:`Generation` records.  When a new
  program supersedes a running one, the outgoing generation is
  snapshotted *with* its protocol and channel state
  (:class:`~repro.runtime.planp_layer.ProgramSnapshot`), so a rollback
  restores the previous program exactly where it left off.  The history
  is fed by a hook inside :meth:`PlanPLayer.install_loaded`, so installs
  from any path — direct, :class:`Deployment`, a network
  :class:`~repro.runtime.netdeploy.DeploymentService`, a manifest
  replay after a crash — are all versioned.

* **Staged, health-gated rollout.**  :meth:`LifecycleManager.rollout`
  first proves the candidate **wire-compatible** with every generation
  currently running on the target fleet (the per-channel
  :class:`~repro.analysis.wire.WireSummary` comparison — packet shapes
  and emission topology): an incompatible candidate is **vetoed** with
  a structured reason before any canary packet flows (``rollout`` /
  ``veto`` event; ``force=True`` is the operator override).  It then
  installs on a canary subset first, holds for
  ``LifecyclePolicy.health_window`` simulated seconds, and judges the
  canaries on packets processed, the runtime-error rate, and the
  fleet-wide delivery-drop delta from ``Network.metrics_snapshot()``.
  Healthy canaries promote the program to the rest of the fleet;
  anything else aborts and rolls the canaries back::

      STAGED ──> CANARY ──> PROMOTED
                    └─────> ABORTED  (canaries rolled back)

* **Error-budget circuit breaker.**  Each managed node runs a
  :class:`CircuitBreaker` over a sliding sim-time window: more than
  ``error_budget`` runtime errors inside ``budget_window`` seconds
  trips it, the ASP is **quarantined** (uninstalled — the node reverts
  to standard IP processing), and after ``cooldown`` seconds the
  breaker half-opens for a retrial — or, once a generation has tripped
  ``rollback_after_trips`` times on a node, triggers **automatic
  rollback** of that generation across the fleet::

      CLOSED ──(budget exceeded)──> OPEN ──(cooldown)──> HALF-OPEN
         ^                                                   │
         └──(probation_packets clean)────────────────────────┤
                          OPEN <──(any error during retrial)─┘

Transports: with no deployment manager, installs/rollbacks happen
directly through :class:`Deployment` (state-preserving restore).  Given
a :class:`~repro.runtime.netdeploy.DeploymentManager`, promotion and
rollback ship over the wire instead — reusing the ack/backoff push
machinery, and landing in each node's persistent install manifest so a
crash replay converges on the rolled-back program.

Everything is observable: ``rollout`` / ``quarantine`` / ``rollback``
events in the network's event log, and a ``lifecycle.*`` metrics block
(rollouts, trips, quarantined nodes, rollbacks) in every snapshot.
All timing runs on the simulator clock, so drills are exactly
reproducible under a seed.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..lang.errors import VerificationError
from ..net.node import Node
from ..net.topology import Network
from .deployment import Deployment
from .planp_layer import PlanPLayer, ProgramSnapshot

if TYPE_CHECKING:
    from ..jit.pipeline import LoadedProgram
    from .netdeploy import DeploymentManager


class RolloutState(enum.Enum):
    STAGED = "staged"
    CANARY = "canary"
    PROMOTED = "promoted"
    ABORTED = "aborted"


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class LifecyclePolicy:
    """Every knob of the lifecycle manager (times in sim-seconds)."""

    #: fraction of the fleet used as canaries (at least ``min_canary``)
    canary_fraction: float = 0.25
    #: lower bound on the canary subset size
    min_canary: int = 1
    #: how long canaries hold before the health gate judges them
    health_window: float = 1.0
    #: canary runtime errors allowed per processed packet
    max_error_rate: float = 0.0
    #: fleet-wide delivery-drop increase allowed during the window
    #: (``None`` disables the drop gate)
    max_drop_delta: int | None = None
    #: packets the canaries must process before the gate will promote;
    #: a silent canary extends the window instead of judging blind
    min_canary_packets: int = 1
    #: window extensions granted to a silent canary before aborting
    max_extensions: int = 3
    #: runtime errors tolerated within ``budget_window`` before the
    #: breaker trips (the error budget)
    error_budget: int = 5
    #: length of the breaker's sliding sim-time window
    budget_window: float = 1.0
    #: OPEN hold before a half-open retrial (or rollback)
    cooldown: float = 0.5
    #: clean packets a half-open ASP must process to close the breaker
    probation_packets: int = 50
    #: trips of one generation on one node before the manager stops
    #: retrying and rolls the fleet back instead
    rollback_after_trips: int = 2
    #: statically prove gen-N ↔ gen-N+1 wire compatibility before a
    #: canary window opens; an incompatible candidate is vetoed
    #: (``force=True`` overrides)
    wire_check: bool = True


class CircuitBreaker:
    """Error-budget circuit breaker over a sliding sim-time window.

    Pure mechanism: it owns no node and schedules nothing — it just
    answers "did this error exhaust the budget?" against an injected
    clock.  The window is exact, not bucketed, and **closed**: an error
    at time ``t`` still counts at ``t + window`` (the window is the
    inclusive interval ``[now - window, now]``), so the breaker trips
    at the first error that makes some such window hold more than
    ``budget`` errors, and never trips otherwise.
    """

    def __init__(self, *, budget: int, window: float,
                 probation: int, clock: Callable[[], float]):
        if budget < 0:
            raise ValueError(f"negative error budget {budget}")
        if window <= 0:
            raise ValueError(f"non-positive window {window}")
        self.budget = budget
        self.window = window
        self.probation = probation
        self.clock = clock
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.opened_at: float | None = None
        self._errors: deque[float] = deque()
        self._ok_run = 0

    def _expire(self, now: float) -> None:
        # Strict <: an error exactly ``window`` seconds old is still
        # inside the closed window and must keep counting.
        horizon = now - self.window
        errors = self._errors
        while errors and errors[0] < horizon:
            errors.popleft()

    @property
    def errors_in_window(self) -> int:
        self._expire(self.clock())
        return len(self._errors)

    def record_error(self) -> bool:
        """Account one runtime error; True when it trips the breaker.

        CLOSED trips when the window exceeds the budget; HALF_OPEN
        trips on any error (the retrial failed); OPEN absorbs errors
        from packets already in flight without re-tripping.
        """
        if self.state is BreakerState.OPEN:
            return False
        now = self.clock()
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
            return True
        self._errors.append(now)
        self._expire(now)
        if len(self._errors) > self.budget:
            self._trip(now)
            return True
        return False

    def record_ok(self) -> bool:
        """Account one clean packet; True when a half-open probation
        completes and the breaker closes."""
        if self.state is not BreakerState.HALF_OPEN:
            return False
        self._ok_run += 1
        if self._ok_run >= self.probation:
            self.close()
            return True
        return False

    def _trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.trips += 1
        self.opened_at = now
        self._errors.clear()

    def half_open(self) -> None:
        """Begin a retrial: traffic flows again, but one error re-trips."""
        self.state = BreakerState.HALF_OPEN
        self._ok_run = 0

    def close(self) -> None:
        """Fully reset: fresh budget, trip history kept."""
        self.state = BreakerState.CLOSED
        self._errors.clear()
        self._ok_run = 0
        self.opened_at = None


@dataclass
class Generation:
    """One entry of a node's versioned install history."""

    number: int
    sha: str
    source: str
    backend: str
    verified: bool
    source_name: str = ""
    #: simulated time of the install
    installed_at: float = 0.0
    #: program + live state captured when a newer generation superseded
    #: this one (what a rollback restores)
    snapshot: ProgramSnapshot | None = None


class NodeLifecycle:
    """Per-node lifecycle state: history + breaker + quarantine flag."""

    def __init__(self, manager: "LifecycleManager", node: Node,
                 layer: PlanPLayer):
        self.manager = manager
        self.node = node
        self.layer = layer
        policy = manager.policy
        self.breaker = CircuitBreaker(
            budget=policy.error_budget, window=policy.budget_window,
            probation=policy.probation_packets,
            clock=lambda: manager.net.sim.now)
        #: generation-numbered install history, oldest first
        self.generations: list[Generation] = []
        #: generations removed by rollback (audit trail)
        self.rolled_back: list[Generation] = []
        self.quarantined = False
        self._gen_counter = 0

    @property
    def current(self) -> Generation | None:
        return self.generations[-1] if self.generations else None

    # -- install hooks (called from PlanPLayer.install_loaded) -----------------

    def before_install(self, loaded: "LoadedProgram") -> None:
        current = self.current
        if (current is not None and self.layer.loaded is not None
                and loaded.source_sha != current.sha):
            current.snapshot = self.layer.snapshot_program()

    def on_install(self, loaded: "LoadedProgram") -> None:
        self.quarantined = False
        current = self.current
        if current is not None and current.sha == loaded.source_sha:
            # Re-install of the running generation (half-open retrial,
            # manifest replay after a restart): same version, no new
            # history entry — but its state snapshot is now stale.
            current.snapshot = None
            return
        self._gen_counter += 1
        self.generations.append(Generation(
            number=self._gen_counter, sha=loaded.source_sha,
            source=loaded.source, backend=loaded.backend,
            verified=loaded.verified,
            installed_at=self.manager.net.sim.now))
        self.breaker.close()

    # -- packet hooks (called from PlanPLayer._process_now) --------------------

    def on_packet_ok(self) -> None:
        if self.breaker.record_ok():
            self.manager._on_probation_passed(self)

    def on_packet_error(self, reason: str) -> None:
        if self.breaker.record_error():
            self.manager._on_trip(self, reason)


@dataclass
class Rollout:
    """One staged rollout: STAGED → CANARY → PROMOTED / ABORTED."""

    number: int
    sha: str
    source_name: str
    nodes: list[str]
    canary: list[str]
    state: RolloutState = RolloutState.STAGED
    #: why the rollout aborted (empty while live / after promotion)
    reason: str = ""
    #: wire-compatibility verdict per distinct running generation
    #: (old-generation sha prefix -> verdict description)
    wire_verdicts: dict[str, str] = field(default_factory=dict)
    #: canary health baseline: node -> (packets_processed, runtime_errors)
    baseline: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: fleet delivery-drop count at canary time
    baseline_drops: int = 0
    #: health-window extensions granted to silent canaries
    extensions: int = 0

    @property
    def decided(self) -> bool:
        return self.state in (RolloutState.PROMOTED, RolloutState.ABORTED)


class LifecycleManager:
    """Operates ASPs across one network: rollout, quarantine, rollback."""

    def __init__(self, net: Network, *,
                 deployment: Deployment | None = None,
                 netdeploy: "DeploymentManager | None" = None,
                 policy: LifecyclePolicy | None = None):
        self.net = net
        self.policy = policy or LifecyclePolicy()
        self.deployment = deployment or Deployment()
        #: optional wire transport: installs/rollbacks go through the
        #: ack/backoff push protocol instead of direct installation
        self.netdeploy = netdeploy
        self.nodes: dict[str, NodeLifecycle] = {}
        self.rollouts: list[Rollout] = []
        #: rollout number -> (source, backend, verify), for promotion
        self._rollout_args: dict[int, tuple[str, str, bool]] = {}
        # deterministic counters (all land in metrics snapshots)
        self.promoted = 0
        self.aborted = 0
        self.vetoes = 0
        self.trips = 0
        self.quarantines = 0
        self.half_opens = 0
        self.closes = 0
        self.rollbacks = 0
        net.obs.metrics.register("lifecycle", self._stats_dict)

    def _stats_dict(self) -> dict[str, int]:
        return {
            "managed_nodes": len(self.nodes),
            "rollouts": len(self.rollouts),
            "promoted": self.promoted,
            "aborted": self.aborted,
            "vetoes": self.vetoes,
            "trips": self.trips,
            "quarantines": self.quarantines,
            "half_opens": self.half_opens,
            "closes": self.closes,
            "rollbacks": self.rollbacks,
            "quarantined_nodes": sum(1 for nl in self.nodes.values()
                                     if nl.quarantined),
        }

    # -- node management --------------------------------------------------------

    def manage(self, *nodes: Node | str) -> list[NodeLifecycle]:
        """Attach lifecycle state to nodes (idempotent); a node must be
        managed before rollouts or breakers can cover it."""
        out = []
        for node in nodes:
            node = self.net[node] if isinstance(node, str) else node
            nl = self.nodes.get(node.name)
            if nl is None:
                layer = self.deployment.layer_of(node)
                nl = NodeLifecycle(self, node, layer)
                layer.lifecycle = nl
                self.nodes[node.name] = nl
                if layer.loaded is not None:
                    # Adopt a pre-existing program as generation 1.
                    nl.on_install(layer.loaded)
            out.append(nl)
        return out

    def of(self, node: Node | str) -> NodeLifecycle:
        name = node if isinstance(node, str) else node.name
        return self.nodes[name]

    def quarantined_nodes(self) -> list[str]:
        return sorted(name for name, nl in self.nodes.items()
                      if nl.quarantined)

    # -- staged rollout ---------------------------------------------------------

    def rollout(self, source: str, nodes: list[Node | str], *,
                backend: str = "closure", verify: bool = True,
                source_name: str = "<asp>",
                canary: list[Node | str] | None = None,
                force: bool = False) -> Rollout:
        """Stage ``source`` across ``nodes``: canary first, then a
        health-gated promotion (or abort + canary rollback).

        ``canary`` overrides the policy's canary selection (the first
        ``canary_fraction`` of the fleet, in the given order).
        ``force=True`` skips both the wire-compatibility veto and the
        health gate and promotes immediately — the privileged operator
        path; the circuit breakers still guard it.
        Raises :class:`VerificationError` (touching no node) when
        ``verify`` is requested and fails.

        When ``policy.wire_check`` holds, the candidate's
        :class:`~repro.analysis.wire.WireSummary` is compared against
        every generation currently running on the target nodes; an
        ``incompatible`` verdict vetoes the rollout *before any canary
        packet flows* — the returned rollout is ABORTED with a
        ``wire-incompatible:`` reason and a ``rollout``/``veto`` event
        is emitted, and no node is touched.
        """
        managed = self.manage(*nodes)
        names = [nl.node.name for nl in managed]
        if verify:
            # Front-end once, centrally — a rejected program reaches no
            # node, exactly like Deployment.install.
            cache = self.deployment.cache
            key, info = cache.frontend(source, source_name)
            report = cache.verification(key, info)
            if not report.passed:
                failure = report.failures[0]
                raise VerificationError(
                    f"{source_name} rejected by {failure.name}: "
                    f"{failure.detail}", analysis=failure.name)
        from ..jit.pipeline import ProgramCache

        sha = ProgramCache.digest(source)
        if canary is not None:
            canary_names = [self.net[n].name if isinstance(n, str)
                            else n.name for n in canary]
        else:
            count = max(self.policy.min_canary,
                        int(len(names) * self.policy.canary_fraction))
            canary_names = names[:min(count, len(names))]
        rollout = Rollout(number=len(self.rollouts) + 1, sha=sha,
                          source_name=source_name, nodes=names,
                          canary=list(canary_names))
        self.rollouts.append(rollout)
        self._rollout_args[rollout.number] = (source, backend, verify)
        self._emit("rollout", action="stage", rollout=rollout.number,
                   sha=sha[:12], nodes=len(names),
                   canary=len(canary_names), name=source_name)
        if self.policy.wire_check and not force:
            blockers = self._wire_gate(rollout, source, source_name,
                                       names)
            if blockers:
                rollout.state = RolloutState.ABORTED
                rollout.reason = "wire-incompatible: " \
                    + "; ".join(blockers)
                self.vetoes += 1
                self.aborted += 1
                return rollout
        if force:
            self._install(source, names, backend, verify, source_name)
            rollout.state = RolloutState.PROMOTED
            self.promoted += 1
            self._emit("rollout", action="force-promote",
                       rollout=rollout.number, sha=sha[:12],
                       nodes=len(names))
            return rollout
        self._install(source, canary_names, backend, verify, source_name)
        rollout.state = RolloutState.CANARY
        self._begin_health_window(rollout)
        self._emit("rollout", action="canary", rollout=rollout.number,
                   sha=sha[:12], nodes=len(canary_names))
        return rollout

    def _wire_gate(self, rollout: Rollout, source: str,
                   source_name: str, names: list[str]) -> list[str]:
        """Prove the candidate wire-compatible with every generation
        currently running on ``names``.

        Fills ``rollout.wire_verdicts`` (one verdict per distinct
        running generation) and returns the blocking descriptions —
        empty when the fleet may mix the candidate with everything it
        currently runs.  A candidate whose source cannot even be
        summarized (e.g. an unparseable ``verify=False`` push destined
        for node-side rejection) is left to the install path's own
        error handling.
        """
        from ..analysis.wire import check_compatible

        cache = self.deployment.cache
        try:
            key, info = cache.frontend(source, source_name)
            new_summary = cache.wire(key, info)
        except Exception:
            return []
        # One check per distinct running generation, not per node.
        running: dict[str, tuple[Generation, list[str]]] = {}
        for name in names:
            gen = self.nodes[name].current
            if gen is None or gen.sha == key:
                continue
            running.setdefault(gen.sha, (gen, []))[1].append(name)
        blockers: list[str] = []
        for gen_sha in sorted(running):
            gen, on_nodes = running[gen_sha]
            try:
                old_key, old_info = cache.frontend(
                    gen.source, gen.source_name or "<running>")
                old_summary = cache.wire(old_key, old_info)
            except Exception:
                continue
            report = check_compatible(old_summary, new_summary)
            rollout.wire_verdicts[gen_sha[:12]] = report.describe()
            if not report.ok:
                detail = report.describe()
                blockers.append(
                    f"vs {gen_sha[:12]} on {len(on_nodes)} node(s): "
                    f"{detail}")
                self._emit("rollout", action="veto",
                           rollout=rollout.number, sha=rollout.sha[:12],
                           against=gen_sha[:12], nodes=len(on_nodes),
                           verdict=detail)
        return blockers

    def _begin_health_window(self, rollout: Rollout) -> None:
        rollout.baseline = {
            name: (self.nodes[name].layer.stats.packets_processed,
                   self.nodes[name].layer.stats.runtime_errors)
            for name in rollout.canary}
        rollout.baseline_drops = self._fleet_drops()
        self.net.sim.schedule(self.policy.health_window,
                              lambda: self._judge(rollout))

    def _fleet_drops(self) -> int:
        """Fleet-wide delivery drops (the ``drops_total`` counter every
        node and medium taps into)."""
        snap = self.net.metrics_snapshot(include_global=False)
        value = snap.get("drops_total", 0)
        return int(value) if isinstance(value, (int, float)) else 0

    def _judge(self, rollout: Rollout) -> None:
        """The canary health gate, fired ``health_window`` after the
        canary install."""
        if rollout.state is not RolloutState.CANARY:
            return  # superseded (tripped canary already aborted it)
        policy = self.policy
        processed = 0
        failures: list[str] = []
        for name in rollout.canary:
            nl = self.nodes[name]
            base_p, base_e = rollout.baseline[name]
            dp = nl.layer.stats.packets_processed - base_p
            de = nl.layer.stats.runtime_errors - base_e
            processed += dp
            if nl.quarantined or nl.breaker.state is not BreakerState.CLOSED:
                failures.append(f"{name}: breaker "
                                f"{nl.breaker.state.value}")
            elif nl.current is None or nl.current.sha != rollout.sha:
                failures.append(f"{name}: canary lost the program")
            elif de > 0 and de > policy.max_error_rate * max(dp, 1):
                failures.append(f"{name}: {de} errors / {dp} packets")
        if policy.max_drop_delta is not None:
            drop_delta = self._fleet_drops() - rollout.baseline_drops
            if drop_delta > policy.max_drop_delta:
                failures.append(f"fleet: {drop_delta} delivery drops")
        if not failures and processed < policy.min_canary_packets:
            if rollout.extensions < policy.max_extensions:
                # Silent canaries are not evidence; hold a bit longer.
                rollout.extensions += 1
                self.net.sim.schedule(policy.health_window,
                                      lambda: self._judge(rollout))
                return
            failures.append(f"canaries processed {processed} packets "
                            f"in {rollout.extensions + 1} windows")
        if failures:
            self._abort(rollout, "; ".join(failures))
        else:
            self._promote(rollout)

    def _promote(self, rollout: Rollout) -> None:
        source, backend, verify = self._rollout_args[rollout.number]
        rest = [n for n in rollout.nodes if n not in set(rollout.canary)]
        self._install(source, rest, backend, verify,
                      rollout.source_name)
        rollout.state = RolloutState.PROMOTED
        self.promoted += 1
        self._emit("rollout", action="promote", rollout=rollout.number,
                   sha=rollout.sha[:12], nodes=len(rest))

    def _abort(self, rollout: Rollout, reason: str) -> None:
        rollout.state = RolloutState.ABORTED
        rollout.reason = reason
        self.aborted += 1
        self._emit("rollout", action="abort", rollout=rollout.number,
                   sha=rollout.sha[:12], reason=reason)
        self._rollback_nodes(rollout.canary, rollout.sha,
                             reason=f"canary abort: {reason}")

    # -- installs (direct or over the wire) ------------------------------------

    def _install(self, source: str, names: list[str], backend: str,
                 verify: bool, source_name: str) -> None:
        if not names:
            return
        if self.netdeploy is None:
            self.deployment.install(
                source, [self.nodes[n].node for n in names],
                backend=backend, verify=verify, source_name=source_name)
        else:
            self.netdeploy.push(
                source, [self.nodes[n].node.address for n in names],
                backend=backend, verify=verify)

    # -- circuit breaker orchestration -----------------------------------------

    def _on_trip(self, nl: NodeLifecycle, reason: str) -> None:
        """A node's breaker tripped: quarantine the ASP and schedule
        the cool-down decision."""
        self.trips += 1
        gen = nl.current
        gen_number = gen.number if gen is not None else 0
        self.quarantines += 1
        nl.quarantined = True
        nl.layer.uninstall()
        nl.layer.quarantined = True
        self._emit("quarantine", action="trip", node=nl.node.name,
                   generation=gen_number,
                   sha=(gen.sha[:12] if gen is not None else ""),
                   trips=nl.breaker.trips, reason=reason)
        # A tripped canary decides its rollout immediately — no point
        # holding the health window open over a quarantined node.
        for rollout in self.rollouts:
            if (rollout.state is RolloutState.CANARY
                    and nl.node.name in rollout.canary
                    and gen is not None and rollout.sha == gen.sha):
                self._abort(rollout,
                            f"{nl.node.name}: error budget exhausted")
                return
        self.net.sim.schedule(
            self.policy.cooldown,
            lambda: self._after_cooldown(nl, gen_number))

    def _after_cooldown(self, nl: NodeLifecycle, gen_number: int) -> None:
        gen = nl.current
        if (not nl.quarantined or gen is None
                or gen.number != gen_number):
            return  # rolled back or replaced while cooling down
        if nl.breaker.trips >= self.policy.rollback_after_trips:
            # Out of retrials.  Roll the generation back fleet-wide —
            # to its predecessor where one exists, to standard IP
            # processing where this was the first install.
            self._rollback_fleet(gen.sha,
                                 reason=f"{nl.node.name} tripped "
                                        f"{nl.breaker.trips}x")
            return
        # Half-open retrial: reinstall the same generation (warm, via
        # the program cache) and watch it under probation.
        self.half_opens += 1
        nl.breaker.half_open()
        self._emit("quarantine", action="half-open", node=nl.node.name,
                   generation=gen.number, sha=gen.sha[:12])
        self._install(gen.source, [nl.node.name], gen.backend,
                      gen.verified, gen.source_name or "<retrial>")

    def _on_probation_passed(self, nl: NodeLifecycle) -> None:
        self.closes += 1
        gen = nl.current
        self._emit("quarantine", action="close", node=nl.node.name,
                   generation=(gen.number if gen is not None else 0))

    # -- rollback ---------------------------------------------------------------

    def rollback(self, sha: str | None = None, *,
                 reason: str = "operator") -> list[str]:
        """Roll every node running generation ``sha`` (default: its
        newest generation) back to the one before it.  Returns the
        nodes rolled back.

        A ``sha`` absent from a node's history skips that node with a
        ``rollback``/``skip`` event; absent from *every* node's
        history, the call is a clean audited no-op (never an exception
        mid-fleet).
        """
        if sha is not None:
            names = [name for name, nl in self.nodes.items()
                     if (nl.current is not None
                         and nl.current.sha == sha)
                     or (nl.quarantined and nl.generations
                         and nl.generations[-1].sha == sha)]
            if not names:
                self._emit("rollback", action="skip", sha=sha[:12],
                           node="", nodes=0,
                           reason="no managed node runs this "
                                  "generation")
                return []
            for name in sorted(set(self.nodes) - set(names)):
                nl = self.nodes[name]
                self._emit("rollback", action="skip", sha=sha[:12],
                           node=name,
                           current=(nl.current.sha[:12]
                                    if nl.current is not None else ""),
                           reason="generation not running here")
        else:
            names = [name for name, nl in self.nodes.items()
                     if len(nl.generations) > 1]
        return self._rollback_nodes(sorted(names), sha, reason=reason)

    def _rollback_fleet(self, sha: str, *, reason: str) -> None:
        """Automatic rollback: every managed node on ``sha`` reverts."""
        self.rollbacks += 1
        names = [name for name in sorted(self.nodes)
                 if (nl := self.nodes[name]).generations
                 and nl.generations[-1].sha == sha]
        self._emit("rollback", action="start", sha=sha[:12],
                   nodes=len(names), reason=reason)
        rolled = self._rollback_nodes(names, sha, reason=reason)
        self._emit("rollback", action="done", sha=sha[:12],
                   nodes=len(rolled))

    def _rollback_nodes(self, names: list[str], sha: str | None, *,
                        reason: str) -> list[str]:
        rolled: list[str] = []
        for name in names:
            nl = self.nodes[name]
            if not nl.generations:
                continue
            bad = nl.generations[-1]
            if sha is not None and bad.sha != sha:
                continue
            if len(nl.generations) < 2:
                # Nothing to return to: leave standard IP processing.
                nl.generations.pop()
                nl.rolled_back.append(bad)
                nl.layer.uninstall()
                nl.layer.quarantined = False
                nl.quarantined = False
                nl.breaker.close()
                self._emit("rollback", action="node", node=name,
                           from_generation=bad.number, to_generation=0,
                           reason=reason)
                rolled.append(name)
                continue
            nl.generations.pop()
            nl.rolled_back.append(bad)
            prev = nl.generations[-1]
            try:
                self._restore(nl, prev)
            except Exception as exc:  # noqa: BLE001 — never raise mid-fleet
                # Contain the failure to this node: revert it to
                # standard IP with a truthful (emptied) history and
                # keep rolling the rest of the fleet.
                nl.rolled_back.extend(reversed(nl.generations))
                nl.generations.clear()
                nl.layer.uninstall()
                nl.layer.quarantined = False
                nl.quarantined = False
                nl.breaker.close()
                self._emit("rollback", action="node-failed", node=name,
                           from_generation=bad.number,
                           to_generation=prev.number,
                           error=f"{type(exc).__name__}: {exc}",
                           reason=reason)
                continue
            nl.quarantined = False
            nl.breaker.close()
            self._emit("rollback", action="node", node=name,
                       from_generation=bad.number,
                       to_generation=prev.number, reason=reason)
            rolled.append(name)
        return rolled

    def _restore(self, nl: NodeLifecycle, gen: Generation) -> None:
        """Reinstate ``gen`` on ``nl``'s node: a state-preserving
        restore when its snapshot survives and we operate directly, a
        reinstall over the wire otherwise."""
        if self.netdeploy is not None:
            # Over the wire: the push lands in the node's persistent
            # install manifest, so crash replays converge on it too.
            self.netdeploy.push(gen.source, [nl.node.address],
                                backend=gen.backend,
                                verify=gen.verified)
            gen.snapshot = None
            return
        snap = gen.snapshot
        if snap is not None:
            nl.layer.restore_program(snap)
            gen.snapshot = None
        else:
            self.deployment.install(
                gen.source, [nl.node], backend=gen.backend,
                verify=gen.verified,
                source_name=gen.source_name or "<rollback>")

    # -- helpers ----------------------------------------------------------------

    def settle(self, timeout: float = 30.0, poll: float = 0.05) -> bool:
        """Drive the simulation until no rollout is undecided and no
        node is quarantined (or ``timeout`` sim-seconds pass).  Returns
        True when the fleet settled healthy."""
        sim = self.net.sim
        horizon = sim.now + timeout

        def settled() -> bool:
            return (all(r.decided for r in self.rollouts)
                    and not any(nl.quarantined
                                for nl in self.nodes.values()))

        while sim.now < horizon and not settled():
            # Through the network façade, so sharded topologies poll
            # correctly too.
            self.net.run(until=min(sim.now + poll, horizon))
        return settled()

    def _emit(self, kind: str, **data) -> None:
        self.net.obs.events.emit(kind, **data)
