"""Adversarial packet-stream generator.

Streams are built in two phases: first *valid* packets crafted against
the program's channel packet types (correct transport, exact or
tail-extended payload lengths, extreme-but-legal field values), then
structure-aware *mutations* aimed at the codec, the struct-of-arrays
batch decoder, and the containment path:

* truncation — drop bytes off the payload so fixed views run dry;
* stride breaking — lengths off by one from the fixed-view sum, so
  tail-less layouts and the batch ``iter_unpack`` stride disagree;
* oversized tails — kilobyte tails on blob/string layouts;
* bit flips — corrupt encoded wire bytes in place;
* retagging — wrong or unknown channel tags, transport swaps;
* run repetition — duplicate a packet into a same-shape run so the
  batch path forms real multi-row batches.

Packets travel as :class:`PacketSpec` — a plain-data description that
serializes to JSON for the replay protocol and materializes to a real
:class:`~repro.net.packet.Packet` on demand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..lang import types as T
from ..net.addresses import HostAddr
from ..net.packet import (PROTO_RAW, PROTO_TCP, PROTO_UDP, IpHeader,
                          Packet, TcpHeader, UdpHeader)
from ..runtime import codec

#: valid-but-extreme field values
_PORTS = (0, 1, 80, 8080, 65535)
_TTLS = (0, 1, 64, 255)
_INTS = (0, 1, -1, 255, 2147483647, -2147483648)
_HOSTS = (0, 1, 0x0A000001, 0xFFFFFFFF)


@dataclass(frozen=True)
class PacketSpec:
    """A wire packet as plain data (JSON-serializable for replay)."""

    src: int = 0x0A000001
    dst: int = 0x0A000002
    ttl: int = 64
    tos: int = 0
    transport: str = "tcp"  # "tcp" | "udp" | "raw"
    sport: int = 1000
    dport: int = 80
    syn: bool = False
    payload: bytes = b""
    channel: str | None = None

    def to_packet(self) -> Packet:
        if self.transport == "tcp":
            header: TcpHeader | UdpHeader | None = TcpHeader(
                src_port=self.sport, dst_port=self.dport, syn=self.syn)
            proto = PROTO_TCP
        elif self.transport == "udp":
            header = UdpHeader(src_port=self.sport, dst_port=self.dport)
            proto = PROTO_UDP
        else:
            header = None
            proto = PROTO_RAW
        ip = IpHeader(src=HostAddr(self.src), dst=HostAddr(self.dst),
                      ttl=self.ttl, proto=proto, tos=self.tos)
        return Packet(ip=ip, transport=header, payload=self.payload,
                      channel=self.channel)

    def to_dict(self) -> dict:
        return {"src": self.src, "dst": self.dst, "ttl": self.ttl,
                "tos": self.tos, "transport": self.transport,
                "sport": self.sport, "dport": self.dport,
                "syn": self.syn, "payload": self.payload.hex(),
                "channel": self.channel}

    @classmethod
    def from_dict(cls, data: dict) -> "PacketSpec":
        data = dict(data)
        data["payload"] = bytes.fromhex(data["payload"])
        return cls(**data)


def _valid_payload(rng: random.Random, views: list[T.Type]) -> bytes:
    """A payload every view consumes exactly, with extreme field
    values; tails draw from {empty, short, kilobyte}."""
    chunks: list[bytes] = []
    for view in views:
        if view == T.INT:
            chunks.append(rng.choice(_INTS).to_bytes(4, "big", signed=True))
        elif view == T.HOST:
            chunks.append(rng.choice(_HOSTS).to_bytes(4, "big"))
        elif view == T.CHAR:
            chunks.append(bytes([rng.randrange(256)]))
        elif view == T.BOOL:
            chunks.append(bytes([rng.choice((0, 1, 255))]))
        else:  # blob/string tail
            n = rng.choice((0, 0, 1, 3, 8, 64, 1024))
            chunks.append(rng.randbytes(n))
    return b"".join(chunks)


def _spec_for(rng: random.Random, decl, tag: str | None) -> PacketSpec:
    """A valid packet for one channel overload."""
    transport, views = codec.packet_views(decl.packet_type)
    if transport == T.TCP:
        tname = "tcp"
    elif transport == T.UDP:
        tname = "udp"
    else:
        tname = "raw"
    return PacketSpec(
        src=rng.choice(_HOSTS), dst=rng.choice(_HOSTS),
        ttl=rng.choice(_TTLS), tos=rng.choice((0, 1, 0xFF)),
        transport=tname, sport=rng.choice(_PORTS),
        dport=rng.choice(_PORTS), syn=rng.random() < 0.5,
        payload=_valid_payload(rng, views), channel=tag)


def _mutate(rng: random.Random, spec: PacketSpec,
            channel_names: list[str]) -> PacketSpec:
    """One structure-aware mutation."""
    kind = rng.randrange(7)
    payload = spec.payload
    if kind == 0 and payload:  # truncate
        return replace(spec, payload=payload[:rng.randrange(len(payload))])
    if kind == 1:  # stretch by a stride-breaking amount
        return replace(spec,
                       payload=payload + rng.randbytes(rng.choice((1, 2,
                                                                   3, 5))))
    if kind == 2 and payload:  # bit flip
        i = rng.randrange(len(payload))
        flipped = payload[:i] + bytes([payload[i] ^ (1 << rng.randrange(8))
                                       ]) + payload[i + 1:]
        return replace(spec, payload=flipped)
    if kind == 3:  # oversized tail
        return replace(spec, payload=payload + bytes(1024))
    if kind == 4:  # retag: wrong, unknown, or stripped channel tag
        tag = rng.choice(channel_names + ["nochan", None])
        return replace(spec, channel=tag)
    if kind == 5:  # transport swap
        return replace(spec, transport=rng.choice(("tcp", "udp", "raw")))
    # garbage payload of arbitrary length
    return replace(spec, payload=rng.randbytes(rng.randrange(0, 24)))


def gen_stream(rng: random.Random, info, length: int = 12,
               mutation_rate: float = 0.45) -> list[PacketSpec]:
    """An adversarial stream against a typechecked program.

    ``info`` is the :class:`~repro.lang.typechecker.ProgramInfo`; the
    stream mixes valid packets for every declared overload (so engines
    actually execute), mutated descendants of those packets (so the
    codec and containment paths fire), and repetition runs (so the
    batch tier forms real multi-row batches).
    """
    decls: list[tuple] = []
    for name, overloads in info.channels.items():
        tag = None if name == "network" else name
        for decl in overloads:
            decls.append((decl, tag))
    channel_names = [n for n in info.channels if n != "network"]
    stream: list[PacketSpec] = []
    while len(stream) < length:
        decl, tag = rng.choice(decls)
        spec = _spec_for(rng, decl, tag)
        if rng.random() < mutation_rate:
            spec = _mutate(rng, spec, channel_names)
        # Repetition runs give the batch tier same-shape rows to fold.
        reps = rng.choice((1, 1, 1, 2, 3, 5))
        stream.extend([spec] * min(reps, length - len(stream)))
    return stream
