"""Deterministic divergence case files and the greedy minimizer.

A *case* is everything needed to reproduce one oracle verdict: the
program source, the packet stream as :class:`PacketSpec` dicts, the
batch size, and the campaign seed that found it.  Cases serialize to
JSON (payloads hex-encoded), so a found divergence is committed under
``tests/fuzz/corpus/`` and replayed forever by ``fuzzx replay`` and
the corpus regression test.

The minimizer is ddmin-flavoured greedy shrinking: drop packet chunks
(halving, then singles), then shrink the surviving payloads (truncate,
zero) and simplify tags — accepting any candidate on which the oracle
still fails.  Every oracle invocation counts as one minimizer step
against the step budget.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from ..lang import parse, typecheck
from .oracle import CompareResult, compare_all
from .streams import PacketSpec

CASE_KIND = "planp-fuzz-case"
CASE_VERSION = 1


def make_case(source: str, specs: list[PacketSpec], *, seed: int = 0,
              batch_size: int = 4, note: str = "") -> dict:
    return {
        "version": CASE_VERSION,
        "kind": CASE_KIND,
        "seed": seed,
        "batch_size": batch_size,
        "note": note,
        "program": source,
        "packets": [s.to_dict() for s in specs],
    }


def save_case(case: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: str | Path) -> dict:
    case = json.loads(Path(path).read_text())
    if case.get("kind") != CASE_KIND:
        raise ValueError(f"{path} is not a {CASE_KIND} file")
    return case


def case_specs(case: dict) -> list[PacketSpec]:
    return [PacketSpec.from_dict(d) for d in case["packets"]]


def run_case(case: dict, *, backends=None) -> CompareResult:
    """Re-run a case file through the oracle."""
    info = typecheck(parse(case["program"]))
    kwargs = {"batch_size": case.get("batch_size", 4)}
    if backends is not None:
        kwargs["backends"] = backends
    return compare_all(info, case_specs(case), **kwargs)


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.steps = 0

    def spend(self) -> bool:
        self.steps += 1
        return self.steps <= self.limit


def minimize_case(case: dict, *, max_steps: int = 400,
                  backends=None) -> tuple[dict, int]:
    """Greedily shrink a failing case, preserving failure.

    Returns ``(minimized case, oracle invocations spent)``.  The
    original case is returned unchanged if it no longer fails (a flaky
    finding would otherwise minimize to noise).
    """
    info = typecheck(parse(case["program"]))
    batch_size = case.get("batch_size", 4)
    budget = _Budget(max_steps)

    def fails(specs: list[PacketSpec]) -> bool:
        if not budget.spend():
            return False
        result = compare_all(info, specs, batch_size=batch_size,
                             **({"backends": backends}
                                if backends is not None else {}))
        return not result.ok

    specs = case_specs(case)
    if not fails(specs):
        return case, budget.steps

    # Phase 1: ddmin over packets — halving chunks, then singles.
    chunk = max(1, len(specs) // 2)
    while chunk >= 1:
        i = 0
        while i < len(specs) and len(specs) > 1:
            candidate = specs[:i] + specs[i + chunk:]
            if candidate and fails(candidate):
                specs = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2

    # Phase 2: shrink payloads (halve, then empty) and simplify fields.
    def try_spec(i: int, new: PacketSpec) -> bool:
        nonlocal specs
        if new == specs[i]:
            return False
        candidate = specs[:i] + [new] + specs[i + 1:]
        if fails(candidate):
            specs = candidate
            return True
        return False

    for i in range(len(specs)):
        while len(specs[i].payload) > 0:
            shorter = specs[i].payload[:len(specs[i].payload) // 2]
            if not try_spec(i, replace(specs[i], payload=shorter)):
                break
        if specs[i].payload:
            try_spec(i, replace(specs[i],
                                payload=bytes(len(specs[i].payload))))
        if specs[i].channel is not None:
            try_spec(i, replace(specs[i], channel=None))

    minimized = dict(case)
    minimized["packets"] = [s.to_dict() for s in specs]
    note = case.get("note", "")
    minimized["note"] = (note + " " if note else "") + (
        f"[minimized to {len(specs)} packets in {budget.steps} steps]")
    return minimized, budget.steps
