"""Differential execution oracle.

One (program, stream) pair runs through every engine backend in serial
and batch modes — six traces — against a standalone mirror of the
PlanPLayer's dispatch and containment semantics:

* classification uses the same (channel tag, transport class) match
  table with payload-length admission, first declared overload wins;
* decode errors are contained per packet (outcome ``decode:<err>``)
  exactly like the layer's reason="decode" path;
* contained runtime errors (``PlanPError``/``CodecError``) commit
  nothing and record the exception name, mirroring reason="runtime";
* the batch mode replays the layer's :class:`BatchFault` recovery:
  prefix commit, contained faulted row, sub-batch resume, and the
  per-packet fallback when batch decode fails before row zero;
* any *other* exception is an uncontained leak — the thing that would
  take a router down — and is recorded on the trace as ``crash``.

Two traces are equal iff their final protocol state, per-channel
states, per-packet outcome strings, emission streams, console output,
and crash status all agree.  The reference is the interpreter in
serial mode; every disagreement is a :class:`Divergence`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp import RecordingContext
from ..interp.values import PlanPList, PlanPTable, default_value
from ..jit import make_engine
from ..jit.batching import BatchFault, run_rows
from ..lang.errors import PlanPError, PlanPRuntimeError
from ..net.addresses import HostAddr
from ..runtime import codec
from .streams import PacketSpec

DEFAULT_BACKENDS = ("interpreter", "closure", "source")
MODES = ("serial", "batch")


def canon(value: object) -> object:
    """A hashable, comparable canonical form of a PLAN-P value.

    :class:`PlanPTable` compares by identity, so tables canonicalize to
    their (capacity, insertion-ordered items); an engine inserting in a
    different order than the interpreter is a real divergence.
    """
    if isinstance(value, PlanPTable):
        return ("table", value.capacity,
                tuple((canon(k), canon(v)) for k, v in value.items()))
    if isinstance(value, PlanPList):
        return ("list", tuple(canon(v) for v in value.items))
    if isinstance(value, tuple):
        return ("tuple",) + tuple(canon(v) for v in value)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, HostAddr):
        return ("host", value.value)
    return value  # int/str/bytes/headers/UNIT compare structurally


@dataclass(frozen=True)
class Trace:
    """Everything observable about one execution of a stream."""

    ps: object
    states: tuple
    outcomes: tuple
    emissions: tuple
    printed: tuple
    crash: str | None = None

    def diff(self, other: "Trace") -> str | None:
        """The first differing field, human-readably; None if equal."""
        for name in ("crash", "outcomes", "ps", "states", "emissions",
                     "printed"):
            a, b = getattr(self, name), getattr(other, name)
            if a != b:
                return (f"{name}: {_short(a)} != {_short(b)}")
        return None


def _short(value: object, limit: int = 160) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "…"


@dataclass(frozen=True)
class Divergence:
    """One engine/mode disagreeing with the reference trace — or an
    uncontained crash shared by every engine (``backend='*'``)."""

    backend: str
    mode: str
    detail: str


@dataclass
class CompareResult:
    reference: Trace
    divergences: list[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences


def _err_name(err: Exception) -> str:
    if isinstance(err, PlanPRuntimeError):
        return err.exception_name
    return type(err).__name__


class _Runner:
    """One trace execution: engine + mirrored layer semantics."""

    def __init__(self, info, backend: str, *, seed: int = 7,
                 batch_size: int = 4):
        self.info = info
        self.batch_size = batch_size
        self.ctx = RecordingContext(seed=seed)
        self.crash: str | None = None
        self.outcomes: list[str] = []
        self.channels = info.all_channels()
        # (tag, transport class) -> [(decl, plan)] in declaration order,
        # the PlanPLayer._build_dispatch_table shape.
        self.table: dict[tuple, list[tuple]] = {}
        for decl in self.channels:
            plan = codec.dispatch_plan(decl.packet_type)
            if plan is None:
                continue
            tag = None if decl.name == "network" else decl.name
            self.table.setdefault((tag, plan.transport_cls),
                                  []).append((decl, plan))
        self.ps = default_value(self.channels[0].protocol_state_type)
        self.states: dict[int, object] = {}
        self.engine = None
        try:
            self.engine = make_engine(info, backend, RecordingContext())
            for decl in self.channels:
                self.states[id(decl)] = (
                    self.engine.initial_channel_state(decl, self.ctx))
        except PlanPError as err:
            self.outcomes.append(f"install:{_err_name(err)}")
        except Exception as err:  # install-time leak
            self.crash = f"install:{type(err).__name__}"

    def _lookup(self, packet):
        key = (packet.channel, type(packet.transport))
        for decl, plan in self.table.get(key, ()):
            if plan.admits(len(packet.payload)):
                return decl, plan
        return None

    def _serial_step(self, packet, hit) -> None:
        decl, plan = hit
        try:
            value = plan.decode(packet)
        except codec.CodecError:
            self.outcomes.append("decode")
            return
        except Exception as err:
            # The layer would contain this too, but it violates the
            # codec error taxonomy — surface it loudly.
            self.outcomes.append(f"decode-leak:{type(err).__name__}")
            return
        try:
            ps, ss = self.engine.run_channel(
                decl, self.ps, self.states[id(decl)], value, self.ctx)
        except (PlanPError, codec.CodecError) as err:
            self.outcomes.append(f"err:{_err_name(err)}")
            return
        except Exception as err:
            self.crash = type(err).__name__
            self.outcomes.append(f"leak:{type(err).__name__}")
            return
        self.ps = ps
        self.states[id(decl)] = ss
        self.outcomes.append("ok")

    def run_serial(self, packets) -> None:
        for packet in packets:
            if self.crash:
                return
            hit = self._lookup(packet)
            if hit is None:
                self.outcomes.append("pass")
                continue
            self._serial_step(packet, hit)

    def _runs(self, packets):
        """Maximal same-entry runs, the classify_batches grouping: a
        run extends only over packets with the head's transport class,
        channel tag, and payload length, capped at batch_size."""
        n = len(packets)
        i = 0
        while i < n:
            p = packets[i]
            hit = self._lookup(p)
            if hit is None:
                yield None, [p]
                i += 1
                continue
            tcls = p.transport.__class__
            plen = len(p.payload)
            j = i + 1
            while (j < min(n, i + self.batch_size)
                   and packets[j].transport.__class__ is tcls
                   and packets[j].channel == p.channel
                   and len(packets[j].payload) == plen):
                j += 1
            yield hit, packets[i:j]
            i = j

    def run_batch(self, packets) -> None:
        for hit, run_pkts in self._runs(packets):
            if self.crash:
                return
            if hit is None:
                self.outcomes.append("pass")
                continue
            if len(run_pkts) == 1:
                self._serial_step(run_pkts[0], hit)
                continue
            self._run_batch(run_pkts, hit)

    def _run_batch(self, packets, hit) -> None:
        decl, plan = hit
        run = getattr(self.engine, "run_channel_batch", None)
        n = len(packets)
        start = 0
        while start < n:
            batch = plan.batch_decoder().batch(packets[start:])
            try:
                if run is not None:
                    ps, ss = run(decl, self.ps, self.states[id(decl)],
                                 batch, self.ctx)
                else:
                    ps, ss = run_rows(self.engine.run_channel, decl,
                                      self.ps, self.states[id(decl)],
                                      batch, self.ctx)
            except BatchFault as fault:
                self.outcomes.extend(["ok"] * fault.index)
                self.ps = fault.ps
                self.states[id(decl)] = fault.ss
                err = fault.err
                if not isinstance(err, (PlanPError, codec.CodecError)):
                    self.crash = type(err).__name__
                    self.outcomes.append(f"leak:{type(err).__name__}")
                    return
                self.outcomes.append(f"err:{_err_name(err)}")
                start += fault.index + 1
            except Exception:
                # Batch decode/setup failed before row zero: the layer
                # replays the rest per packet, locating the malformed
                # row(s) with serial-identical containment.
                for packet in packets[start:]:
                    if self.crash:
                        return
                    self._serial_step(packet, (decl, plan))
                return
            else:
                self.outcomes.extend(["ok"] * (n - start))
                self.ps = ps
                self.states[id(decl)] = ss
                return

    def trace(self) -> Trace:
        emissions = tuple(
            (e.kind, e.channel, canon(e.packet_value),
             e.neighbor.value if e.neighbor is not None else None)
            for e in self.ctx.emissions)
        return Trace(ps=canon(self.ps),
                     states=tuple(canon(self.states[id(d)])
                                  for d in self.channels
                                  if id(d) in self.states),
                     outcomes=tuple(self.outcomes),
                     emissions=emissions,
                     printed=tuple(self.ctx.printed),
                     crash=self.crash)


def run_trace(info, backend: str, mode: str, specs: list[PacketSpec],
              *, batch_size: int = 4, seed: int = 7) -> Trace:
    """Execute one stream on one backend in one mode."""
    runner = _Runner(info, backend, seed=seed, batch_size=batch_size)
    packets = [s.to_packet() for s in specs]
    if not runner.crash and not runner.outcomes:
        if mode == "batch":
            runner.run_batch(packets)
        else:
            runner.run_serial(packets)
    return runner.trace()


def compare_all(info, specs: list[PacketSpec], *,
                backends=DEFAULT_BACKENDS, batch_size: int = 4,
                seed: int = 7) -> CompareResult:
    """Run the full engine×mode matrix and collect divergences.

    An uncontained crash is reported even when every engine agrees on
    it (``backend='*'``): unanimity does not make a containment leak
    acceptable.
    """
    reference = run_trace(info, backends[0], "serial", specs,
                          batch_size=batch_size, seed=seed)
    divergences: list[Divergence] = []
    for backend in backends:
        for mode in MODES:
            if backend == backends[0] and mode == "serial":
                continue
            trace = run_trace(info, backend, mode, specs,
                              batch_size=batch_size, seed=seed)
            detail = reference.diff(trace)
            if detail is not None:
                divergences.append(Divergence(backend, mode, detail))
    if reference.crash and not divergences:
        divergences.append(Divergence(
            "*", "*", f"uncontained crash: {reference.crash}"))
    return CompareResult(reference=reference, divergences=divergences)
