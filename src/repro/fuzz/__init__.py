"""Grammar-based differential fuzzing for the PLAN-P stack.

The harness turns the repro's correctness story from "properties we
thought to write" into "an adversary that hunts for disagreement
continuously":

* :mod:`.grammar` — a seeded generator of well-typed PLAN-P programs
  covering the full typechecker-accepted AST surface, with a coverage
  self-check (:func:`check_grammar_coverage`) so new language
  constructs cannot silently go unfuzzed;
* :mod:`.streams` — an adversarial packet-stream generator: valid
  streams plus structure-aware mutations (truncations, stride-breaking
  lengths, oversized tails, bit-flips, extreme field values);
* :mod:`.oracle` — a differential execution oracle running every
  (program, stream) pair through all three engines in serial and batch
  modes plus the decode-containment fallback, asserting identical
  states, emissions, output, fault prefixes, and containment
  accounting;
* :mod:`.replay` — the deterministic case-file protocol and greedy
  minimizer: every divergence shrinks to a small committed regression
  case under ``tests/fuzz/corpus/``;
* :mod:`.runner` — bounded-time campaigns (the ``fuzzx`` CLI and the
  CI smoke step), emitting ``fuzz.*`` counters through
  :mod:`repro.obs`;
* :mod:`.pairs` — paired-program campaigns validating the
  wire-compatibility checker (:mod:`repro.analysis.wire`) against an
  actual packet exchange between two program generations: any false
  accept (checker says rollable, the wire diverges) is a finding.

Everything is driven by :class:`random.Random` seeded explicitly —
a campaign seed reproduces its exact programs, streams, and verdicts.
"""

from .grammar import (GrammarCoverageError, ast_inventory,
                      check_grammar_coverage, gen_program)
from .oracle import (DEFAULT_BACKENDS, CompareResult, Divergence, Trace,
                     compare_all, run_trace)
from .pairs import (WIRE_CASE_KIND, PairFinding, PairReport,
                    exchange_divergences, gen_pair, load_wire_case,
                    make_wire_case, minimize_wire_case, mutate_overloads,
                    run_pair_campaign, run_wire_case)
from .replay import (case_specs, load_case, make_case, minimize_case,
                     run_case, save_case)
from .runner import Finding, FuzzReport, derive_seed, run_campaign
from .streams import PacketSpec, gen_stream

__all__ = [
    "GrammarCoverageError", "ast_inventory", "check_grammar_coverage",
    "gen_program", "DEFAULT_BACKENDS", "CompareResult", "Divergence",
    "Trace", "compare_all", "run_trace", "case_specs", "load_case",
    "make_case", "minimize_case", "run_case", "save_case", "Finding",
    "FuzzReport", "derive_seed", "run_campaign", "PacketSpec",
    "gen_stream", "WIRE_CASE_KIND", "PairFinding", "PairReport",
    "exchange_divergences", "gen_pair", "load_wire_case",
    "make_wire_case", "minimize_wire_case", "mutate_overloads",
    "run_pair_campaign", "run_wire_case",
]
