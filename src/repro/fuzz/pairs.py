"""Paired-program differential validation of the wire-compat checker.

The rollout gate trusts :func:`repro.analysis.wire.check_compatible`
to predict, statically, whether two program generations can share a
wire.  This module keeps that trust honest: it generates *pairs* of
programs — a base generation plus a channel-signature mutation (field
retype, overload add/remove, tail toggle, or an unrelated rewrite) —
and differentially validates the checker's verdict against an actual
packet exchange.

The exchange oracle (:class:`_WireView`) mirrors exactly what a mixed
fleet observes at the dispatch boundary: the PlanPLayer's
``(channel tag, transport class)`` match table, first-declared
admitting overload wins, the real codec decode.  Two generations
*diverge* when some probe packet is read differently — decoded to
different values, decoded by one and passed to standard IP by the
other, or contained as a decode error on one side only.  Probes follow
the fleet's traffic model: untagged ``network`` packets always exist;
tagged packets exist only for channels some generation emits to.

The verdict lattice maps onto the exchange like this:

* ``INCOMPATIBLE`` with no witnessed divergence — a *conservative
  reject*; counted, acceptable (the probe set is finite).
* ``COMPATIBLE``/``DEGRADED`` with a witnessed divergence — a **false
  accept**: the gate would have let a protocol break roll out.  Every
  one is a finding; minimized cases go under
  ``tests/fuzz/corpus/wire/``.

``checker=`` is injectable so the test suite can prove the harness
actually catches a weakened checker instead of vacuously passing.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..analysis.wire import check_compatible, wire_summary
from ..lang import parse, typecheck
from ..obs import GLOBAL
from ..runtime import codec
from .grammar import PACKET_TYPES, gen_program
from .oracle import canon
from .replay import save_case
from .runner import derive_seed
from .streams import PacketSpec, _spec_for

WIRE_CASE_KIND = "planp-wire-case"
WIRE_CASE_VERSION = 1

#: signature-mutation view substitutions
_SAME_WIDTH = {"int": "host", "host": "int", "char": "bool",
               "bool": "char"}
_CROSS_WIDTH = {"int": "char", "host": "bool", "char": "int",
                "bool": "host"}
_TAIL_SWAP = {"blob": "string", "string": "blob"}


# ---------------------------------------------------------------------------
# Pair generation: base program + channel-signature mutation
# ---------------------------------------------------------------------------


def _split_packet_type(pt: str) -> tuple[list[str], list[str]]:
    """``(header components, payload view names)`` of a packet type."""
    comps = pt.split("*")
    i = 1
    if i < len(comps) and comps[i] in ("tcp", "udp"):
        i += 1
    return comps[:i], comps[i:]


def _mutate_packet_type(rng: random.Random, pt: str) -> str | None:
    """One signature mutation of one packet type; ``None`` when the
    drawn mutation kind does not apply to this layout."""
    head, views = _split_packet_type(pt)
    kind = rng.choice(("retype-same-width", "retype-cross-width",
                       "retype-tail", "tail-toggle"))
    if kind in ("retype-same-width", "retype-cross-width"):
        table = (_SAME_WIDTH if kind == "retype-same-width"
                 else _CROSS_WIDTH)
        idxs = [i for i, v in enumerate(views) if v in table]
        if not idxs:
            return None
        i = rng.choice(idxs)
        views[i] = table[views[i]]
    elif kind == "retype-tail":
        if not views or views[-1] not in _TAIL_SWAP:
            return None
        views[-1] = _TAIL_SWAP[views[-1]]
    else:  # tail-toggle: drop a trailing tail, or grow one
        if views and views[-1] in ("blob", "string"):
            views = views[:-1]
        else:
            views = views + [rng.choice(("blob", "string"))]
        if not views and len(head) == 1:
            return None  # bare "ip" is not a packet tuple
    return "*".join(head + views)


def mutate_overloads(rng: random.Random,
                     overloads: list[str]) -> tuple[list[str], str]:
    """Mutate a network-channel overload list the way real upgrades
    do: retype a field, toggle a tail, add or drop an overload — or
    change nothing (``identity``), which pins the checker's
    compatible-verdict path.  Returns ``(mutated list, description)``;
    the mutated list stays duplicate-free so it remains a valid
    overload set."""
    overloads = list(overloads)
    for _ in range(16):
        kind = rng.choice(("signature", "signature", "signature",
                           "overload-add", "overload-drop", "identity"))
        if kind == "identity":
            return list(overloads), "identity"
        if kind == "overload-add":
            fresh = [pt for pt in PACKET_TYPES if pt not in overloads]
            if not fresh:
                continue
            pt = rng.choice(fresh)
            return overloads + [pt], f"overload-add {pt}"
        if kind == "overload-drop":
            if len(overloads) < 2:
                continue
            i = rng.randrange(len(overloads))
            return (overloads[:i] + overloads[i + 1:],
                    f"overload-drop {overloads[i]}")
        i = rng.randrange(len(overloads))
        new_pt = _mutate_packet_type(rng, overloads[i])
        if new_pt is None or new_pt in overloads:
            continue
        mutated = list(overloads)
        mutated[i] = new_pt
        return mutated, f"retype {overloads[i]} -> {new_pt}"
    return list(overloads), "identity"


def gen_pair(rng: random.Random) -> tuple[str, str, str]:
    """``(source_a, source_b, mutation description)`` — two program
    generations related by one signature mutation.  Generation B
    usually keeps A's body seed (a realistic upgrade: same logic under
    a changed signature), sometimes redraws it (a rewrite — exercises
    emission-topology deltas like an aux channel appearing)."""
    overloads_a = rng.sample(PACKET_TYPES, rng.randint(1, 3))
    overloads_b, mutation = mutate_overloads(rng, overloads_a)
    body_seed = rng.randrange(1 << 31)
    seed_b = body_seed if rng.random() < 0.7 else rng.randrange(1 << 31)
    source_a = gen_program(random.Random(body_seed),
                           overloads=overloads_a)
    source_b = gen_program(random.Random(seed_b), overloads=overloads_b)
    return source_a, source_b, mutation


# ---------------------------------------------------------------------------
# The exchange oracle: what each generation reads off the shared wire
# ---------------------------------------------------------------------------


class _WireView:
    """One generation's read of the wire — the PlanPLayer's dispatch
    semantics ((tag, transport class) table, first declared admitting
    overload wins) plus the real codec decode, nothing else."""

    def __init__(self, info):
        self.table: dict[tuple, list] = {}
        for decl in info.all_channels():
            plan = codec.dispatch_plan(decl.packet_type)
            if plan is None:
                continue
            tag = None if decl.name == "network" else decl.name
            self.table.setdefault((tag, plan.transport_cls),
                                  []).append(plan)

    def read(self, spec: PacketSpec) -> tuple:
        packet = spec.to_packet()
        key = (packet.channel, type(packet.transport))
        for plan in self.table.get(key, ()):
            if plan.admits(len(packet.payload)):
                try:
                    return ("decoded", canon(plan.decode(packet)))
                except codec.CodecError:
                    # Contained identically on any node; the message
                    # text is not wire-observable.
                    return ("decode-error",)
        return ("pass",)  # standard IP passthrough


def pair_specs(rng: random.Random, info_a, info_b,
               live_tags: set[str],
               n_per_overload: int = 3) -> list[PacketSpec]:
    """Probe packets for every live channel overload of both
    generations, plus admission-boundary variants (one byte longer /
    shorter) so tail toggles and fixed-size shifts get witnessed at
    the exact lengths where dispatch flips."""
    specs: list[PacketSpec] = []
    for info in (info_a, info_b):
        for name, decls in info.channels.items():
            tag = None if name == "network" else name
            if tag is not None and tag not in live_tags:
                continue  # dead tagged channel: no emitter, no packets
            for decl in decls:
                if codec.dispatch_plan(decl.packet_type) is None:
                    continue
                for _ in range(n_per_overload):
                    spec = _spec_for(rng, decl, tag)
                    specs.append(spec)
                    specs.append(replace(
                        spec, payload=spec.payload + b"\x00"))
                    if spec.payload:
                        specs.append(replace(
                            spec, payload=spec.payload[:-1]))
    return specs


def _short(value: object, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "…"


def exchange_divergences(info_a, info_b,
                         specs: list[PacketSpec]) -> list[str]:
    """Read every probe through both generations; one human-readable
    line per packet the generations disagree on."""
    view_a, view_b = _WireView(info_a), _WireView(info_b)
    out: list[str] = []
    for i, spec in enumerate(specs):
        read_a, read_b = view_a.read(spec), view_b.read(spec)
        if read_a != read_b:
            out.append(
                f"packet[{i}] ({spec.transport}, tag={spec.channel!r}, "
                f"{len(spec.payload)}B): {_short(read_a)} != "
                f"{_short(read_b)}")
    return out


# ---------------------------------------------------------------------------
# Wire case files (the corpus/replay protocol for pair findings)
# ---------------------------------------------------------------------------


def make_wire_case(source_a: str, source_b: str,
                   specs: list[PacketSpec], *, seed: int = 0,
                   mutation: str = "", note: str = "") -> dict:
    return {
        "version": WIRE_CASE_VERSION,
        "kind": WIRE_CASE_KIND,
        "seed": seed,
        "mutation": mutation,
        "note": note,
        "program_a": source_a,
        "program_b": source_b,
        "packets": [s.to_dict() for s in specs],
    }


def load_wire_case(path: str | Path) -> dict:
    case = json.loads(Path(path).read_text())
    if case.get("kind") != WIRE_CASE_KIND:
        raise ValueError(f"{path} is not a {WIRE_CASE_KIND} file")
    return case


def run_wire_case(case: dict, *,
                  checker=check_compatible) -> tuple[object, list[str]]:
    """Re-evaluate a wire case: ``(CompatReport, divergences)``.

    A healthy committed case still witnesses a divergence AND the
    checker flags the pair — i.e. the false accept it once was stays
    fixed.
    """
    info_a = typecheck(parse(case["program_a"]))
    info_b = typecheck(parse(case["program_b"]))
    report = checker(wire_summary(info_a), wire_summary(info_b))
    specs = [PacketSpec.from_dict(d) for d in case["packets"]]
    return report, exchange_divergences(info_a, info_b, specs)


def minimize_wire_case(case: dict,
                       max_steps: int = 200) -> tuple[dict, int]:
    """ddmin the packet list while a divergence persists (the checker
    verdict depends only on the programs, so only the exchange needs
    re-running).  Returns ``(minimized case, oracle invocations)``."""
    info_a = typecheck(parse(case["program_a"]))
    info_b = typecheck(parse(case["program_b"]))
    steps = 0

    def fails(specs: list[PacketSpec]) -> bool:
        nonlocal steps
        if steps >= max_steps:
            return False
        steps += 1
        return bool(exchange_divergences(info_a, info_b, specs))

    specs = [PacketSpec.from_dict(d) for d in case["packets"]]
    if not fails(specs):
        return case, steps

    chunk = max(1, len(specs) // 2)
    while chunk >= 1:
        i = 0
        while i < len(specs) and len(specs) > 1:
            candidate = specs[:i] + specs[i + chunk:]
            if candidate and fails(candidate):
                specs = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2

    for i in range(len(specs)):
        while len(specs[i].payload) > 0:
            shorter = specs[i].payload[:len(specs[i].payload) // 2]
            candidate = specs[:i] + [replace(specs[i], payload=shorter)] \
                + specs[i + 1:]
            if fails(candidate):
                specs = candidate
            else:
                break

    minimized = dict(case)
    minimized["packets"] = [s.to_dict() for s in specs]
    note = case.get("note", "")
    minimized["note"] = (note + " " if note else "") + (
        f"[minimized to {len(specs)} packets in {steps} steps]")
    return minimized, steps


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------


@dataclass
class PairFinding:
    """One false accept: checker said rollable, the wire disagreed."""

    pair_seed: int
    mutation: str
    verdict: str
    detail: str
    case_path: str | None = None
    minimized_packets: int = 0


@dataclass
class PairReport:
    seed: int
    elapsed_s: float = 0.0
    pairs: int = 0
    compatible: int = 0
    degraded: int = 0
    incompatible: int = 0
    divergent: int = 0
    false_accepts: int = 0
    conservative_rejects: int = 0
    minimizer_steps: int = 0
    findings: list[PairFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.false_accepts == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "elapsed_s": round(self.elapsed_s, 3),
            "pairs": self.pairs,
            "compatible": self.compatible,
            "degraded": self.degraded,
            "incompatible": self.incompatible,
            "divergent": self.divergent,
            "false_accepts": self.false_accepts,
            "conservative_rejects": self.conservative_rejects,
            "minimizer_steps": self.minimizer_steps,
            "ok": self.ok,
            "findings": [
                {"pair_seed": f.pair_seed,
                 "mutation": f.mutation,
                 "verdict": f.verdict,
                 "detail": f.detail,
                 "case": f.case_path,
                 "minimized_packets": f.minimized_packets}
                for f in self.findings],
        }


def run_pair_campaign(seed: int, *, budget_s: float = 60.0,
                      min_pairs: int = 150,
                      max_pairs: int | None = None,
                      n_per_overload: int = 3,
                      out_dir: str | Path | None = None,
                      minimize: bool = True, obs=None,
                      checker=check_compatible) -> PairReport:
    """Hunt for wire-compat false accepts until the time budget is
    spent AND ``min_pairs`` pairs ran (the floor wins over the clock,
    like :func:`repro.fuzz.runner.run_campaign`), or ``max_pairs``.

    ``out_dir`` receives one minimized wire-case file per finding;
    ``checker`` is the verdict function under test.
    """
    obs = obs if obs is not None else GLOBAL
    metrics = obs.metrics
    c_pairs = metrics.counter("fuzz.wire_pairs")
    c_divergent = metrics.counter("fuzz.wire_divergent")
    c_false = metrics.counter("fuzz.false_accepts")
    c_minsteps = metrics.counter("fuzz.minimizer_steps")

    report = PairReport(seed=seed)
    started = time.monotonic()
    out = Path(out_dir) if out_dir is not None else None
    index = 0
    while True:
        elapsed = time.monotonic() - started
        if report.pairs >= min_pairs and elapsed >= budget_s:
            break
        if max_pairs is not None and report.pairs >= max_pairs:
            break
        if report.pairs >= min_pairs and report.findings:
            break  # findings are actionable; stop burning budget
        pair_seed = derive_seed(seed, "wire-pair", index)
        rng = random.Random(pair_seed)
        source_a, source_b, mutation = gen_pair(rng)
        info_a = typecheck(parse(source_a))
        info_b = typecheck(parse(source_b))
        summary_a = wire_summary(info_a)
        summary_b = wire_summary(info_b)
        verdict_report = checker(summary_a, summary_b)
        live_tags = summary_a.emitted_to() | summary_b.emitted_to()
        specs = pair_specs(rng, info_a, info_b, live_tags,
                           n_per_overload=n_per_overload)
        divergences = exchange_divergences(info_a, info_b, specs)
        report.pairs += 1
        c_pairs.inc()
        verdict = str(verdict_report.verdict)
        if verdict == "compatible":
            report.compatible += 1
        elif verdict == "degraded":
            report.degraded += 1
        else:
            report.incompatible += 1
        if divergences:
            report.divergent += 1
            c_divergent.inc()
        if divergences and verdict_report.ok:
            report.false_accepts += 1
            c_false.inc()
            detail = (f"mutation [{mutation}] judged {verdict} but "
                      f"{len(divergences)} probe(s) diverge; first: "
                      f"{divergences[0]}")
            case = make_wire_case(source_a, source_b, specs,
                                  seed=seed, mutation=mutation,
                                  note=detail)
            if minimize:
                case, steps = minimize_wire_case(case)
                report.minimizer_steps += steps
                c_minsteps.inc(steps)
            finding = PairFinding(pair_seed=pair_seed,
                                  mutation=mutation, verdict=verdict,
                                  detail=detail,
                                  minimized_packets=len(case["packets"]))
            if out is not None:
                path = out / f"wire-{pair_seed:016x}.json"
                save_case(case, path)
                finding.case_path = str(path)
            report.findings.append(finding)
            obs.events.emit("error", where="fuzz",
                            reason="false-accept", detail=detail[:200])
        elif not divergences and not verdict_report.ok:
            report.conservative_rejects += 1
        index += 1
    report.elapsed_s = time.monotonic() - started
    return report
