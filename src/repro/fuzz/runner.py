"""Bounded-time differential fuzzing campaigns.

A campaign derives per-iteration seeds from one campaign seed via
sha256 (stable across platforms, unlike ``hash()``), generates a
program, fires several adversarial streams at it, and runs every
(program, stream) pair through the full engine×mode oracle matrix.
Divergences are minimized and written as replayable case files.

Progress is visible through ``repro.obs`` counters —
``fuzz.programs`` / ``fuzz.streams`` / ``fuzz.pairs`` /
``fuzz.divergences`` / ``fuzz.minimizer_steps`` — so ``obsdump``
summarizes fuzz runs like any other workload.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..lang import parse, typecheck
from ..obs import GLOBAL
from .grammar import check_grammar_coverage, gen_program
from .oracle import DEFAULT_BACKENDS, compare_all
from .replay import make_case, minimize_case, save_case
from .streams import gen_stream


def derive_seed(campaign_seed: int, *parts: object) -> int:
    """A stable 63-bit sub-seed for one campaign step."""
    text = ":".join(str(p) for p in (campaign_seed, *parts))
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class Finding:
    """One divergence (or containment leak) found by a campaign."""

    program_seed: int
    stream_seed: int
    detail: str
    case_path: str | None = None
    minimized_packets: int = 0


@dataclass
class FuzzReport:
    seed: int
    elapsed_s: float = 0.0
    programs: int = 0
    streams: int = 0
    pairs: int = 0
    divergences: int = 0
    minimizer_steps: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergences == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "elapsed_s": round(self.elapsed_s, 3),
            "programs": self.programs,
            "streams": self.streams,
            "pairs": self.pairs,
            "divergences": self.divergences,
            "minimizer_steps": self.minimizer_steps,
            "ok": self.ok,
            "findings": [
                {"program_seed": f.program_seed,
                 "stream_seed": f.stream_seed,
                 "detail": f.detail,
                 "case": f.case_path,
                 "minimized_packets": f.minimized_packets}
                for f in self.findings],
        }


def run_campaign(seed: int, *, budget_s: float = 60.0,
                 min_pairs: int = 200, max_pairs: int | None = None,
                 streams_per_program: int = 4, stream_len: int = 12,
                 batch_size: int = 4, backends=DEFAULT_BACKENDS,
                 out_dir: str | Path | None = None,
                 minimize: bool = True,
                 obs=None) -> FuzzReport:
    """Fuzz until the time budget is spent AND ``min_pairs`` pairs ran
    (the floor wins over the clock, so short CI budgets still execute
    a meaningful matrix), or until ``max_pairs`` pairs.

    ``out_dir`` receives one minimized JSON case per finding.
    """
    obs = obs if obs is not None else GLOBAL
    metrics = obs.metrics
    c_programs = metrics.counter("fuzz.programs")
    c_streams = metrics.counter("fuzz.streams")
    c_pairs = metrics.counter("fuzz.pairs")
    c_divergences = metrics.counter("fuzz.divergences")
    c_minsteps = metrics.counter("fuzz.minimizer_steps")

    # Rot guard first: a campaign over a stale grammar is false comfort.
    check_grammar_coverage(
        seeds=[derive_seed(seed, "coverage", i) for i in range(60)])

    report = FuzzReport(seed=seed)
    started = time.monotonic()
    out = Path(out_dir) if out_dir is not None else None
    program_index = 0
    while True:
        elapsed = time.monotonic() - started
        if report.pairs >= min_pairs and elapsed >= budget_s:
            break
        if max_pairs is not None and report.pairs >= max_pairs:
            break
        if report.pairs >= min_pairs and report.findings:
            break  # findings are actionable; stop burning budget
        program_seed = derive_seed(seed, "program", program_index)
        source = gen_program(random.Random(program_seed))
        info = typecheck(parse(source))
        report.programs += 1
        c_programs.inc()
        for stream_index in range(streams_per_program):
            stream_seed = derive_seed(seed, "stream", program_index,
                                      stream_index)
            specs = gen_stream(random.Random(stream_seed),
                               info, length=stream_len)
            report.streams += 1
            c_streams.inc()
            result = compare_all(info, specs, backends=backends,
                                 batch_size=batch_size)
            report.pairs += 1
            c_pairs.inc()
            if result.ok:
                continue
            report.divergences += len(result.divergences)
            c_divergences.inc(len(result.divergences))
            detail = "; ".join(
                f"{d.backend}/{d.mode}: {d.detail}"
                for d in result.divergences)
            finding = Finding(program_seed=program_seed,
                              stream_seed=stream_seed, detail=detail)
            case = make_case(source, specs, seed=seed,
                             batch_size=batch_size, note=detail)
            if minimize:
                case, steps = minimize_case(case, backends=backends)
                report.minimizer_steps += steps
                c_minsteps.inc(steps)
            finding.minimized_packets = len(case["packets"])
            if out is not None:
                path = out / (f"div-{program_seed:016x}-"
                              f"{stream_seed:016x}.json")
                save_case(case, path)
                finding.case_path = str(path)
            report.findings.append(finding)
            obs.events.emit("error", where="fuzz",
                            reason="divergence", detail=detail[:200])
        program_index += 1
    report.elapsed_s = time.monotonic() - started
    return report
