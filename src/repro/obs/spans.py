"""Span-style profiling hooks.

A :class:`Timer` is a context manager that measures wall-clock elapsed
time (``time.perf_counter``) and reports it — into a histogram, a
callback, or just its own ``elapsed_ms`` attribute.  It replaces the
``start = perf_counter(); ...; elapsed = perf_counter() - start`` pairs
that were scattered through the JIT pipeline, the verifier and the
benchmarks: every timing now lands in a named histogram a snapshot can
read back.

Spans measure *real* time (how long the Python process worked), unlike
the event log, which is stamped with *simulated* time; the two clocks
answer different questions and are deliberately kept apart.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from .metrics import Histogram


class Timer:
    """Times a ``with`` block; observes elapsed milliseconds on exit.

    ``observer`` is anything with an ``observe(ms)`` method (a
    :class:`~repro.obs.metrics.Histogram`) or ``None`` for a bare
    stopwatch.  The elapsed time stays readable after the block via
    :attr:`elapsed_s` / :attr:`elapsed_ms`, so call sites that need the
    measurement (``LoadedProgram.codegen_ms``, benchmark loops) read it
    instead of re-timing.
    """

    __slots__ = ("observer", "on_exit", "_start", "elapsed_s")

    def __init__(self, observer: "Histogram | None" = None,
                 on_exit: Callable[[float], None] | None = None):
        self.observer = observer
        self.on_exit = on_exit
        self._start = 0.0
        self.elapsed_s = 0.0

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        if self.observer is not None:
            self.observer.observe(self.elapsed_ms)
        if self.on_exit is not None:
            self.on_exit(self.elapsed_s)


def span(name: str, registry=None) -> Timer:
    """A timing span recording into ``registry.histogram(name)``.

    Defaults to the process-wide registry (:data:`repro.obs.GLOBAL`),
    which is where install-time pipeline stages belong — they are
    wall-clock work, not simulated time.
    """
    if registry is None:
        from . import GLOBAL

        registry = GLOBAL.metrics
    return registry.histogram(name).time()
