"""The metrics substrate: named counters, gauges and histograms.

One :class:`MetricsRegistry` holds every instrument of one scope — a
:class:`~repro.net.topology.Network` owns one for everything measured
against the simulator clock, and :data:`repro.obs.GLOBAL` holds the
process-wide instruments (JIT pipeline timings, the program cache).

Two registration styles coexist:

* **Instruments** (``counter`` / ``gauge`` / ``histogram``) are created
  once and updated on the hot path.  ``Counter.inc`` is a single integer
  add, so counting on a per-packet path is safe.
* **Callbacks** (``register``) adapt the repo's existing stat holders —
  the ``LinkStats`` / ``NodeStats`` / ``PlanPStats`` / ``CacheStats``
  dataclasses — without touching their per-packet code at all: the
  callable is evaluated only when a snapshot is taken, so components
  keep their plain ``int`` fields and pay nothing per event.

``snapshot()`` flattens everything into one ``{dotted.name: value}``
dict (histograms expand to ``name.count`` / ``name.sum`` / ``name.min``
/ ``name.max`` / ``name.mean``), ready for JSON dumps and diffing
across runs.
"""

from __future__ import annotations

from typing import Callable

from .spans import Timer


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: set directly, or backed by a callable
    that is read at snapshot time."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        self._value = value
        self._fn = None

    def set_fn(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A summary of observed values (count / sum / min / max / mean).

    Duration histograms record milliseconds by convention and carry an
    ``_ms`` suffix in their name; :meth:`time` returns a
    :class:`~repro.obs.spans.Timer` that observes its elapsed
    milliseconds on exit — the span-style profiling hook.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def time(self) -> Timer:
        """A context manager timing a span into this histogram (ms)."""
        return Timer(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


def _flatten(prefix: str, value: object, out: dict[str, object]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    else:
        out[prefix] = value


class MetricsRegistry:
    """All instruments and stat-holder callbacks of one scope."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._callbacks: dict[str, Callable[[], object]] = {}

    # -- instruments (get-or-create, so call sites need no setup) -----------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def span(self, name: str) -> Timer:
        """Shorthand: a timing span into ``histogram(name)``."""
        return self.histogram(name).time()

    # -- stat-holder adaptation ---------------------------------------------------

    def register(self, name: str, fn: Callable[[], object]) -> None:
        """Expose an existing stat holder under ``name``.

        ``fn`` runs only at snapshot time and may return a scalar or a
        (nested) dict, which is flattened under the ``name.`` prefix —
        so a component's counters stay plain fields with zero hot-path
        cost.  Re-registering a name replaces the previous callback.
        """
        self._callbacks[name] = fn

    def unregister(self, name: str) -> None:
        self._callbacks.pop(name, None)

    def has(self, name: str) -> bool:
        """Whether a stat-holder callback is registered under ``name``."""
        return name in self._callbacks

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Everything, flattened to ``{dotted.name: scalar}``."""
        out: dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            _flatten(name, histogram.summary(), out)
        for name, fn in self._callbacks.items():
            _flatten(name, fn(), out)
        return out

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._callbacks.clear()

    def reset_values(self) -> None:
        """Zero every instrument, keeping registered callbacks (which
        adapt live stat holders and stay valid across resets)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
