"""Unified observability: metrics registry, event log, profiling spans.

The paper's run-time system adapts on *locally measured* state (§3.1
link load, §5 JIT timings); this package is the reproduction's single
instrumentation substrate for those measurements.  Three pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges
  and histograms, plus zero-overhead adaptation of the existing stat
  dataclasses (``LinkStats``, ``NodeStats``, ``PlanPStats``, …) via
  snapshot-time callbacks;
* :class:`~repro.obs.events.EventLog` — a bounded JSON-lines stream of
  structured SEND / DROP / FAULT / DEPLOY / JIT / ERROR events;
* :class:`~repro.obs.spans.Timer` — span-style profiling of real work
  (JIT pipeline stages, verifier passes, ASP packet processing).

Scopes: every :class:`~repro.net.topology.Network` owns an
:class:`Observability` whose event log is stamped with **simulated**
time, and the process-wide :data:`GLOBAL` scope (wall-clock) holds
whatever is not tied to one network — the JIT pipeline, the program
cache, the engine microbenchmarks.  ``Network.metrics_snapshot()``
merges both into one flat dict.

Cost discipline: per-packet hot paths never pay for observability they
did not opt into.  Existing counters stay plain ``int`` fields read at
snapshot time; packet-level ``rx``/``up``/``send`` event mirroring is
opt-in via :class:`~repro.net.trace.PacketTracer`; only exceptional
paths (drops, faults, errors, deploy verdicts) always log.
"""

from __future__ import annotations

from typing import Callable

from .events import EventLog, EventRecord
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Timer, span


class Observability:
    """One scope's metrics registry + event log, sharing a clock."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 max_events: int = 100_000):
        self.metrics = MetricsRegistry()
        self.events = EventLog(clock=clock, max_events=max_events)

    def span(self, name: str) -> Timer:
        return self.metrics.span(name)

    def snapshot(self) -> dict[str, object]:
        snap = self.metrics.snapshot()
        snap["events.logged"] = len(self.events)
        snap["events.dropped"] = self.events.dropped
        return snap


#: The process-wide scope: JIT pipeline stages, verifier passes, the
#: program cache, microbenchmarks.  Wall-clock timestamps.
GLOBAL = Observability()


def reset_global() -> None:
    """Fresh process-wide instruments (test isolation).  Registered
    stat-holder callbacks survive — they adapt module-level objects
    (the program cache) that outlive any reset."""
    GLOBAL.metrics.reset_values()
    GLOBAL.events.clear()


__all__ = [
    "Counter",
    "EventLog",
    "EventRecord",
    "GLOBAL",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Timer",
    "reset_global",
    "span",
]
