"""The structured event log: one JSON-lines stream per scope.

Where :mod:`repro.obs.metrics` answers "how many / how long", the event
log answers "what happened, in order": packet sends/drops, injected
faults, deployment verdicts, JIT pipeline loads and swallowed handler
errors all land here as one timestamped record each.  A network's log is
stamped with *simulated* time (the log is simulator-clock-aware); the
process-global log falls back to wall-clock seconds.

Event kinds in use across the repo (free-form strings; these are the
conventions):

==============  =====================================================
``send``        a packet started transmission on a medium
``drop``        a packet was discarded (``reason`` says where and why)
``rx``          a packet arrived at a node (mirrored by PacketTracer)
``up``          a packet was delivered locally (mirrored by PacketTracer)
``fault``       an injected failure or recovery (FaultController)
``deploy``      a deployment protocol milestone (push/install/reject)
``jit``         a program-load pipeline completion
``error``       an application handler error that was caught and counted
``rollout``     a staged-rollout milestone: stage / canary / promote /
                force-promote / abort (LifecycleManager)
``quarantine``  a circuit-breaker transition on one node: trip /
                half-open / close (LifecycleManager)
``rollback``    a generation rollback: start / per-node / done
                (LifecycleManager)
==============  =====================================================

The buffer is bounded: past ``max_events`` new records are counted in
:attr:`EventLog.dropped` instead of stored, so a packet storm cannot
eat the heap.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, IO


@dataclass(frozen=True)
class EventRecord:
    """One structured event: a timestamp, a kind, and open fields."""

    t: float
    kind: str
    node: str = ""
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict = {"t": round(self.t, 9), "kind": self.kind}
        if self.node:
            out["node"] = self.node
        out.update(self.data)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str, sort_keys=False)


class EventLog:
    """A bounded, clock-aware list of :class:`EventRecord`."""

    def __init__(self, clock: Callable[[], float] | None = None,
                 max_events: int = 100_000):
        if clock is None:
            import time

            clock = time.perf_counter
        self.clock = clock
        self.max_events = max_events
        self.events: list[EventRecord] = []
        #: records discarded because the buffer was full
        self.dropped = 0
        self.enabled = True

    def emit(self, kind: str, node: str = "", **data) -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(EventRecord(t=self.clock(), kind=kind,
                                       node=node, data=data))

    # -- queries ------------------------------------------------------------------

    def filter(self, kind: str | None = None, node: str | None = None,
               predicate: Callable[[EventRecord], bool] | None = None
               ) -> list[EventRecord]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if node is not None:
            out = [e for e in out if e.node == node]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return out

    def counts(self) -> dict[str, int]:
        """Events per kind (the log's own summary metric)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # -- serialisation ------------------------------------------------------------

    def to_jsonl(self, kind: str | None = None,
                 limit: int | None = None) -> str:
        events = self.filter(kind=kind)
        if limit is not None:
            events = events[-limit:]
        return "\n".join(e.to_json() for e in events)

    def dump(self, fp: IO[str], kind: str | None = None) -> int:
        """Write the log as JSON lines; returns the record count."""
        events = self.filter(kind=kind)
        for event in events:
            fp.write(event.to_json())
            fp.write("\n")
        return len(events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
