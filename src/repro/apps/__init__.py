"""The paper's three demonstration applications (audio, HTTP, MPEG)."""
