"""The clustered-HTTP-server experiment (paper §3.2, figure 8).

Topology: client hosts on 10 Mbit access links, a gateway router, and
physical servers on a 100 Mbit server network — the paper's Ultra-1
cluster modulo the simulator substitution.

Four configurations reproduce the figure's curves and the surrounding
claims:

* ``single``   — clients hit one physical server directly (curve a);
* ``asp``      — the PLAN-P gateway balances over two servers (curve b);
* ``builtin``  — the native "C" gateway does the same (curve c);
* ``disjoint`` — clients split between two servers with no gateway
  (the "two servers with disjoint sets of clients" reference point).
"""

from __future__ import annotations

from typing import Callable

from ...asps.http import http_gateway_asp
from ...experiments.compat import keyword_only
from ...experiments.result import LegacyResult
from ...net.topology import Network
from ...obs import Observability
from ...runtime.deployment import Deployment
from .client import HttpClientWorker
from .gateway_c import BuiltinGateway
from .server import HTTP_PORT, HttpServer
from .trace import Trace, generate_trace

MODES = ("single", "asp", "builtin", "disjoint")


class HttpExperimentResult(LegacyResult):
    """Unified result of one figure 8 configuration.

    ``params``: ``mode``, ``n_clients``, ``duration``, ``warmup``;
    ``figures``: ``throughput_rps``, ``mean_latency_s``,
    ``per_server_served``, ``completed``, ``failures`` and the
    wall-clock ``codegen_ms`` (volatile: excluded from the canonical
    record).  Flat legacy attribute access keeps working for one
    release.
    """

    _EXPERIMENT = "http"
    _PARAM_FIELDS = ("mode", "n_clients", "duration", "warmup")
    _VOLATILE_FIGURES = ("codegen_ms",)

    @property
    def balance_ratio(self) -> float:
        """min/max served across servers (1.0 = perfectly balanced)."""
        counts = [c for c in self.per_server_served.values() if c]
        if len(counts) < 2:
            return 1.0
        return min(counts) / max(counts)


#: Simulated per-packet CPU cost of the gateway, ASP and builtin alike
#: (the paper found "little or no difference" between them; the JIT
#: microbenchmark measures that equivalence directly).  This is what
#: makes the gateway a contention point, capping the cluster below the
#: capacity of two independent servers.
GATEWAY_CPU_S = 160e-6


@keyword_only("mode", "n_clients")
def run_http_experiment(*, mode: str, n_clients: int,
                        duration: float = 30.0, warmup: float = 5.0,
                        n_servers: int = 2, workers_per_client: int = 1,
                        backend: str = "closure",
                        strategy: str = "modulo",
                        gateway_cpu_s: float = GATEWAY_CPU_S,
                        trace: Trace | None = None,
                        seed: int = 11,
                        obs: Observability | None = None,
                        tracer: Callable[[Network], object]
                        | None = None) -> HttpExperimentResult:
    """Run one figure 8 configuration at one offered load level."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; pick from {MODES}")
    if trace is None:
        trace = generate_trace(8000, seed=seed)

    net = Network(seed=seed, obs=obs)
    gateway = net.add_router("gateway")

    server_hosts = []
    for i in range(n_servers):
        host = net.add_host(f"server{i}")
        net.link(host, gateway, bandwidth=100e6, latency=0.0002)
        server_hosts.append(host)

    client_hosts = []
    for i in range(n_clients):
        host = net.add_host(f"client{i}")
        net.link(host, gateway, bandwidth=10e6, latency=0.0005)
        client_hosts.append(host)

    net.finalize()
    if tracer is not None:
        tracer(net)

    servers = [HttpServer(net, host, trace.sizes)
               for host in server_hosts]
    virtual = gateway.interfaces[0].address
    codegen_ms: float | None = None

    if mode == "asp":
        deployment = Deployment()
        record = deployment.install(
            http_gateway_asp(str(virtual),
                             [str(h.address) for h in server_hosts],
                             strategy=strategy),
            [gateway], backend=backend, source_name="http-gateway")
        codegen_ms = record.codegen_ms["gateway"]
        assert gateway.planp is not None
        gateway.planp.cpu.per_item_s = gateway_cpu_s
    elif mode == "builtin":
        builtin = BuiltinGateway(gateway, virtual,
                                 [h.address for h in server_hosts],
                                 strategy=strategy)
        builtin.cpu.per_item_s = gateway_cpu_s

    workers: list[HttpClientWorker] = []
    for i, host in enumerate(client_hosts):
        if mode == "single":
            target = server_hosts[0].address
        elif mode == "disjoint":
            target = server_hosts[i % n_servers].address
        else:
            target = virtual
        for w in range(workers_per_client):
            worker = HttpClientWorker(
                net, host, target, trace,
                trace_offset=(i * workers_per_client + w) * 97)
            worker.start(at=0.001 * (i + w))
            workers.append(worker)

    net.run(until=duration)

    window = (warmup, duration)
    completed = sum(
        sum(1 for r in w.completed if warmup <= r.completed < duration)
        for w in workers)
    latencies = [r.latency for w in workers for r in w.completed
                 if warmup <= r.completed < duration]
    return HttpExperimentResult(
        seed=seed,
        mode=mode,
        n_clients=n_clients,
        duration=duration,
        warmup=warmup,
        throughput_rps=completed / (duration - warmup),
        mean_latency_s=sum(latencies) / len(latencies) if latencies
        else 0.0,
        per_server_served={s.host.name: s.requests_served
                           for s in servers},
        completed=completed,
        failures=sum(w.failures for w in workers),
        codegen_ms=codegen_ms,
        metrics=net.metrics_snapshot())


class Fig8SweepResult(LegacyResult):
    """Unified result of the figure 8 sweep.  ``figures["curves"]``
    maps mode to a list of per-load summaries (client count,
    throughput, latency, balance)."""

    _EXPERIMENT = "http_fig8_sweep"

    def curve(self, mode: str) -> list[dict[str, object]]:
        return self.figures["curves"][mode]


@keyword_only("client_counts")
def run_fig8_sweep(*, client_counts: list[int],
                   modes: tuple[str, ...] = ("single", "asp", "builtin"),
                   duration: float = 30.0, backend: str = "closure",
                   seed: int = 11) -> dict[str, list[HttpExperimentResult]]:
    """The full figure 8 sweep: throughput vs offered load per mode."""
    trace = generate_trace(8000, seed=seed)
    curves: dict[str, list[HttpExperimentResult]] = {}
    for mode in modes:
        curves[mode] = [
            run_http_experiment(mode=mode, n_clients=n,
                                duration=duration, backend=backend,
                                trace=trace, seed=seed)
            for n in client_counts]
    return curves
