"""A simulated HTTP/1.0 server (the Apache 1.2.6 stand-in).

Serves ``GET`` requests over the TCP substrate.  Request processing
costs simulated CPU time (parse + per-byte copy cost); the CPU is a
single serial resource, so throughput saturates at roughly
``1 / service_time`` requests per second no matter how many connections
are open — which is what makes the figure 8 saturation plateaus
meaningful.  ``workers`` bounds concurrently accepted requests, like
Apache's 5-10 child processes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ...net.node import Host
from ...net.overload import AdmissionController
from ...net.tcp import TcpConnection, TcpError
from ...net.topology import Network

HTTP_PORT = 80

#: CPU cost model: fixed per-request cost plus per-byte copy cost.
BASE_CPU_S = 0.004
PER_BYTE_CPU_S = 2.0e-7


@dataclass
class ServedRequest:
    path: str
    size: int
    arrived: float
    completed: float


class HttpServer:
    """One physical web server."""

    def __init__(self, net: Network, host: Host,
                 sizes: dict[str, int], *, port: int = HTTP_PORT,
                 workers: int = 8, base_cpu_s: float = BASE_CPU_S,
                 per_byte_cpu_s: float = PER_BYTE_CPU_S,
                 max_backlog: int | None = None,
                 request_deadline: float | None = None,
                 admission: AdmissionController | None = None,
                 syn_backlog: int | None = None):
        self.net = net
        self.host = host
        self.sizes = sizes
        self.port = port
        self.workers = workers
        self.base_cpu_s = base_cpu_s
        self.per_byte_cpu_s = per_byte_cpu_s
        #: graceful degradation (DESIGN §14): a ``None`` for each knob
        #: keeps the historical unbounded/deadline-free behavior
        self.max_backlog = max_backlog
        self.request_deadline = request_deadline
        self.admission = admission

        self.requests_served = 0
        self.bytes_served = 0
        self.errors = 0
        #: 503s sent on arrival: admission refusal, full backlog, or a
        #: queue already guaranteed to blow the deadline
        self.shed = 0
        #: 503s sent at dequeue: the deadline passed while queued
        self.expired = 0
        self.served: list[ServedRequest] = []
        self._cpu_busy_until = 0.0
        self._active_workers = 0
        self._backlog: deque[tuple[TcpConnection, str, float]] = deque()
        self._buffers: dict[int, bytearray] = {}

        net.tcp(host).listen(port, self._on_accept,
                             backlog=syn_backlog)

    # -- connection handling ---------------------------------------------------

    def _on_accept(self, conn: TcpConnection) -> None:
        self._buffers[id(conn)] = bytearray()
        conn.on_data = self._on_data
        conn.on_close = self._on_close

    def _on_close(self, conn: TcpConnection) -> None:
        self._buffers.pop(id(conn), None)

    def _on_data(self, conn: TcpConnection, data: bytes) -> None:
        buffer = self._buffers.setdefault(id(conn), bytearray())
        buffer.extend(data)
        if b"\r\n\r\n" not in buffer:
            return
        request, _, _rest = bytes(buffer).partition(b"\r\n\r\n")
        self._buffers[id(conn)] = bytearray()
        path = self._parse_path(request)
        if path is None:
            self.errors += 1
            self._respond(conn, 400, b"bad request")
            return
        self._enqueue(conn, path)

    @staticmethod
    def _parse_path(request: bytes) -> str | None:
        try:
            line = request.split(b"\r\n", 1)[0].decode("latin-1")
            method, path, _version = line.split(" ", 2)
        except ValueError:
            return None
        if method != "GET":
            return None
        return path

    # -- the CPU model -----------------------------------------------------------

    def _enqueue(self, conn: TcpConnection, path: str) -> None:
        now = self.host.sim.now
        if self.admission is not None and not self.admission.admit(now):
            self._shed(conn, "admission")
            return
        if (self.max_backlog is not None
                and len(self._backlog) >= self.max_backlog):
            if self.admission is not None:
                self.admission.on_overload()
            self._shed(conn, "backlog-full")
            return
        if self.request_deadline is not None:
            # Deadline-aware shedding: when the CPU work already queued
            # guarantees this request would miss its deadline, a fast
            # 503 now beats a slow 503 later (the client backs off
            # immediately instead of camping in the queue).
            if self._cpu_busy_until - now > self.request_deadline:
                if self.admission is not None:
                    self.admission.on_overload()
                self._shed(conn, "deadline")
                return
        self._backlog.append((conn, path, now))
        self._maybe_start_worker()

    def _maybe_start_worker(self) -> None:
        while self._active_workers < self.workers and self._backlog:
            conn, path, arrived = self._backlog.popleft()
            now = self.host.sim.now
            if (self.request_deadline is not None
                    and now - arrived > self.request_deadline):
                # Expired while queued: answer cheaply, charge no CPU.
                self._expire(conn)
                continue
            self._active_workers += 1
            size = self.sizes.get(path, 0)
            cpu = self.base_cpu_s + size * self.per_byte_cpu_s
            # The CPU is serial: this request's work starts when the
            # CPU frees up, regardless of worker concurrency.
            start = max(now, self._cpu_busy_until)
            self._cpu_busy_until = start + cpu
            done_at = self._cpu_busy_until

            def finish(conn=conn, path=path, size=size,
                       arrived=arrived) -> None:
                self._active_workers -= 1
                self._finish_request(conn, path, size, arrived)
                if self.admission is not None:
                    self.admission.on_healthy()
                self._maybe_start_worker()

            self.host.sim.at(done_at, finish)
            return

    # -- load shedding -----------------------------------------------------------

    def _shed(self, conn: TcpConnection, reason: str) -> None:
        self.shed += 1
        self.net.obs.metrics.counter("http.server.shed_total").inc()
        self.net.obs.events.emit("overload", node=self.host.name,
                                 where="http-server", action="shed",
                                 reason=reason)
        self._respond(conn, 503, b"overloaded")

    def _expire(self, conn: TcpConnection) -> None:
        self.expired += 1
        self.net.obs.metrics.counter("http.server.expired_total").inc()
        self.net.obs.events.emit("overload", node=self.host.name,
                                 where="http-server", action="expired")
        self._respond(conn, 503, b"expired")

    def _finish_request(self, conn: TcpConnection, path: str, size: int,
                        arrived: float) -> None:
        if path not in self.sizes:
            self.errors += 1
            self._respond(conn, 404, b"not found")
            return
        body = self._body_for(path, size)
        headers = (f"HTTP/1.0 200 OK\r\nContent-Length: {len(body)}\r\n"
                   f"\r\n").encode("latin-1")
        try:
            conn.send(headers + body)
            conn.close()
        except TcpError as err:
            # The client went away (reset, timeout) before the response
            # could be written — an expected peer failure, not a server
            # bug; any other exception propagates.
            self._count_error(path, err)
            return
        self.requests_served += 1
        self.bytes_served += len(body)
        self.served.append(ServedRequest(path=path, size=size,
                                         arrived=arrived,
                                         completed=self.host.sim.now))

    @staticmethod
    def _body_for(path: str, size: int) -> bytes:
        stamp = path.encode("latin-1")
        reps = size // max(len(stamp), 1) + 1
        return (stamp * reps)[:size]

    def _respond(self, conn: TcpConnection, code: int,
                 message: bytes) -> None:
        reason = {400: "Bad Request", 404: "Not Found",
                  503: "Service Unavailable"}.get(code, "Error")
        headers = (f"HTTP/1.0 {code} {reason}\r\nContent-Length: "
                   f"{len(message)}\r\n\r\n").encode("latin-1")
        try:
            conn.send(headers + message)
            conn.close()
        except TcpError as err:
            self._count_error(f"<{code}>", err)

    def _count_error(self, path: str, err: TcpError) -> None:
        self.errors += 1
        self.net.obs.metrics.counter("http.errors_total").inc()
        self.net.obs.events.emit("error", node=self.host.name,
                                 where="http-server", path=path,
                                 detail=str(err))

    def throughput(self, window: tuple[float, float]) -> float:
        """Requests completed per second inside a time window."""
        start, end = window
        count = sum(1 for r in self.served if start <= r.completed < end)
        return count / (end - start) if end > start else 0.0
