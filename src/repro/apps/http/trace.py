"""Synthetic web trace generation and replay order.

Substitutes the paper's replayed IRISA trace of 80,000 accesses (see
DESIGN.md §2): file popularity is Zipf-distributed and sizes are
lognormal, the standard findings for 1990s web workloads.  Generation is
fully deterministic from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceEntry:
    path: str
    size: int


@dataclass
class Trace:
    """A reusable request sequence over a fixed file population."""

    entries: list[TraceEntry]
    sizes: dict[str, int]

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, i: int) -> TraceEntry:
        return self.entries[i]

    def request_stream(self, start: int = 0):
        """An infinite, wrapping iterator over the trace (clients issue
        requests continuously in the paper's measurement)."""
        i = start
        n = len(self.entries)
        while True:
            yield self.entries[i % n]
            i += 1

    @property
    def total_bytes(self) -> int:
        return sum(e.size for e in self.entries)

    @property
    def mean_size(self) -> float:
        return self.total_bytes / len(self.entries)


def generate_trace(n_requests: int = 80_000, *, n_files: int = 1000,
                   zipf_a: float = 1.3, median_size: int = 4096,
                   sigma: float = 1.0, max_size: int = 262_144,
                   min_size: int = 128, seed: int = 0) -> Trace:
    """Build a trace of ``n_requests`` accesses to ``n_files`` documents.

    ``zipf_a`` is numpy's Zipf shape parameter (must be > 1); document
    ranks beyond ``n_files`` wrap around, keeping the catalogue finite.
    """
    rng = np.random.default_rng(seed)
    file_sizes = np.exp(rng.normal(np.log(median_size), sigma,
                                   size=n_files))
    file_sizes = np.clip(file_sizes, min_size, max_size).astype(int)
    sizes = {f"/doc{i:05d}.html": int(file_sizes[i])
             for i in range(n_files)}

    ranks = (rng.zipf(zipf_a, size=n_requests) - 1) % n_files
    paths = [f"/doc{r:05d}.html" for r in ranks]
    entries = [TraceEntry(path=p, size=sizes[p]) for p in paths]
    return Trace(entries=entries, sizes=sizes)
