"""Synthetic web trace generation and replay order.

Substitutes the paper's replayed IRISA trace of 80,000 accesses (see
DESIGN.md §2): file popularity is Zipf-distributed and sizes are
lognormal, the standard findings for 1990s web workloads.  Generation is
fully deterministic from the seed.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceEntry:
    path: str
    size: int


@dataclass(frozen=True)
class TimedRequest:
    """One open-loop arrival: fetch ``path`` at absolute time ``at``."""

    at: float
    path: str


@dataclass
class Trace:
    """A reusable request sequence over a fixed file population."""

    entries: list[TraceEntry]
    sizes: dict[str, int]

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, i: int) -> TraceEntry:
        return self.entries[i]

    def request_stream(self, start: int = 0):
        """An infinite, wrapping iterator over the trace (clients issue
        requests continuously in the paper's measurement)."""
        i = start
        n = len(self.entries)
        while True:
            yield self.entries[i % n]
            i += 1

    @property
    def total_bytes(self) -> int:
        return sum(e.size for e in self.entries)

    @property
    def mean_size(self) -> float:
        return self.total_bytes / len(self.entries)


def generate_trace(n_requests: int = 80_000, *, n_files: int = 1000,
                   zipf_a: float = 1.3, median_size: int = 4096,
                   sigma: float = 1.0, max_size: int = 262_144,
                   min_size: int = 128, seed: int = 0) -> Trace:
    """Build a trace of ``n_requests`` accesses to ``n_files`` documents.

    ``zipf_a`` is numpy's Zipf shape parameter (must be > 1); document
    ranks beyond ``n_files`` wrap around, keeping the catalogue finite.
    """
    rng = np.random.default_rng(seed)
    file_sizes = np.exp(rng.normal(np.log(median_size), sigma,
                                   size=n_files))
    file_sizes = np.clip(file_sizes, min_size, max_size).astype(int)
    sizes = {f"/doc{i:05d}.html": int(file_sizes[i])
             for i in range(n_files)}

    ranks = (rng.zipf(zipf_a, size=n_requests) - 1) % n_files
    paths = [f"/doc{r:05d}.html" for r in ranks]
    entries = [TraceEntry(path=p, size=sizes[p]) for p in paths]
    return Trace(entries=entries, sizes=sizes)


# -- open-loop workloads (flash crowds, DESIGN §14) ---------------------------


def open_loop_arrivals(trace: Trace, *, start: float, duration: float,
                       base_rate: float, diurnal_amplitude: float = 0.3,
                       diurnal_period: float = 8.0,
                       spike_start: float | None = None,
                       spike_end: float | None = None,
                       spike_multiplier: float = 1.0,
                       hot_fraction: float = 0.0, hot_rank: int = 0,
                       zipf_a: float = 1.3,
                       entropy: random.Random | None = None,
                       seed: int = 0) -> list[TimedRequest]:
    """Generate flash-crowd arrivals over ``trace``'s document catalogue.

    The arrival process is inhomogeneous Poisson, realized by thinning:
    a diurnal sinusoid (``base_rate`` modulated by
    ``diurnal_amplitude`` over ``diurnal_period`` seconds — the day
    compressed to simulation scale) times a ``spike_multiplier`` step
    inside ``[spike_start, spike_end)``.  During the spike a
    ``hot_fraction`` share of requests collapses onto the document at
    popularity rank ``hot_rank`` — the Zipf shift of a flash crowd,
    where everyone wants the same page — while the rest draw from the
    stationary Zipf(``zipf_a``) popularity law.

    All randomness comes from ``entropy`` (pass a
    ``SchedulingContext``-owned stream for shard-stable runs) or a
    private ``random.Random(seed)``; the shared simulator rng and the
    numpy trace rng are never touched, so adding a crowd cannot perturb
    any other workload's draws.
    """
    if base_rate <= 0 or duration <= 0:
        raise ValueError("need base_rate > 0 and duration > 0")
    if not 0 <= diurnal_amplitude < 1:
        raise ValueError(f"diurnal_amplitude {diurnal_amplitude} "
                         f"not in [0, 1)")
    rng = entropy if entropy is not None else random.Random(seed)
    ranked = sorted(trace.sizes)  # rank order: doc00000 is hottest
    cdf: list[float] = []
    acc = 0.0
    for r in range(len(ranked)):
        acc += (r + 1) ** -zipf_a
        cdf.append(acc)
    total = cdf[-1]

    def rate_at(t: float) -> float:
        lam = base_rate * (1.0 + diurnal_amplitude * math.sin(
            2.0 * math.pi * (t - start) / diurnal_period))
        if (spike_start is not None and spike_end is not None
                and spike_start <= t < spike_end):
            lam *= spike_multiplier
        return lam

    lam_max = (base_rate * (1.0 + diurnal_amplitude)
               * max(spike_multiplier, 1.0))
    arrivals: list[TimedRequest] = []
    t = start
    end = start + duration
    while True:
        t += rng.expovariate(lam_max)
        if t >= end:
            break
        if rng.random() * lam_max > rate_at(t):
            continue  # thinned: below the envelope at this instant
        in_spike = (spike_start is not None and spike_end is not None
                    and spike_start <= t < spike_end)
        if in_spike and rng.random() < hot_fraction:
            path = ranked[hot_rank % len(ranked)]
        else:
            i = bisect.bisect_left(cdf, rng.random() * total)
            path = ranked[min(i, len(ranked) - 1)]
        arrivals.append(TimedRequest(at=t, path=path))
    return arrivals


def flood_times(*, start: float, duration: float, rate: float,
                entropy: random.Random) -> list[float]:
    """Poisson firing times for one attacker — SYN-flood or similar
    packet floods where only the timing matters, not a document."""
    if rate <= 0 or duration <= 0:
        raise ValueError("need rate > 0 and duration > 0")
    times: list[float] = []
    t = start
    end = start + duration
    while True:
        t += entropy.expovariate(rate)
        if t >= end:
            return times
        times.append(t)
