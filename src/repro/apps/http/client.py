"""Closed-loop and open-loop HTTP clients.

"Clients continuously issue requests so as to measure the maximum load
the clustered server can handle" (paper §3.2): each
:class:`HttpClientWorker` keeps exactly one request outstanding —
connect, request, read the full response, repeat — so offered load
scales with the number of workers.

A failed or shed (503) request is retried with jittered exponential
backoff (the same :class:`~repro.net.overload.Backoff` schedule
netdeploy uses) up to ``max_retries`` attempts, then abandoned and
accounted — the graceful-degradation contract of DESIGN §14: under
overload the client backs off instead of hammering, and gives up
instead of camping.

:class:`OpenLoopClient` issues one independent request per scheduled
arrival regardless of completions — the flash-crowd visitor model,
where offered load is a property of the crowd, not of server capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.overload import Backoff
from ...net.tcp import TcpConnection, TcpError
from ...net.topology import Network
from .server import HTTP_PORT
from .trace import Trace


@dataclass
class CompletedRequest:
    path: str
    bytes_received: int
    started: float
    completed: float
    status: int = 200

    @property
    def latency(self) -> float:
        return self.completed - self.started


class HttpClientWorker:
    """One closed-loop request generator."""

    def __init__(self, net: Network, host: Host, server: HostAddr,
                 trace: Trace, *, port: int = HTTP_PORT,
                 trace_offset: int = 0, think_time: float = 0.0,
                 retry_delay: float = 0.1,
                 retry_ceiling: float = 2.0,
                 max_retries: int = 4,
                 request_timeout: float = 10.0):
        self.net = net
        self.host = host
        self.server = server
        self.port = port
        self.think_time = think_time
        #: application-level deadline per request: a server that dies
        #: mid-response leaves no TCP timer running, so the client must
        #: give up on its own (as real HTTP clients do)
        self.request_timeout = request_timeout
        #: attempts per trace entry before it is abandoned
        self.max_retries = max_retries
        self.completed: list[CompletedRequest] = []
        self.failures = 0
        self.retries = 0
        self.abandoned = 0
        #: complete 503 responses (each is retried like a failure)
        self.shed_responses = 0
        # Jittered exponential backoff between attempts, from a
        # per-worker entropy stream so retry timing is independent of
        # unrelated traffic (byte-identical under sharding).
        self._backoff = Backoff(
            initial=retry_delay, ceiling=max(retry_ceiling, retry_delay),
            entropy=host.sim.entropy(
                f"http:{host.name}:{port}:{trace_offset}"))
        self._stream = trace.request_stream(start=trace_offset)
        self._stopped = False
        self._attempts = 0
        self._entry = None
        self._buffer = bytearray()
        self._expected: int | None = None
        self._status = 200
        self._current_path = ""
        self._started_at = 0.0
        self._conn: TcpConnection | None = None
        self._deadline = None

    def start(self, at: float = 0.0) -> None:
        self.host.sim.at(at, self._next_request, context=self.host.ctx)

    def stop(self) -> None:
        self._stopped = True

    # -- request cycle ----------------------------------------------------------

    def _next_request(self) -> None:
        if self._stopped:
            return
        if self._entry is None:
            self._entry = next(self._stream)
            self._attempts = 0
            self._backoff.reset()
        self._current_path = self._entry.path
        self._started_at = self.host.sim.now
        self._buffer = bytearray()
        self._expected = None
        self._status = 200
        try:
            conn = self.net.tcp(self.host).connect(self.server, self.port)
        except TcpError:
            self._on_failure()
            return
        conn.on_connected = self._on_connected
        conn.on_data = self._on_data
        conn.on_close = self._on_conn_close
        conn.on_fail = lambda c: self._on_failure()
        self._conn = conn
        self._deadline = self.host.sim.schedule(self.request_timeout,
                                                self._on_timeout)

    def _on_timeout(self) -> None:
        if self._stopped or self._conn is None:
            return
        conn, self._conn = self._conn, None
        conn.on_fail = None
        conn.on_close = None
        conn.abort()
        self._on_failure()

    def _on_connected(self, conn: TcpConnection) -> None:
        request = f"GET {self._current_path} HTTP/1.0\r\n\r\n"
        conn.send(request.encode("latin-1"))

    def _on_data(self, conn: TcpConnection, data: bytes) -> None:
        self._buffer.extend(data)
        if self._expected is None and b"\r\n\r\n" in self._buffer:
            header, _, _body = bytes(self._buffer).partition(b"\r\n\r\n")
            lines = header.split(b"\r\n")
            parts = lines[0].split(b" ")
            if len(parts) >= 2 and parts[1].isdigit():
                self._status = int(parts[1])
            for line in lines[1:]:
                if line.lower().startswith(b"content-length:"):
                    self._expected = int(line.split(b":", 1)[1])
        if self._expected is not None:
            _header, _, body = bytes(self._buffer).partition(b"\r\n\r\n")
            if len(body) >= self._expected:
                self._complete(conn, len(body))

    def _complete(self, conn: TcpConnection, body_bytes: int) -> None:
        if self._expected is None:
            return
        self._expected = None
        self._conn = None
        if self._deadline is not None:
            self._deadline.cancel()
        if self._status == 503:
            # The server shed us: a complete exchange, but not a
            # success — back off and retry like a failure (without
            # counting a transport failure).
            self.shed_responses += 1
            self.net.obs.metrics.counter(
                "http.client.shed_responses_total").inc()
            conn.close()
            self._retry_or_abandon()
            return
        self.completed.append(CompletedRequest(
            path=self._current_path, bytes_received=body_bytes,
            started=self._started_at, completed=self.host.sim.now,
            status=self._status))
        self._entry = None
        conn.close()
        if self.think_time > 0:
            self.host.sim.schedule(self.think_time, self._next_request)
        else:
            self.host.sim.schedule(0.0, self._next_request)

    def _on_conn_close(self, conn: TcpConnection) -> None:
        # Server closed first; if the response was complete we already
        # moved on, otherwise treat as failure.
        if self._expected is not None or (not self.completed
                                          and self._buffer):
            body = bytes(self._buffer).partition(b"\r\n\r\n")[2]
            if self._expected is not None and len(body) >= self._expected:
                self._complete(conn, len(body))

    def _on_failure(self) -> None:
        self.failures += 1
        self._conn = None
        if self._deadline is not None:
            self._deadline.cancel()
        if not self._stopped:
            self._retry_or_abandon()

    def _retry_or_abandon(self) -> None:
        """Jittered-backoff retry of the *same* entry, abandoning it
        after ``max_retries`` attempts — no more silent abandonment on
        connection reset, and no synchronized retry stampedes."""
        self._attempts += 1
        if (self.max_retries is not None
                and self._attempts > self.max_retries):
            self.abandoned += 1
            self.net.obs.metrics.counter(
                "http.client.abandoned_total").inc()
            self._entry = None  # give this one up; move on
            self.host.sim.schedule(self._backoff.initial,
                                   self._next_request)
            return
        self.retries += 1
        self.net.obs.metrics.counter("http.client.retries_total").inc()
        delay = self._backoff.delay()
        self._backoff.bump()
        self.host.sim.schedule(delay, self._next_request)

    # -- reporting ---------------------------------------------------------------

    def throughput(self, window: tuple[float, float]) -> float:
        start, end = window
        count = sum(1 for r in self.completed
                    if start <= r.completed < end)
        return count / (end - start) if end > start else 0.0

    def mean_latency(self, window: tuple[float, float]) -> float:
        start, end = window
        lats = [r.latency for r in self.completed
                if start <= r.completed < end]
        return sum(lats) / len(lats) if lats else 0.0


class OpenLoopClient:
    """Open-loop request generation: one independent connection per
    scheduled arrival, no retries — the flash-crowd visitor, who
    either gets the page, gets shed, or leaves.
    """

    def __init__(self, net: Network, host: Host, server: HostAddr,
                 arrivals, *, port: int = HTTP_PORT,
                 request_timeout: float = 5.0):
        self.net = net
        self.host = host
        self.server = server
        self.port = port
        self.request_timeout = request_timeout
        self.completed: list[CompletedRequest] = []
        self.failures = 0
        self.shed_responses = 0
        self._arrivals = list(arrivals)

    def start(self) -> None:
        for req in self._arrivals:
            self.host.sim.at(req.at,
                             lambda path=req.path: self._fire(path),
                             context=self.host.ctx)

    def _fire(self, path: str) -> None:
        try:
            conn = self.net.tcp(self.host).connect(self.server, self.port)
        except TcpError:
            self.failures += 1
            return
        state = _OneShot(self, path, self.host.sim.now)
        conn.on_connected = state.on_connected
        conn.on_data = state.on_data
        conn.on_fail = state.on_fail
        state.deadline = self.host.sim.schedule(
            self.request_timeout, lambda: state.on_timeout(conn))


class _OneShot:
    """Per-request state of one :class:`OpenLoopClient` arrival."""

    def __init__(self, client: OpenLoopClient, path: str, started: float):
        self.client = client
        self.path = path
        self.started = started
        self.buffer = bytearray()
        self.expected: int | None = None
        self.status = 200
        self.done = False
        self.deadline = None

    def on_connected(self, conn: TcpConnection) -> None:
        conn.send(f"GET {self.path} HTTP/1.0\r\n\r\n".encode("latin-1"))

    def on_data(self, conn: TcpConnection, data: bytes) -> None:
        if self.done:
            return
        self.buffer.extend(data)
        if self.expected is None and b"\r\n\r\n" in self.buffer:
            header, _, _body = bytes(self.buffer).partition(b"\r\n\r\n")
            lines = header.split(b"\r\n")
            parts = lines[0].split(b" ")
            if len(parts) >= 2 and parts[1].isdigit():
                self.status = int(parts[1])
            for line in lines[1:]:
                if line.lower().startswith(b"content-length:"):
                    self.expected = int(line.split(b":", 1)[1])
        if self.expected is not None:
            _header, _, body = bytes(self.buffer).partition(b"\r\n\r\n")
            if len(body) >= self.expected:
                self._finish(conn, len(body))

    def _finish(self, conn: TcpConnection, body_bytes: int) -> None:
        self.done = True
        if self.deadline is not None:
            self.deadline.cancel()
        client = self.client
        if self.status == 503:
            client.shed_responses += 1
        else:
            client.completed.append(CompletedRequest(
                path=self.path, bytes_received=body_bytes,
                started=self.started,
                completed=client.host.sim.now, status=self.status))
        conn.close()

    def on_fail(self, conn: TcpConnection) -> None:
        if self.done:
            return
        self.done = True
        if self.deadline is not None:
            self.deadline.cancel()
        self.client.failures += 1

    def on_timeout(self, conn: TcpConnection) -> None:
        if self.done:
            return
        self.done = True
        conn.on_fail = None
        conn.abort()
        self.client.failures += 1
