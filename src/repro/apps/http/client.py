"""Closed-loop HTTP clients.

"Clients continuously issue requests so as to measure the maximum load
the clustered server can handle" (paper §3.2): each worker keeps exactly
one request outstanding — connect, request, read the full response,
repeat — so offered load scales with the number of workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.tcp import TcpConnection, TcpError
from ...net.topology import Network
from .server import HTTP_PORT
from .trace import Trace


@dataclass
class CompletedRequest:
    path: str
    bytes_received: int
    started: float
    completed: float

    @property
    def latency(self) -> float:
        return self.completed - self.started


class HttpClientWorker:
    """One closed-loop request generator."""

    def __init__(self, net: Network, host: Host, server: HostAddr,
                 trace: Trace, *, port: int = HTTP_PORT,
                 trace_offset: int = 0, think_time: float = 0.0,
                 retry_delay: float = 0.1,
                 request_timeout: float = 10.0):
        self.net = net
        self.host = host
        self.server = server
        self.port = port
        self.think_time = think_time
        self.retry_delay = retry_delay
        #: application-level deadline per request: a server that dies
        #: mid-response leaves no TCP timer running, so the client must
        #: give up on its own (as real HTTP clients do)
        self.request_timeout = request_timeout
        self.completed: list[CompletedRequest] = []
        self.failures = 0
        self._stream = trace.request_stream(start=trace_offset)
        self._stopped = False
        self._buffer = bytearray()
        self._expected: int | None = None
        self._current_path = ""
        self._started_at = 0.0
        self._conn: TcpConnection | None = None
        self._deadline = None

    def start(self, at: float = 0.0) -> None:
        self.net.sim.at(at, self._next_request)

    def stop(self) -> None:
        self._stopped = True

    # -- request cycle ----------------------------------------------------------

    def _next_request(self) -> None:
        if self._stopped:
            return
        entry = next(self._stream)
        self._current_path = entry.path
        self._started_at = self.net.sim.now
        self._buffer = bytearray()
        self._expected = None
        try:
            conn = self.net.tcp(self.host).connect(self.server, self.port)
        except TcpError:
            self._on_failure()
            return
        conn.on_connected = self._on_connected
        conn.on_data = self._on_data
        conn.on_close = self._on_conn_close
        conn.on_fail = lambda c: self._on_failure()
        self._conn = conn
        self._deadline = self.net.sim.schedule(self.request_timeout,
                                               self._on_timeout)

    def _on_timeout(self) -> None:
        if self._stopped or self._conn is None:
            return
        conn, self._conn = self._conn, None
        conn.on_fail = None
        conn.on_close = None
        conn.abort()
        self._on_failure()

    def _on_connected(self, conn: TcpConnection) -> None:
        request = f"GET {self._current_path} HTTP/1.0\r\n\r\n"
        conn.send(request.encode("latin-1"))

    def _on_data(self, conn: TcpConnection, data: bytes) -> None:
        self._buffer.extend(data)
        if self._expected is None and b"\r\n\r\n" in self._buffer:
            header, _, _body = bytes(self._buffer).partition(b"\r\n\r\n")
            for line in header.split(b"\r\n")[1:]:
                if line.lower().startswith(b"content-length:"):
                    self._expected = int(line.split(b":", 1)[1])
        if self._expected is not None:
            _header, _, body = bytes(self._buffer).partition(b"\r\n\r\n")
            if len(body) >= self._expected:
                self._complete(conn, len(body))

    def _complete(self, conn: TcpConnection, body_bytes: int) -> None:
        if self._expected is None:
            return
        self._expected = None
        self._conn = None
        if self._deadline is not None:
            self._deadline.cancel()
        self.completed.append(CompletedRequest(
            path=self._current_path, bytes_received=body_bytes,
            started=self._started_at, completed=self.net.sim.now))
        conn.close()
        if self.think_time > 0:
            self.net.sim.schedule(self.think_time, self._next_request)
        else:
            self.net.sim.schedule(0.0, self._next_request)

    def _on_conn_close(self, conn: TcpConnection) -> None:
        # Server closed first; if the response was complete we already
        # moved on, otherwise treat as failure.
        if self._expected is not None or (not self.completed
                                          and self._buffer):
            body = bytes(self._buffer).partition(b"\r\n\r\n")[2]
            if self._expected is not None and len(body) >= self._expected:
                self._complete(conn, len(body))

    def _on_failure(self) -> None:
        self.failures += 1
        self._conn = None
        if self._deadline is not None:
            self._deadline.cancel()
        if not self._stopped:
            self.net.sim.schedule(self.retry_delay, self._next_request)

    # -- reporting ---------------------------------------------------------------

    def throughput(self, window: tuple[float, float]) -> float:
        start, end = window
        count = sum(1 for r in self.completed
                    if start <= r.completed < end)
        return count / (end - start) if end > start else 0.0

    def mean_latency(self, window: tuple[float, float]) -> float:
        start, end = window
        lats = [r.latency for r in self.completed
                if start <= r.completed < end]
        return sum(lats) / len(lats) if lats else 0.0
