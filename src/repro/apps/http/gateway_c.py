"""The built-in "C" gateway baseline (paper §3.2, figure 8 curve c).

Implements exactly the load-balancing logic of the gateway ASP, but as
native host code plugged into the same IP/PLAN-P interception point of
the node — the reproduction's analogue of the paper's "built-in C
programmed server" compiled into the kernel.  Comparing its throughput
to the ASP's isolates the cost of the PLAN-P execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.addresses import HostAddr
from ...net.node import Interface, Node
from ...net.packet import Packet, TcpHeader
from ...net.sim import SerialResource
from .server import HTTP_PORT


@dataclass
class GatewayStats:
    requests_bound: int = 0
    packets_in: int = 0
    packets_out: int = 0


class BuiltinGateway:
    """Native NAT-style load balancer, installed as a node's packet
    layer (duck-typed to the PLAN-P layer interface)."""

    promiscuous = False

    def __init__(self, node: Node, virtual: HostAddr,
                 servers: list[HostAddr], *, port: int = HTTP_PORT,
                 strategy: str = "modulo"):
        if not servers:
            raise ValueError("need at least one server")
        self.node = node
        node.planp = self  # same interception point as a PLAN-P layer
        self.virtual = virtual
        self.servers = list(servers)
        self.server_set = set(servers)
        self.port = port
        self.strategy = strategy
        self.counter = 0
        self.bindings: dict[tuple[HostAddr, int], int] = {}
        self.stats = GatewayStats()
        #: same CPU model knob as the PLAN-P layer, for fair comparison
        self.cpu = SerialResource(node.sim)

    # -- PlanPLayer-compatible interface ---------------------------------------

    def wants(self, packet: Packet, iface: Interface | None) -> bool:
        header = packet.transport
        if not isinstance(header, TcpHeader):
            return False
        if header.dst_port == self.port and packet.ip.dst == self.virtual:
            return True
        return (header.src_port == self.port
                and packet.ip.src in self.server_set)

    def process(self, packet: Packet, iface: Interface | None) -> None:
        if self.cpu.per_item_s > 0:
            self.cpu.submit(lambda: self._process_now(packet, iface))
        else:
            self._process_now(packet, iface)

    def _process_now(self, packet: Packet,
                     iface: Interface | None) -> None:
        header = packet.transport
        assert isinstance(header, TcpHeader)
        self.stats.packets_in += 1
        if header.dst_port == self.port and packet.ip.dst == self.virtual:
            out = self._bind_and_rewrite(packet, header)
        else:
            out = Packet(ip=packet.ip.with_src(self.virtual),
                         transport=header, payload=packet.payload,
                         created_at=packet.created_at)
        self.stats.packets_out += 1
        # Every processed packet is rewritten, so it routes normally.
        self.node.ip_send(out)

    def _bind_and_rewrite(self, packet: Packet,
                          header: TcpHeader) -> Packet:
        key = (packet.ip.src, header.src_port)
        index = self.bindings.get(key)
        if index is None:
            index = self._pick(header)
            self.bindings[key] = index
            self.counter += 1
            self.stats.requests_bound += 1
        server = self.servers[index]
        return Packet(ip=packet.ip.with_dst(server), transport=header,
                      payload=packet.payload,
                      created_at=packet.created_at)

    def _pick(self, header: TcpHeader) -> int:
        if self.strategy == "modulo":
            return self.counter % len(self.servers)
        if self.strategy == "srchash":
            return header.src_port % len(self.servers)
        return self.node.entropy.randrange(len(self.servers))
