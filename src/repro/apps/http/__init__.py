"""Extensible HTTP server with load balancing (paper 3.2)."""

from .client import CompletedRequest, HttpClientWorker, OpenLoopClient
from .cluster import ClusterManager, HealthResponder
from .experiment import (MODES, Fig8SweepResult, HttpExperimentResult,
                         run_fig8_sweep, run_http_experiment)
from .gateway_c import BuiltinGateway, GatewayStats
from .server import HTTP_PORT, HttpServer, ServedRequest
from .trace import (TimedRequest, Trace, TraceEntry, flood_times,
                    generate_trace, open_loop_arrivals)

__all__ = [
    "BuiltinGateway",
    "ClusterManager",
    "HealthResponder",
    "CompletedRequest",
    "Fig8SweepResult",
    "GatewayStats",
    "HTTP_PORT",
    "HttpClientWorker",
    "HttpExperimentResult",
    "HttpServer",
    "MODES",
    "OpenLoopClient",
    "ServedRequest",
    "TimedRequest",
    "Trace",
    "TraceEntry",
    "flood_times",
    "generate_trace",
    "open_loop_arrivals",
    "run_fig8_sweep",
    "run_http_experiment",
]
