"""The extensible cluster-server toolkit (paper §5, implemented).

"We want to enrich the HTTP cluster server experiment with
fault-tolerance capabilities and several load-balancing algorithms.
This can lead to the development of a toolkit that helps the building
and configuration of extensible cluster servers."

The toolkit's pieces:

* :class:`HealthResponder` — a trivial UDP health endpoint on each
  physical server;
* :class:`ClusterManager` — probes the servers, and whenever the alive
  set changes, *regenerates* the gateway ASP for the surviving servers
  and re-deploys it over the network (via
  :class:`repro.runtime.netdeploy.DeploymentManager`) — configuration
  changes are just new PLAN-P programs, the §3.2 configurability claim
  made operational.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...asps.http import http_gateway_asp
from ...net.addresses import HostAddr
from ...net.node import Host, Router
from ...net.topology import Network
from ...runtime.netdeploy import DeploymentManager, DeploymentService

HEALTH_PORT = 9950


class HealthResponder:
    """Answers PING with PONG until stopped (a dead server's responder
    is stopped, simulating the crash)."""

    def __init__(self, net: Network, host: Host,
                 port: int = HEALTH_PORT):
        self.net = net
        self.host = host
        self.alive = True
        self.pings_answered = 0
        self._socket = net.udp(host).bind(port)
        self._socket.on_datagram = self._on_ping

    def _on_ping(self, payload: bytes, src: HostAddr,
                 src_port: int) -> None:
        if self.alive and payload == b"PING":
            self.pings_answered += 1
            self._socket.sendto(src, src_port, b"PONG")

    def stop(self) -> None:
        """Simulate a crash: stop answering."""
        self.alive = False


@dataclass
class ClusterEvent:
    at: float
    alive: tuple[str, ...]
    generation: int


class ClusterManager:
    """Keeps the gateway ASP in sync with the set of live servers."""

    def __init__(self, net: Network, manager_host: Host,
                 gateway: Router, virtual: HostAddr,
                 servers: list[Host], *, strategy: str = "modulo",
                 health_port: int = HEALTH_PORT,
                 check_interval: float = 1.0,
                 timeout: float = 0.5,
                 backend: str = "closure"):
        self.net = net
        self.gateway = gateway
        self.virtual = virtual
        self.servers = list(servers)
        self.strategy = strategy
        self.health_port = health_port
        self.timeout = timeout
        self.backend = backend
        self.generation = 0
        self.events: list[ClusterEvent] = []
        self.alive: set[str] = {s.name for s in servers}

        #: the gateway learns programs over the network
        self._service = DeploymentService(net, gateway)
        self._manager = DeploymentManager(net, manager_host)
        self._probe_socket = net.udp(manager_host).bind()
        self._probe_socket.on_datagram = self._on_pong
        self._answers: set[HostAddr] = set()
        self._deploy_current()
        net.sim.every(check_interval, self._probe)

    # -- health checking ----------------------------------------------------------

    def _probe(self) -> None:
        self._answers = set()
        # Probe everything: dead servers that come back are re-admitted.
        for server in self.servers:
            self._probe_socket.sendto(server.address, self.health_port,
                                      b"PING")
        self.net.sim.schedule(self.timeout, self._evaluate)

    def _on_pong(self, payload: bytes, src: HostAddr,
                 src_port: int) -> None:
        if payload == b"PONG":
            self._answers.add(src)

    def _evaluate(self) -> None:
        answered = {s.name for s in self.servers
                    if s.address in self._answers}
        if answered != self.alive and answered:
            self.alive = answered
            self._deploy_current()

    # -- (re)configuration ----------------------------------------------------------

    def _deploy_current(self) -> None:
        live = [s for s in self.servers if s.name in self.alive]
        if not live:
            return  # nothing to balance onto; keep the last program
        source = http_gateway_asp(
            str(self.virtual), [str(s.address) for s in live],
            strategy=self.strategy)
        self.generation += 1
        self._manager.push(source, [self.gateway.address],
                           backend=self.backend,
                           name=f"gw-gen{self.generation}")
        self.events.append(ClusterEvent(
            at=self.net.sim.now,
            alive=tuple(sorted(self.alive)),
            generation=self.generation))
