"""The audio broadcasting experiment (paper §3.1, figures 5–7).

Builds the figure 5 network — audio source behind a router, the client
and the load generator sharing one segment — deploys the router and
client ASPs, replays a load schedule, and reports the client-side
bandwidth series (figure 6) and silent-period counts (figure 7).

Time is scaled: the paper's 450-second run with breakpoints at 100 / 220
/ 340 s maps linearly onto any requested duration, so tests can run a
45-second version of the same experiment.
"""

from __future__ import annotations

from typing import Callable

from ...asps.audio import (AUDIO_PORT, FMT_MONO16, FMT_MONO8, FMT_STEREO16,
                           audio_client_asp, audio_router_asp)
from ...experiments.compat import keyword_only
from ...experiments.result import LegacyResult
from ...net.topology import Network
from ...obs import Observability
from ...runtime.deployment import Deployment
from .client import AudioClient, BandwidthSample
from .loadgen import LoadGenerator
from .source import AudioSource

#: The multicast group of the broadcast.
AUDIO_GROUP = "224.1.1.1"

#: Segment capacity (bps).  2 Mbit/s keeps the paper's 176-kbit stream a
#: realistic fraction of the medium, as 10 Mbit Ethernet did in 1998.
SEGMENT_BANDWIDTH = 2_000_000

#: The figure 6 load schedule as (fraction-of-run, offered bps):
#: none, then large at 100/450, medium at 220/450, small at 340/450.
FIG6_SCHEDULE = (
    (100 / 450, 1_700_000),   # large: forces 8-bit mono (44 kbit/s)
    (220 / 450, 1_250_000),   # medium: oscillates between 44 and 88
    (340 / 450, 600_000),     # small: settles at 16-bit mono (88)
)


class _WireTap:
    """Samples the audio stream as it arrives on the client's wire."""

    def __init__(self, net: Network, group, bucket_s: float = 1.0):
        self._net = net
        self._group = group
        self._bucket_s = bucket_s
        self._buckets: dict[int, tuple[int, dict[int, int]]] = {}

    def on_packet(self, packet, iface) -> None:
        from ...net.packet import UdpHeader

        if packet.ip.dst != self._group:
            return
        if not (isinstance(packet.transport, UdpHeader)
                and packet.transport.dst_port == AUDIO_PORT):
            return
        fmt = packet.payload[0] if packet.payload else 0
        bucket = int(self._net.sim.now / self._bucket_s)
        nbytes, fmts = self._buckets.get(bucket, (0, {}))
        fmts[fmt] = fmts.get(fmt, 0) + 1
        self._buckets[bucket] = (nbytes + len(packet.payload), fmts)

    def series(self) -> list[BandwidthSample]:
        out = []
        for bucket in sorted(self._buckets):
            nbytes, fmts = self._buckets[bucket]
            dominant = max(fmts.items(), key=lambda kv: kv[1])[0]
            out.append(BandwidthSample(
                time=bucket * self._bucket_s,
                kbps=nbytes * 8 / self._bucket_s / 1000,
                quality=dominant, formats=dict(fmts)))
        return out


class AudioExperimentResult(LegacyResult):
    """Unified result of the figure 5/6/7 audio run.

    ``params``: ``adaptation``, ``duration``; ``figures``:
    ``bandwidth_series`` (list of :class:`BandwidthSample`),
    ``silent_periods``, ``frames_sent``, ``frames_received``,
    ``quality_fractions``, ``restored``, ``segment_drops``.  The flat
    legacy attributes (``result.silent_periods`` …) keep resolving for
    one release.
    """

    _EXPERIMENT = "audio"
    _PARAM_FIELDS = ("adaptation", "duration")

    def _rehydrate(self) -> None:
        series = self.figures.get("bandwidth_series")
        if series and isinstance(series[0], dict):
            self.figures["bandwidth_series"] = [
                BandwidthSample(
                    time=s["time"], kbps=s["kbps"], quality=s["quality"],
                    formats={int(k): v for k, v in s["formats"].items()})
                for s in series]
        fractions = self.figures.get("quality_fractions")
        if fractions:
            self.figures["quality_fractions"] = {
                int(k): v for k, v in fractions.items()}

    def dominant_quality_between(self, start: float, end: float) -> int:
        """The most common quality level in a time window (for asserting
        the figure 6 phases)."""
        counts: dict[int, int] = {}
        for sample in self.bandwidth_series:
            if start <= sample.time < end:
                counts[sample.quality] = counts.get(sample.quality, 0) + 1
        if not counts:
            return -1
        return max(counts.items(), key=lambda kv: kv[1])[0]

    def mean_kbps_between(self, start: float, end: float) -> float:
        vals = [s.kbps for s in self.bandwidth_series
                if start <= s.time < end]
        return sum(vals) / len(vals) if vals else 0.0

    def qualities_between(self, start: float, end: float) -> set[int]:
        """Every format observed on the wire in a time window."""
        out: set[int] = set()
        for s in self.bandwidth_series:
            if start <= s.time < end:
                out.update(s.formats)
        return out


def run_audio_experiment(*, adaptation: bool = True,
                         duration: float = 450.0,
                         load_schedule: list[tuple[float, float]]
                         | None = None,
                         constant_load_bps: float | None = None,
                         backend: str = "closure",
                         seed: int = 7,
                         obs: Observability | None = None,
                         tracer: Callable[[Network], object]
                         | None = None) -> AudioExperimentResult:
    """Run the figure 5 topology for ``duration`` simulated seconds.

    ``load_schedule`` entries are (absolute time, offered bps); when
    omitted, the figure 6 schedule is scaled to ``duration``.
    ``constant_load_bps`` overrides the schedule with a flat load (used
    by the figure 7 sweep).  ``obs`` supplies an external observability
    scope; ``tracer`` is called with the finalized network before any
    traffic starts (e.g. ``lambda net: PacketTracer(net).attach_all()``).
    """
    net = Network(seed=seed, obs=obs)
    source_host = net.add_host("audio-source")
    router = net.add_router("router")
    client_host = net.add_host("client")
    loadgen_host = net.add_host("loadgen")
    sink_host = net.add_host("sink")

    net.link(source_host, router, bandwidth=100e6, latency=0.0005)
    segment = net.segment("client-lan", bandwidth=SEGMENT_BANDWIDTH,
                          latency=0.0002, queue_limit=64)
    for node in (router, client_host, loadgen_host, sink_host):
        net.attach(node, segment)
    net.finalize()
    if tracer is not None:
        tracer(net)
    group = net.multicast_group(AUDIO_GROUP, source_host, [client_host])

    source = AudioSource(net, source_host, group)
    client = AudioClient(net, client_host, group)
    loadgen = LoadGenerator(net, loadgen_host, sink_host.address)

    # Figure 6 measures the bandwidth the audio traffic uses *on the
    # wire* — tap the client's reception before the client ASP restores
    # frames to full quality.
    wire = _WireTap(net, group)
    client_host.receive_taps.append(wire.on_packet)

    if adaptation:
        deployment = Deployment()
        deployment.install(audio_router_asp(), [router],
                           backend=backend, source_name="audio-router")
        deployment.install(audio_client_asp(), [client_host],
                           backend=backend, source_name="audio-client")

    if constant_load_bps is not None:
        loadgen.set_rate(constant_load_bps)
    else:
        schedule = load_schedule
        if schedule is None:
            schedule = [(frac * duration, rate)
                        for frac, rate in FIG6_SCHEDULE]
        loadgen.schedule(schedule)

    source.start(at=0.0, until=duration)
    net.run(until=duration)

    return AudioExperimentResult(
        seed=seed,
        adaptation=adaptation,
        duration=duration,
        bandwidth_series=wire.series(),
        silent_periods=len(client.silent_periods),
        frames_sent=source.frames_sent,
        frames_received=client.frames_received,
        quality_fractions={fmt: client.quality_fraction(fmt)
                           for fmt in (FMT_STEREO16, FMT_MONO16,
                                       FMT_MONO8)},
        restored=client.restored,
        segment_drops=segment.stats.packets_dropped,
        metrics=net.metrics_snapshot())


class GapSweepResult(LegacyResult):
    """Unified result of the figure 7 sweep.  ``figures["sweep"]`` maps
    ``str(offered bps)`` to the with/without silent-period and frame
    counts."""

    _EXPERIMENT = "audio_gap_sweep"

    def level(self, load_bps: float) -> dict[str, int]:
        return self.figures["sweep"][str(load_bps)]


@keyword_only("load_levels_bps")
def run_gap_sweep(*, load_levels_bps: list[float],
                  duration: float = 60.0, backend: str = "closure",
                  seed: int = 7) -> dict[float, dict[str, int]]:
    """The figure 7 sweep: silent periods with and without adaptation
    across segment load levels."""
    results: dict[float, dict[str, int]] = {}
    for load in load_levels_bps:
        with_adapt = run_audio_experiment(
            adaptation=True, duration=duration, constant_load_bps=load,
            backend=backend, seed=seed)
        without = run_audio_experiment(
            adaptation=False, duration=duration, constant_load_bps=load,
            backend=backend, seed=seed)
        results[load] = {
            "with_adaptation": with_adapt.silent_periods,
            "without_adaptation": without.silent_periods,
            "with_frames": with_adapt.frames_received,
            "without_frames": without.frames_received,
        }
    return results
