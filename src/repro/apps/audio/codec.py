"""Audio frame formats shared by the source, the client and the tests.

A frame datagram is ``[fmt:1][seq:4 BE][pcm bytes]`` (see
:mod:`repro.asps.audio`).  PCM is signed 16-bit little-endian,
interleaved stereo at format 0; the quality ladder halves the byte rate
at each step, giving the paper's 176 / 88 / 44 kbit/s levels:

======  ================  ==========================
format  encoding          payload bytes per sample
======  ================  ==========================
0       16-bit stereo     4
1       16-bit monaural   2
2       8-bit monaural    1
======  ================  ==========================
"""

from __future__ import annotations

import numpy as np

from ...asps.audio import (FMT_MONO16, FMT_MONO8, FMT_STEREO16,
                           FRAME_HEADER_BYTES)

#: Sample rate chosen so 16-bit stereo consumes the paper's 176 kbit/s.
DEFAULT_SAMPLE_RATE = 5500
DEFAULT_FRAME_MS = 20

FORMAT_NAMES = {FMT_STEREO16: "16-bit stereo",
                FMT_MONO16: "16-bit mono",
                FMT_MONO8: "8-bit mono"}

#: payload bytes per sample period for each format
BYTES_PER_SAMPLE = {FMT_STEREO16: 4, FMT_MONO16: 2, FMT_MONO8: 1}


def samples_per_frame(sample_rate: int = DEFAULT_SAMPLE_RATE,
                      frame_ms: int = DEFAULT_FRAME_MS) -> int:
    return sample_rate * frame_ms // 1000


def generate_pcm_stereo16(seq: int, n_samples: int,
                          tone_hz: float = 440.0,
                          sample_rate: int = DEFAULT_SAMPLE_RATE) -> bytes:
    """A deterministic stereo sine frame (the 'CD audio' stand-in)."""
    t0 = seq * n_samples
    t = (np.arange(t0, t0 + n_samples) / sample_rate)
    left = (np.sin(2 * np.pi * tone_hz * t) * 12000).astype("<i2")
    right = (np.sin(2 * np.pi * tone_hz * 1.5 * t) * 12000).astype("<i2")
    return np.column_stack([left, right]).astype("<i2").tobytes()


def encode_frame(fmt: int, seq: int, pcm: bytes) -> bytes:
    if fmt not in BYTES_PER_SAMPLE:
        raise ValueError(f"unknown audio format {fmt}")
    return bytes([fmt]) + seq.to_bytes(4, "big") + pcm


def decode_frame(payload: bytes) -> tuple[int, int, bytes]:
    """Returns (fmt, seq, pcm); raises ValueError on a short frame."""
    if len(payload) < FRAME_HEADER_BYTES:
        raise ValueError(f"short audio frame ({len(payload)} bytes)")
    fmt = payload[0]
    seq = int.from_bytes(payload[1:5], "big")
    return fmt, seq, payload[FRAME_HEADER_BYTES:]


def degrade(pcm: bytes, from_fmt: int, to_fmt: int) -> bytes:
    """Reference implementation of the router ASP's transform chain."""
    if to_fmt <= from_fmt:
        return pcm
    data = pcm
    if from_fmt == FMT_STEREO16 and to_fmt >= FMT_MONO16:
        samples = np.frombuffer(data, dtype="<i2").reshape(-1, 2)
        data = (samples.astype(np.int32).sum(axis=1) // 2) \
            .astype("<i2").tobytes()
    if to_fmt == FMT_MONO8:
        samples = np.frombuffer(data, dtype="<i2")
        data = ((samples.astype(np.int32) >> 8) + 128) \
            .astype(np.uint8).tobytes()
    return data


def restore_to_stereo16(pcm: bytes, fmt: int) -> bytes:
    """Reference implementation of the client ASP's restoration chain."""
    data = pcm
    if fmt == FMT_MONO8:
        samples = np.frombuffer(data, dtype=np.uint8)
        data = ((samples.astype(np.int32) - 128) << 8) \
            .astype("<i2").tobytes()
        fmt = FMT_MONO16
    if fmt == FMT_MONO16:
        samples = np.frombuffer(data, dtype="<i2")
        data = np.repeat(samples, 2).astype("<i2").tobytes()
    return data


def frame_kbps(fmt: int, sample_rate: int = DEFAULT_SAMPLE_RATE) -> float:
    """Nominal payload bandwidth of a format, in kbit/s."""
    return sample_rate * BYTES_PER_SAMPLE[fmt] * 8 / 1000
