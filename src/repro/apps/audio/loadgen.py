"""The load generator of figure 5.

Sends UDP filler traffic onto the client segment at a scheduled rate,
crowding the shared medium so the router's adaptation has something to
adapt to.  Rates change at schedule breakpoints, which is how the
experiment reproduces figure 6's step loads at 100 s / 220 s / 340 s.
"""

from __future__ import annotations

from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.topology import Network

#: UDP discard port the filler traffic targets.
DISCARD_PORT = 9


class LoadGenerator:
    """Constant-bit-rate filler with a rate schedule."""

    def __init__(self, net: Network, host: Host, sink: HostAddr,
                 packet_bytes: int = 1000, tick_s: float = 0.01):
        self.net = net
        self.host = host
        self.sink = sink
        self.packet_bytes = packet_bytes
        self.tick_s = tick_s
        self.rate_bps = 0.0
        self.packets_sent = 0
        self._carry = 0.0
        self._socket = net.udp(host).bind()
        self._payload = bytes(packet_bytes)
        net.sim.every(tick_s, self._tick)

    def set_rate(self, rate_bps: float) -> None:
        self.rate_bps = max(0.0, rate_bps)

    def schedule(self, steps: list[tuple[float, float]]) -> None:
        """Apply ``(at_seconds, rate_bps)`` steps."""
        for at, rate in steps:
            self.net.sim.at(at, lambda r=rate: self.set_rate(r))

    def _tick(self) -> None:
        if self.rate_bps <= 0:
            self._carry = 0.0
            return
        self._carry += self.rate_bps * self.tick_s / 8
        while self._carry >= self.packet_bytes:
            self._socket.sendto(self.sink, DISCARD_PORT, self._payload)
            self.packets_sent += 1
            self._carry -= self.packet_bytes
