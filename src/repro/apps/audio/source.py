"""The audio broadcasting application (unmodified by adaptation).

"A simple utility that broadcasts CD quality audio ... using IP
multicast" — a periodic frame clock pushing 16-bit stereo datagrams to a
multicast group.  It knows nothing about the router ASP.
"""

from __future__ import annotations

from ...asps.audio import AUDIO_PORT, FMT_STEREO16
from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.sim import PeriodicTask
from ...net.topology import Network
from .codec import (DEFAULT_FRAME_MS, DEFAULT_SAMPLE_RATE, encode_frame,
                    generate_pcm_stereo16, samples_per_frame)


class AudioSource:
    """Broadcasts an audio stream to a multicast group."""

    def __init__(self, net: Network, host: Host, group: HostAddr,
                 port: int = AUDIO_PORT,
                 sample_rate: int = DEFAULT_SAMPLE_RATE,
                 frame_ms: int = DEFAULT_FRAME_MS):
        self.net = net
        self.host = host
        self.group = group
        self.port = port
        self.sample_rate = sample_rate
        self.frame_interval = frame_ms / 1000.0
        self.samples = samples_per_frame(sample_rate, frame_ms)
        self.frames_sent = 0
        self._socket = net.udp(host).bind(port)
        self._task: PeriodicTask | None = None

    def start(self, at: float = 0.0, until: float | None = None) -> None:
        self._task = self.net.sim.every(self.frame_interval, self._tick,
                                        start=at, until=until)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _tick(self) -> None:
        pcm = generate_pcm_stereo16(self.frames_sent, self.samples,
                                    sample_rate=self.sample_rate)
        payload = encode_frame(FMT_STEREO16, self.frames_sent, pcm)
        self._socket.sendto(self.group, self.port, payload)
        self.frames_sent += 1
