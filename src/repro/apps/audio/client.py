"""The audio playback client (unmodified by adaptation).

Receives frame datagrams, tracks the received bandwidth and quality over
time, and detects *silent periods* — the playback gaps of the paper's
figure 7.  A gap opens when the next frame misses its playout deadline
(loss or delay) and closes when audio resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...asps.audio import AUDIO_PORT, FMT_STEREO16
from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.topology import Network
from .codec import DEFAULT_FRAME_MS, decode_frame


@dataclass
class SilentPeriod:
    start: float
    end: float
    frames_missed: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class BandwidthSample:
    """Received audio payload rate over one bucket."""

    time: float
    kbps: float
    quality: int  # dominant format in the bucket
    formats: dict[int, int] = field(default_factory=dict)  # fmt -> frames


class AudioClient:
    """Joins the group and consumes the stream."""

    def __init__(self, net: Network, host: Host, group: HostAddr,
                 port: int = AUDIO_PORT,
                 frame_ms: int = DEFAULT_FRAME_MS,
                 gap_factor: float = 3.0,
                 bucket_s: float = 1.0):
        self.net = net
        self.host = host
        host.join_group(group)
        self.frame_interval = frame_ms / 1000.0
        self.gap_threshold = gap_factor * self.frame_interval
        self.bucket_s = bucket_s

        self.frames_received = 0
        self.bad_frames = 0
        self.last_seq: int | None = None
        self.last_arrival: float | None = None
        self.silent_periods: list[SilentPeriod] = []
        self.quality_seen: dict[int, int] = {}
        self._buckets: dict[int, tuple[int, dict[int, int]]] = {}

        socket = net.udp(host).bind(port)
        socket.on_datagram = self._on_frame

    # -- reception ---------------------------------------------------------------

    def _on_frame(self, payload: bytes, src: HostAddr,
                  src_port: int) -> None:
        now = self.net.sim.now
        try:
            fmt, seq, pcm = decode_frame(payload)
        except ValueError:
            self.bad_frames += 1
            return
        self._check_gap(now, seq)
        self.frames_received += 1
        self.quality_seen[fmt] = self.quality_seen.get(fmt, 0) + 1
        bucket = int(now / self.bucket_s)
        nbytes, fmts = self._buckets.get(bucket, (0, {}))
        fmts[fmt] = fmts.get(fmt, 0) + 1
        self._buckets[bucket] = (nbytes + len(payload), fmts)
        self.last_seq = seq
        self.last_arrival = now

    def _check_gap(self, now: float, seq: int) -> None:
        if self.last_arrival is None:
            return
        elapsed = now - self.last_arrival
        missed = (seq - self.last_seq - 1) if self.last_seq is not None \
            else 0
        if elapsed > self.gap_threshold or missed > 1:
            self.silent_periods.append(SilentPeriod(
                start=self.last_arrival, end=now,
                frames_missed=max(missed, 0)))

    # -- reporting ----------------------------------------------------------------

    def bandwidth_series(self) -> list[BandwidthSample]:
        """Received-bandwidth samples (the series of figure 6)."""
        samples = []
        for bucket in sorted(self._buckets):
            nbytes, fmts = self._buckets[bucket]
            dominant = max(fmts.items(), key=lambda kv: kv[1])[0]
            samples.append(BandwidthSample(
                time=bucket * self.bucket_s,
                kbps=nbytes * 8 / self.bucket_s / 1000,
                quality=dominant, formats=dict(fmts)))
        return samples

    def quality_fraction(self, fmt: int) -> float:
        if not self.frames_received:
            return 0.0
        return self.quality_seen.get(fmt, 0) / self.frames_received

    @property
    def restored(self) -> bool:
        """True if every received frame was 16-bit stereo — i.e. the
        client ASP restored all degraded frames before delivery."""
        return set(self.quality_seen) <= {FMT_STEREO16}
