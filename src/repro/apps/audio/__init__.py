"""Audio broadcasting with router bandwidth adaptation (paper 3.1)."""

from .client import AudioClient, BandwidthSample, SilentPeriod
from .codec import (decode_frame, degrade, encode_frame, frame_kbps,
                    generate_pcm_stereo16, restore_to_stereo16,
                    samples_per_frame)
from .experiment import (AUDIO_GROUP, FIG6_SCHEDULE, AudioExperimentResult,
                         GapSweepResult, run_audio_experiment,
                         run_gap_sweep)
from .loadgen import LoadGenerator
from .source import AudioSource

__all__ = [
    "AUDIO_GROUP",
    "FIG6_SCHEDULE",
    "AudioClient",
    "AudioExperimentResult",
    "AudioSource",
    "BandwidthSample",
    "GapSweepResult",
    "LoadGenerator",
    "SilentPeriod",
    "decode_frame",
    "degrade",
    "encode_frame",
    "frame_kbps",
    "generate_pcm_stereo16",
    "restore_to_stereo16",
    "run_audio_experiment",
    "run_gap_sweep",
    "samples_per_frame",
]
