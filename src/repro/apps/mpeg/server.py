"""The point-to-point MPEG video server (never modified, paper §3.3).

Control protocol over TCP (``MPEG_CTRL_PORT``):

* client sends ``PLAY <file> <udp_port>\\n``;
* server answers with the stream's setup line and starts unicasting
  video chunks to the client's address and UDP port.

Each PLAY gets its *own* unicast stream — the server is strictly
point-to-point; sharing happens entirely in the network, through the
monitor and capture ASPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...asps.mpeg import MPEG_CTRL_PORT
from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.sim import PeriodicTask
from ...net.tcp import TcpConnection
from ...net.topology import Network
from .stream import MpegStream, fragment_frame

#: UDP source port of the server's video traffic.
VIDEO_SRC_PORT = 8001


@dataclass
class _Session:
    """One unicast delivery of a live stream."""

    stream: MpegStream
    client: HostAddr
    port: int
    frames_sent: int = 0
    bytes_sent: int = 0


class MpegServer:
    """Serves live streams to point-to-point clients."""

    def __init__(self, net: Network, host: Host,
                 streams: dict[str, MpegStream], *,
                 ctrl_port: int = MPEG_CTRL_PORT):
        self.net = net
        self.host = host
        self.streams = dict(streams)
        self.ctrl_port = ctrl_port
        self.sessions: list[_Session] = []
        self.play_requests = 0
        self.errors = 0
        #: live frame clocks, one per actively-streamed file
        self._clocks: dict[str, PeriodicTask] = {}
        self._frame_no: dict[str, int] = {}
        self._buffers: dict[int, bytearray] = {}
        self._socket = net.udp(host).bind(VIDEO_SRC_PORT)
        net.tcp(host).listen(ctrl_port, self._on_accept)

    # -- control plane ----------------------------------------------------------

    def _on_accept(self, conn: TcpConnection) -> None:
        self._buffers[id(conn)] = bytearray()
        conn.on_data = self._on_data
        conn.on_close = lambda c: self._buffers.pop(id(c), None)

    def _on_data(self, conn: TcpConnection, data: bytes) -> None:
        buffer = self._buffers.setdefault(id(conn), bytearray())
        buffer.extend(data)
        if b"\n" not in buffer:
            return
        line, _, rest = bytes(buffer).partition(b"\n")
        self._buffers[id(conn)] = bytearray(rest)
        self._handle_request(conn, line.decode("latin-1").strip())

    def _handle_request(self, conn: TcpConnection, line: str) -> None:
        parts = line.split(" ")
        if len(parts) != 3 or parts[0] != "PLAY":
            self.errors += 1
            conn.send(b"ERROR bad request\n")
            conn.close()
            return
        _, name, port_text = parts
        stream = self.streams.get(name)
        if stream is None:
            self.errors += 1
            conn.send(f"ERROR no such stream {name}\n".encode("latin-1"))
            conn.close()
            return
        self.play_requests += 1
        session = _Session(stream=stream, client=conn.remote_addr,
                           port=int(port_text))
        self.sessions.append(session)
        conn.send((stream.setup_line() + "\n").encode("latin-1"))
        conn.close()
        self._ensure_clock(stream)

    # -- data plane -----------------------------------------------------------------

    def _ensure_clock(self, stream: MpegStream) -> None:
        if stream.name in self._clocks:
            return
        self._frame_no.setdefault(stream.name, 0)
        self._clocks[stream.name] = self.net.sim.every(
            1.0 / stream.fps, lambda: self._tick(stream))

    def _tick(self, stream: MpegStream) -> None:
        frame_no = self._frame_no[stream.name]
        self._frame_no[stream.name] = frame_no + 1
        targets = [s for s in self.sessions
                   if s.stream.name == stream.name]
        if not targets:
            return
        chunks = fragment_frame(frame_no, stream.frame_type(frame_no),
                                stream.frame_size(frame_no))
        for session in targets:
            for chunk in chunks:
                self._socket.sendto(session.client, session.port, chunk)
                session.bytes_sent += len(chunk)
            session.frames_sent += 1

    def stop(self) -> None:
        for clock in self._clocks.values():
            clock.stop()
        self._clocks.clear()

    @property
    def total_video_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.sessions)
