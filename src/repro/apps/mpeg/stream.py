"""The MPEG-1 stream model.

A live stream has a GOP (group-of-pictures) pattern of I/P/B frames with
characteristic relative sizes; frame sizes are scaled so the stream
averages its target bit rate.  Frames larger than the MTU budget are
fragmented into chunks with a small reassembly header:

    bytes 0..3   frame number (big-endian)
    bytes 4..5   chunk index
    bytes 6..7   chunk count
    byte  8      frame type (``I``/``P``/``B``)
    bytes 9..    frame data
"""

from __future__ import annotations

from dataclasses import dataclass, field

CHUNK_HEADER_BYTES = 9
MAX_CHUNK_DATA = 1400

#: Relative frame sizes, loosely MPEG-1-shaped.
TYPE_WEIGHTS = {"I": 5.0, "P": 1.6, "B": 0.6}


@dataclass(frozen=True)
class MpegStream:
    """Static description of one live video stream."""

    name: str
    width: int = 352
    height: int = 240
    fps: int = 24
    gop: str = "IBBPBBPBB"
    bitrate_bps: int = 1_200_000

    def __post_init__(self) -> None:
        if not self.gop or set(self.gop) - set("IPB"):
            raise ValueError(f"malformed GOP pattern {self.gop!r}")

    @property
    def mean_frame_bytes(self) -> float:
        return self.bitrate_bps / 8 / self.fps

    def frame_type(self, frame_no: int) -> str:
        return self.gop[frame_no % len(self.gop)]

    def frame_size(self, frame_no: int) -> int:
        """Deterministic size of frame ``frame_no`` in bytes."""
        weights = [TYPE_WEIGHTS[t] for t in self.gop]
        mean_weight = sum(weights) / len(weights)
        weight = TYPE_WEIGHTS[self.frame_type(frame_no)]
        return max(64, int(self.mean_frame_bytes * weight / mean_weight))

    def setup_line(self) -> str:
        """The server's stream-description response ("SETUP ...")."""
        return (f"SETUP {self.name} {self.width} {self.height} "
                f"{self.fps} {self.gop}")

    @classmethod
    def parse_setup(cls, line: str) -> "MpegStream":
        parts = line.strip().split(" ")
        if len(parts) != 6 or parts[0] != "SETUP":
            raise ValueError(f"malformed setup line {line!r}")
        return cls(name=parts[1], width=int(parts[2]),
                   height=int(parts[3]), fps=int(parts[4]), gop=parts[5])


def fragment_frame(frame_no: int, frame_type: str,
                   size: int) -> list[bytes]:
    """Split one frame into wire chunks (synthetic frame data)."""
    n_chunks = max(1, (size + MAX_CHUNK_DATA - 1) // MAX_CHUNK_DATA)
    chunks = []
    remaining = size
    for idx in range(n_chunks):
        data_len = min(MAX_CHUNK_DATA, remaining)
        remaining -= data_len
        header = (frame_no.to_bytes(4, "big")
                  + idx.to_bytes(2, "big")
                  + n_chunks.to_bytes(2, "big")
                  + frame_type.encode("latin-1"))
        chunks.append(header + bytes(data_len))
    return chunks


def parse_chunk(payload: bytes) -> tuple[int, int, int, str, int]:
    """Returns (frame_no, chunk_idx, n_chunks, frame_type, data_len)."""
    if len(payload) < CHUNK_HEADER_BYTES:
        raise ValueError(f"short video chunk ({len(payload)} bytes)")
    frame_no = int.from_bytes(payload[0:4], "big")
    chunk_idx = int.from_bytes(payload[4:6], "big")
    n_chunks = int.from_bytes(payload[6:8], "big")
    frame_type = payload[8:9].decode("latin-1")
    return (frame_no, chunk_idx, n_chunks, frame_type,
            len(payload) - CHUNK_HEADER_BYTES)


class FrameAssembler:
    """Reassembles frames from chunks at the client."""

    def __init__(self):
        self._pending: dict[int, set[int]] = {}
        self._expected: dict[int, int] = {}
        self.frames_completed: list[tuple[int, str, float]] = []
        self.bytes_received = 0

    def add_chunk(self, payload: bytes, now: float) -> bool:
        """Feed one chunk; returns True when it completes a frame."""
        frame_no, chunk_idx, n_chunks, frame_type, data_len = \
            parse_chunk(payload)
        self.bytes_received += len(payload)
        seen = self._pending.setdefault(frame_no, set())
        seen.add(chunk_idx)
        self._expected[frame_no] = n_chunks
        if len(seen) >= n_chunks:
            del self._pending[frame_no]
            del self._expected[frame_no]
            self.frames_completed.append((frame_no, frame_type, now))
            return True
        return False
