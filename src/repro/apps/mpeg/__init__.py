"""Point-to-point to multipoint MPEG delivery (paper 3.3)."""

from .client import ClientMode, MpegClient
from .experiment import MpegExperimentResult, run_mpeg_experiment
from .server import VIDEO_SRC_PORT, MpegServer
from .stream import (CHUNK_HEADER_BYTES, MAX_CHUNK_DATA, FrameAssembler,
                     MpegStream, fragment_frame, parse_chunk)

__all__ = [
    "CHUNK_HEADER_BYTES",
    "ClientMode",
    "FrameAssembler",
    "MAX_CHUNK_DATA",
    "MpegClient",
    "MpegExperimentResult",
    "MpegServer",
    "MpegStream",
    "VIDEO_SRC_PORT",
    "fragment_frame",
    "parse_chunk",
    "run_mpeg_experiment",
]
