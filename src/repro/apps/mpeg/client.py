"""The MPEG client (paper §3.3).

The only application change from a pure point-to-point player: before
connecting to the server, the client asks the monitor ASP whether the
stream is already flowing on the segment ("the client program first
makes a request to the monitor ASP to see if the request can be filled
by an existing connection").  On a HIT it registers with its local
capture ASP and receives its neighbour's stream; on a MISS (or when no
monitor is configured, or the query times out) it proceeds exactly as
the unmodified player would.
"""

from __future__ import annotations

import enum

from ...asps.mpeg import (CAPTURE_CONFIG_PORT, MONITOR_QUERY_PORT,
                          MONITOR_REPLY_PORT, MPEG_CTRL_PORT)
from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.tcp import TcpConnection
from ...net.topology import Network
from .stream import FrameAssembler, MpegStream


class ClientMode(enum.Enum):
    IDLE = "idle"
    QUERYING = "querying"
    DIRECT = "direct"        # own connection to the server
    SHARED = "shared"        # capturing a neighbour's stream
    FAILED = "failed"


class MpegClient:
    """One viewer of a live stream."""

    def __init__(self, net: Network, host: Host, server: HostAddr,
                 file_name: str, *, monitor: HostAddr | None = None,
                 video_port: int = 9000, query_timeout: float = 0.5):
        self.net = net
        self.host = host
        self.server = server
        self.file_name = file_name
        self.monitor = monitor
        self.video_port = video_port
        self.query_timeout = query_timeout

        self.mode = ClientMode.IDLE
        self.setup: MpegStream | None = None
        self.assembler = FrameAssembler()
        self.queries_sent = 0
        self.hits = 0
        self._ctrl_buffer = bytearray()
        self._video_socket = None
        self._query_socket = None
        self._timeout_handle = None

    # -- startup -----------------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        self.net.sim.at(at, self._begin)

    def _begin(self) -> None:
        if self.monitor is not None:
            self._query_monitor()
        else:
            self._connect_direct()

    # -- the monitor query path ---------------------------------------------------

    def _query_monitor(self) -> None:
        self.mode = ClientMode.QUERYING
        udp = self.net.udp(self.host)
        self._query_socket = udp.bind(MONITOR_REPLY_PORT)
        self._query_socket.on_datagram = self._on_monitor_reply
        query = udp.bind()
        query.sendto(self.monitor, MONITOR_QUERY_PORT,
                     f"QRY {self.file_name}".encode("latin-1"))
        self.queries_sent += 1
        self._timeout_handle = self.net.sim.schedule(
            self.query_timeout, self._on_query_timeout)

    def _on_query_timeout(self) -> None:
        if self.mode is ClientMode.QUERYING:
            self._connect_direct()

    def _on_monitor_reply(self, payload: bytes, src: HostAddr,
                          src_port: int) -> None:
        if self.mode is not ClientMode.QUERYING:
            return
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
        text = payload.decode("latin-1")
        if not text.startswith("HIT "):
            self._connect_direct()
            return
        try:
            header, _, setup_line = text.partition("\n")
            _hit, addr_text, port_text = header.split(" ")
            target_addr = HostAddr.parse(addr_text)
            target_port = int(port_text)
            self.setup = MpegStream.parse_setup(setup_line)
        except (ValueError, IndexError):
            self._connect_direct()
            return
        self.hits += 1
        self._start_capture(target_addr, target_port)

    def _start_capture(self, addr: HostAddr, port: int) -> None:
        """Register the (addr, port) pair with the local capture ASP and
        listen on the *original* port number locally."""
        self.mode = ClientMode.SHARED
        self._listen_video(port)
        config = self.net.udp(self.host).bind()
        payload = addr.value.to_bytes(4, "big") + port.to_bytes(4, "big")
        config.sendto(self.host.address, CAPTURE_CONFIG_PORT, payload)

    # -- the direct (unmodified player) path -------------------------------------------

    def _connect_direct(self) -> None:
        self.mode = ClientMode.DIRECT
        self._listen_video(self.video_port)
        conn = self.net.tcp(self.host).connect(self.server,
                                               MPEG_CTRL_PORT)
        conn.on_connected = self._send_play
        conn.on_data = self._on_ctrl_data
        conn.on_fail = lambda c: self._fail()

    def _send_play(self, conn: TcpConnection) -> None:
        conn.send(f"PLAY {self.file_name} {self.video_port}\n"
                  .encode("latin-1"))

    def _on_ctrl_data(self, conn: TcpConnection, data: bytes) -> None:
        self._ctrl_buffer.extend(data)
        if b"\n" not in self._ctrl_buffer:
            return
        line, _, _ = bytes(self._ctrl_buffer).partition(b"\n")
        text = line.decode("latin-1")
        if text.startswith("SETUP "):
            try:
                self.setup = MpegStream.parse_setup(text)
            except ValueError:
                self._fail()
        else:
            self._fail()

    def _fail(self) -> None:
        self.mode = ClientMode.FAILED

    # -- video reception -------------------------------------------------------------------

    def _listen_video(self, port: int) -> None:
        socket = self.net.udp(self.host).bind(port)
        socket.on_datagram = self._on_video
        self._video_socket = socket

    def _on_video(self, payload: bytes, src: HostAddr,
                  src_port: int) -> None:
        try:
            self.assembler.add_chunk(payload, self.net.sim.now)
        except ValueError:
            pass

    # -- reporting ------------------------------------------------------------------------

    @property
    def frames_received(self) -> int:
        return len(self.assembler.frames_completed)

    def frame_rate(self, window: tuple[float, float]) -> float:
        start, end = window
        count = sum(1 for _no, _t, at in self.assembler.frames_completed
                    if start <= at < end)
        return count / (end - start) if end > start else 0.0
