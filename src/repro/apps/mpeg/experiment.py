"""The point-to-point→multipoint MPEG experiment (paper §3.3).

Topology: the video server behind a router; a monitor machine and the
clients share one segment.  With the ASPs deployed, the first client
opens the only real server connection; later clients discover it via
the monitor and capture the stream off the segment.  Without ASPs every
client opens its own connection, multiplying the server's egress — the
experiment's headline is that sharing costs no traffic-rate degradation
while cutting upstream traffic to one stream.
"""

from __future__ import annotations

from typing import Callable

from ...asps.mpeg import mpeg_client_asp, mpeg_monitor_asp
from ...experiments.result import LegacyResult
from ...net.topology import Network
from ...obs import Observability
from ...runtime.deployment import Deployment
from ...runtime.planp_layer import PlanPLayer
from .client import ClientMode, MpegClient
from .server import MpegServer
from .stream import MpegStream


class MpegExperimentResult(LegacyResult):
    """Unified result of the §3.3 multipoint run.

    ``params``: ``use_asps``, ``n_clients``, ``duration``; ``figures``:
    ``server_sessions``, ``server_video_bytes``, ``uplink_bytes``,
    ``per_client_frames``, ``per_client_rate``, ``modes``,
    ``nominal_fps``.  Flat legacy attribute access keeps working for
    one release.
    """

    _EXPERIMENT = "mpeg"
    _PARAM_FIELDS = ("use_asps", "n_clients", "duration")

    @property
    def all_clients_at_full_rate(self) -> bool:
        """No traffic-rate degradation: every client receives (almost)
        the nominal frame rate."""
        return all(rate >= 0.9 * self.nominal_fps
                   for rate in self.per_client_rate)


def run_mpeg_experiment(*, use_asps: bool = True, n_clients: int = 3,
                        duration: float = 20.0, warmup: float = 5.0,
                        bitrate_bps: int = 1_200_000,
                        backend: str = "closure",
                        seed: int = 23,
                        obs: Observability | None = None,
                        tracer: Callable[[Network], object]
                        | None = None) -> MpegExperimentResult:
    """Run the §3.3 scenario with ``n_clients`` viewers of one stream."""
    net = Network(seed=seed, obs=obs)
    server_host = net.add_host("video-server")
    router = net.add_router("router")
    monitor_host = net.add_host("monitor")
    client_hosts = [net.add_host(f"viewer{i}") for i in range(n_clients)]

    uplink = net.link(server_host, router, bandwidth=100e6,
                      latency=0.0005)
    segment = net.segment("viewer-lan", bandwidth=10e6, latency=0.0002,
                          queue_limit=256)
    net.attach(router, segment)
    net.attach(monitor_host, segment)
    for host in client_hosts:
        net.attach(host, segment)
    net.finalize()
    if tracer is not None:
        tracer(net)

    stream = MpegStream(name="concert.mpg", bitrate_bps=bitrate_bps)
    server = MpegServer(net, server_host, {stream.name: stream})

    monitor_addr = None
    if use_asps:
        deployment = Deployment()
        # The monitor and capture layers listen promiscuously.
        PlanPLayer(monitor_host, promiscuous=True)
        for host in client_hosts:
            PlanPLayer(host, promiscuous=True)
        deployment.install(mpeg_monitor_asp(), [monitor_host],
                           backend=backend, source_name="mpeg-monitor")
        deployment.install(mpeg_client_asp(), client_hosts,
                           backend=backend, source_name="mpeg-client")
        monitor_addr = monitor_host.address

    clients = []
    for i, host in enumerate(client_hosts):
        client = MpegClient(net, host, server_host.address, stream.name,
                            monitor=monitor_addr,
                            video_port=9000 + i)
        client.start(at=0.5 + 1.5 * i)
        clients.append(client)

    net.run(until=duration)
    server.stop()

    window = (warmup + 1.5 * n_clients, duration)
    uplink_tx = uplink.tx_queue(uplink.interfaces[0])
    return MpegExperimentResult(
        seed=seed,
        use_asps=use_asps,
        n_clients=n_clients,
        duration=duration,
        server_sessions=len(server.sessions),
        server_video_bytes=server.total_video_bytes,
        uplink_bytes=uplink_tx.stats.bytes_sent,
        per_client_frames=[c.frames_received for c in clients],
        per_client_rate=[c.frame_rate(window) for c in clients],
        modes=[c.mode.value for c in clients],
        nominal_fps=stream.fps,
        metrics=net.metrics_snapshot())
