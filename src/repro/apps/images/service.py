"""Image fetch service: server, client and the distillation experiment.

The (unmodified) application is a trivial datagram image service:
``GET <name>`` to the server's UDP port returns the image blob, or
``ERR <name>``.  The distiller ASP sits on the router between the fast
server network and the client's slow access link (paper §5's
"adaptation of data traffic such as images ... over low bandwidth
networks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...asps.images import IMAGE_PORT, image_distiller_asp
from ...experiments.result import LegacyResult
from ...interp.image_prims import decode_image
from ...lang.errors import PlanPError
from ...net.addresses import HostAddr
from ...net.node import Host
from ...net.topology import Network
from ...obs import Observability
from ...runtime.deployment import Deployment
from .library import build_library


class ImageServer:
    """Serves SIMG blobs over UDP."""

    def __init__(self, net: Network, host: Host,
                 images: dict[str, bytes] | None = None,
                 port: int = IMAGE_PORT):
        self.net = net
        self.host = host
        self.images = images if images is not None else build_library()
        self.port = port
        self.requests = 0
        self.errors = 0
        socket = net.udp(host).bind(port)
        socket.on_datagram = self._on_request
        self._socket = socket

    def _on_request(self, payload: bytes, src: HostAddr,
                    src_port: int) -> None:
        text = payload.decode("latin-1", errors="replace")
        if not text.startswith("GET "):
            self.errors += 1
            return
        name = text[4:].strip()
        self.requests += 1
        blob = self.images.get(name)
        if blob is None:
            self.errors += 1
            self._socket.sendto(src, src_port,
                                f"ERR {name}".encode("latin-1"))
            return
        self._socket.sendto(src, src_port, blob)


@dataclass
class FetchResult:
    name: str
    requested_at: float
    completed_at: float
    original_bytes: int
    received_bytes: int
    width: int
    height: int

    @property
    def latency(self) -> float:
        return self.completed_at - self.requested_at

    @property
    def distilled(self) -> bool:
        return self.received_bytes < self.original_bytes


class ImageClient:
    """Fetches images and records latency and fidelity."""

    def __init__(self, net: Network, host: Host, server: HostAddr,
                 originals: dict[str, bytes], port: int = IMAGE_PORT):
        self.net = net
        self.host = host
        self.server = server
        self.port = port
        self.originals = originals
        self.results: list[FetchResult] = []
        self.failures = 0
        self._socket = net.udp(host).bind()
        self._socket.on_datagram = self._on_reply
        self._pending: list[tuple[str, float]] = []

    def fetch(self, name: str, at: float = 0.0) -> None:
        def send() -> None:
            self._pending.append((name, self.net.sim.now))
            self._socket.sendto(self.server, self.port,
                                f"GET {name}".encode("latin-1"))

        self.net.sim.at(at, send)

    def _on_reply(self, payload: bytes, src: HostAddr,
                  src_port: int) -> None:
        if not self._pending:
            return
        name, requested_at = self._pending.pop(0)
        if payload.startswith(b"ERR"):
            self.failures += 1
            return
        try:
            pixels, _bits = decode_image(payload)
        except PlanPError as err:
            # A corrupt blob, not a programming error: decode_image
            # raises PlanPRuntimeError on malformed SIMG data, and only
            # that is survivable here.  Anything else should crash the
            # experiment loudly.
            self.failures += 1
            self.net.obs.metrics.counter("images.errors_total").inc()
            self.net.obs.events.emit("error", node=self.host.name,
                                     where="image-client", image=name,
                                     detail=str(err))
            return
        self.results.append(FetchResult(
            name=name, requested_at=requested_at,
            completed_at=self.net.sim.now,
            original_bytes=len(self.originals[name]),
            received_bytes=len(payload),
            width=pixels.shape[1], height=pixels.shape[0]))


class ImageExperimentResult(LegacyResult):
    """Unified result of the §5 distillation run.  ``params``:
    ``distillation``, ``slow_kbps``; ``figures``: ``fetches`` (list of
    :class:`FetchResult`), ``distilled_count``.  Flat legacy attribute
    access keeps working for one release."""

    _EXPERIMENT = "images"
    _PARAM_FIELDS = ("distillation", "slow_kbps")

    def _rehydrate(self) -> None:
        fetches = self.figures.get("fetches")
        if fetches and isinstance(fetches[0], dict):
            self.figures["fetches"] = [FetchResult(**f) for f in fetches]

    def mean_latency(self) -> float:
        if not self.fetches:
            return 0.0
        return sum(f.latency for f in self.fetches) / len(self.fetches)

    def result_for(self, name: str) -> FetchResult:
        return next(f for f in self.fetches if f.name == name)


def run_image_experiment(*, distillation: bool = True,
                         slow_link_bps: float = 64_000,
                         budget_bytes: int = 3000,
                         quantize_bits: int = 0,
                         backend: str = "closure",
                         seed: int = 31,
                         obs: Observability | None = None,
                         tracer: Callable[[Network], object]
                         | None = None) -> ImageExperimentResult:
    """Fetch the whole catalogue over a slow access link, with or
    without the distiller ASP on the border router."""
    net = Network(seed=seed, obs=obs)
    server_host = net.add_host("image-server")
    router = net.add_router("border")
    client_host = net.add_host("mobile-client")
    net.link(server_host, router, bandwidth=10e6, latency=0.001)
    net.link(client_host, router, bandwidth=slow_link_bps, latency=0.01,
             queue_limit=256)
    net.finalize()
    if tracer is not None:
        tracer(net)

    library = build_library()
    ImageServer(net, server_host, library)
    client = ImageClient(net, client_host, server_host.address, library)

    if distillation:
        Deployment().install(
            image_distiller_asp(slow_kbps=int(slow_link_bps // 1000) + 100,
                                budget_bytes=budget_bytes,
                                quantize_bits=quantize_bits),
            [router], backend=backend, source_name="image-distiller")

    for i, name in enumerate(sorted(library)):
        client.fetch(name, at=0.1 + 3.0 * i)
    net.run(until=0.1 + 3.0 * len(library) + 10.0)

    return ImageExperimentResult(
        seed=seed,
        distillation=distillation,
        slow_kbps=int(slow_link_bps // 1000),
        fetches=client.results,
        distilled_count=sum(1 for f in client.results if f.distilled),
        metrics=net.metrics_snapshot())
