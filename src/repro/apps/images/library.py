"""Synthetic image library for the distillation experiment.

Deterministic grayscale test patterns in the SIMG format of
:mod:`repro.interp.image_prims` — gradients, checkerboards and blobs of
noise-free texture, at a spread of sizes so the distiller has something
to chew on.
"""

from __future__ import annotations

import numpy as np

from ...interp.image_prims import encode_image


def gradient(width: int, height: int) -> np.ndarray:
    x = np.linspace(0, 255, width, dtype=np.float64)
    y = np.linspace(0, 255, height, dtype=np.float64)
    return ((x[None, :] + y[:, None]) / 2).astype(np.uint8)


def checkerboard(width: int, height: int, square: int = 8) -> np.ndarray:
    yy, xx = np.mgrid[0:height, 0:width]
    return (((xx // square + yy // square) % 2) * 255).astype(np.uint8)


def rings(width: int, height: int) -> np.ndarray:
    yy, xx = np.mgrid[0:height, 0:width]
    cx, cy = width / 2, height / 2
    r = np.sqrt((xx - cx) ** 2 + (yy - cy) ** 2)
    return ((np.sin(r / 4) * 0.5 + 0.5) * 255).astype(np.uint8)


def build_library() -> dict[str, bytes]:
    """The experiment's image catalogue (name -> SIMG blob)."""
    return {
        "icon.simg": encode_image(checkerboard(32, 32, 4)),
        "photo-small.simg": encode_image(gradient(80, 60)),
        "photo-medium.simg": encode_image(rings(160, 120)),
        "photo-large.simg": encode_image(gradient(256, 192)),
        "poster.simg": encode_image(rings(320, 240)),
    }
