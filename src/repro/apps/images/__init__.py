"""Image distillation over low-bandwidth links (paper section 5)."""

from .library import build_library, checkerboard, gradient, rings
from .service import (FetchResult, ImageClient, ImageExperimentResult,
                      ImageServer, run_image_experiment)

__all__ = [
    "FetchResult",
    "ImageClient",
    "ImageExperimentResult",
    "ImageServer",
    "build_library",
    "checkerboard",
    "gradient",
    "rings",
    "run_image_experiment",
]
