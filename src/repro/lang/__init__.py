"""The PLAN-P language front end: lexer, parser, types, type checker.

Typical use::

    from repro.lang import parse, typecheck
    program = parse(source_text)
    info = typecheck(program)      # annotates the AST in place
"""

from .errors import (LexError, ParseError, PlanPError, PlanPRuntimeError,
                     SourcePos, TypeCheckError, VerificationError)
from .lexer import tokenize
from .parser import parse, parse_expr

__all__ = [
    "LexError",
    "ParseError",
    "PlanPError",
    "PlanPRuntimeError",
    "SourcePos",
    "TypeCheckError",
    "VerificationError",
    "tokenize",
    "parse",
    "parse_expr",
    "typecheck",
]


def typecheck(program):
    """Type check a parsed program (lazy import to avoid a cycle with the
    primitive registry, which lives in :mod:`repro.interp`)."""
    from .typechecker import typecheck as _typecheck

    return _typecheck(program)
