"""Token definitions for the PLAN-P lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SourcePos


class TokenKind(enum.Enum):
    """All lexical categories of PLAN-P."""

    # Literals
    INT = "int literal"
    STRING = "string literal"
    CHAR = "char literal"
    IPADDR = "ip address literal"
    IDENT = "identifier"

    # Keywords
    VAL = "val"
    FUN = "fun"
    CHANNEL = "channel"
    INITSTATE = "initstate"
    IS = "is"
    LET = "let"
    IN = "in"
    END = "end"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    TRY = "try"
    HANDLE = "handle"
    RAISE = "raise"
    TRUE = "true"
    FALSE = "false"
    NOT = "not"
    ANDALSO = "andalso"
    ORELSE = "orelse"
    MOD = "mod"
    EXCEPTION = "exception"

    # Type keywords
    TINT = "type int"
    TBOOL = "type bool"
    TSTRING = "type string"
    TCHAR = "type char"
    TUNIT = "type unit"
    THOST = "type host"
    TBLOB = "type blob"
    TIP = "type ip"
    TTCP = "type tcp"
    TUDP = "type udp"
    TPORT = "type port"
    THASHTABLE = "hash_table"
    TLIST = "list"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    STAR = "*"
    PLUS = "+"
    MINUS = "-"
    SLASH = "/"
    CARET = "^"
    EQ = "="
    NEQ = "<>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    HASH = "#"
    ARROW = "=>"
    CONS = "::"
    UNIT = "()"

    EOF = "end of input"


KEYWORDS: dict[str, TokenKind] = {
    "val": TokenKind.VAL,
    "fun": TokenKind.FUN,
    "channel": TokenKind.CHANNEL,
    "initstate": TokenKind.INITSTATE,
    "is": TokenKind.IS,
    "let": TokenKind.LET,
    "in": TokenKind.IN,
    "end": TokenKind.END,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "try": TokenKind.TRY,
    "handle": TokenKind.HANDLE,
    "raise": TokenKind.RAISE,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "not": TokenKind.NOT,
    "andalso": TokenKind.ANDALSO,
    "orelse": TokenKind.ORELSE,
    "mod": TokenKind.MOD,
    "exception": TokenKind.EXCEPTION,
    "int": TokenKind.TINT,
    "bool": TokenKind.TBOOL,
    "string": TokenKind.TSTRING,
    "char": TokenKind.TCHAR,
    "unit": TokenKind.TUNIT,
    "host": TokenKind.THOST,
    "blob": TokenKind.TBLOB,
    "ip": TokenKind.TIP,
    "tcp": TokenKind.TTCP,
    "udp": TokenKind.TUDP,
    "port": TokenKind.TPORT,
    "hash_table": TokenKind.THASHTABLE,
    "list": TokenKind.TLIST,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position.

    ``value`` holds the decoded payload for literal tokens: an ``int`` for
    INT, the unescaped text for STRING, a one-character string for CHAR,
    the dotted-quad string for IPADDR, and the identifier text for IDENT.
    """

    kind: TokenKind
    text: str
    pos: SourcePos = field(default_factory=SourcePos)
    value: object | None = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.pos}"
