"""The PLAN-P type language.

PLAN-P is monomorphic and first-order: base types for packet headers and
payloads, tuple types (``ip*tcp*blob``), and two parameterised containers
(``hash_table`` and ``list``).  Ad-hoc polymorphism lives only in the
primitive library: each primitive carries a *type rule* — a function from
argument types to a result type — mirroring the paper's description of
primitive extension ("one function performs the calculation ... the second
computes the return type of the primitive given the types of its
arguments", §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class of all PLAN-P types.  Types are immutable values."""

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)

    def __repr__(self) -> str:
        return str(self)


class _Atomic(Type):
    """A type with no parameters, printed as its keyword."""

    name = "?"

    def __str__(self) -> str:
        return self.name


class IntType(_Atomic):
    name = "int"


class BoolType(_Atomic):
    name = "bool"


class StringType(_Atomic):
    name = "string"


class CharType(_Atomic):
    name = "char"


class UnitType(_Atomic):
    name = "unit"


class HostType(_Atomic):
    """An IP host address (the paper's ``host``)."""

    name = "host"


class PortType(_Atomic):
    name = "port"


class BlobType(_Atomic):
    """An opaque packet payload."""

    name = "blob"


class IpHeaderType(_Atomic):
    """An IP packet header (the ``ip`` component of packet types)."""

    name = "ip"


class TcpHeaderType(_Atomic):
    name = "tcp"


class UdpHeaderType(_Atomic):
    name = "udp"


@dataclass(frozen=True)
class TupleType(Type):
    """A product type ``t1*t2*...*tn`` with n >= 2."""

    elems: tuple[Type, ...]

    def __post_init__(self) -> None:
        if len(self.elems) < 2:
            raise ValueError("tuple types need at least two components")

    def __str__(self) -> str:
        return "*".join(_paren(t) for t in self.elems)


@dataclass(frozen=True)
class HashTableType(Type):
    """``(t) hash_table`` — a finite map from PLAN-P keys to ``t`` values."""

    value: Type

    def __str__(self) -> str:
        return f"({self.value}) hash_table"


@dataclass(frozen=True)
class ListType(Type):
    """``(t) list`` — an immutable list of ``t`` values."""

    elem: Type

    def __str__(self) -> str:
        return f"({self.elem}) list"


class AnyType(_Atomic):
    """The wildcard type of polymorphic primitive results.

    ``mkTable(256)`` and ``listNew()`` cannot know their element type; the
    type rule returns a container over ``ANY`` and the checker accepts it
    wherever a concrete container is expected (one-way compatibility,
    checked by :func:`compatible`).  ``ANY`` never appears in user type
    annotations — it is not in the surface grammar.
    """

    name = "'a"


def _paren(t: Type) -> str:
    if isinstance(t, (TupleType, HashTableType, ListType)):
        return f"({t})"
    return str(t)


# Singleton instances; PLAN-P type expressions always denote one of these
# or a composite built from them, so identity comparison via ``==`` works.
INT = IntType()
BOOL = BoolType()
STRING = StringType()
CHAR = CharType()
UNIT = UnitType()
HOST = HostType()
PORT = PortType()
BLOB = BlobType()
IP = IpHeaderType()
TCP = TcpHeaderType()
UDP = UdpHeaderType()
ANY = AnyType()


def compatible(expected: Type, actual: Type) -> bool:
    """One-way compatibility: may a value of ``actual`` flow into a slot
    declared ``expected``?  ``ANY`` (on either side) matches anything;
    composite types match component-wise."""
    if isinstance(expected, AnyType) or isinstance(actual, AnyType):
        return True
    if isinstance(expected, TupleType) and isinstance(actual, TupleType):
        return (len(expected.elems) == len(actual.elems)
                and all(compatible(e, a)
                        for e, a in zip(expected.elems, actual.elems)))
    if isinstance(expected, HashTableType) and isinstance(actual,
                                                          HashTableType):
        return compatible(expected.value, actual.value)
    if isinstance(expected, ListType) and isinstance(actual, ListType):
        return compatible(expected.elem, actual.elem)
    return expected == actual


def is_equality_type(t: Type) -> bool:
    """Types on which ``=`` / ``<>`` (and table keys) are allowed.

    Hash tables are excluded (mutable identity), as are header types —
    programs compare header *fields*, not whole headers, mirroring the
    original PLAN equality restriction.
    """
    if isinstance(t, (HashTableType, IpHeaderType, TcpHeaderType,
                      UdpHeaderType)):
        return False
    if isinstance(t, TupleType):
        return all(is_equality_type(e) for e in t.elems)
    if isinstance(t, ListType):
        return is_equality_type(t.elem)
    if isinstance(t, AnyType):
        return True
    return True

#: Types allowed as packet-tuple components when a channel is declared with
#: the distinguished name ``network`` (it matches raw traffic, so the packet
#: type must describe real headers and payload views).
HEADER_TYPES = (IP, TCP, UDP)


def is_packet_type(t: Type) -> bool:
    """True if ``t`` is a legal channel packet type.

    A packet type is a tuple whose first component is an ``ip`` header,
    optionally followed by a transport header, followed by payload views
    (``blob`` or decoded scalar views such as ``char``/``int``/``bool``,
    used by overloaded channels as in figure 4 of the paper).
    """
    if not isinstance(t, TupleType):
        return False
    if t.elems[0] != IP:
        return False
    rest = t.elems[1:]
    if rest and rest[0] in (TCP, UDP):
        rest = rest[1:]
    allowed = (BLOB, CHAR, INT, BOOL, STRING, HOST, PORT)
    return all(e in allowed for e in rest)


def state_pair(protocol_state: Type, channel_state: Type) -> TupleType:
    """The required return type of a channel body: ``(ps_type, ss_type)``."""
    return TupleType((protocol_state, channel_state))
