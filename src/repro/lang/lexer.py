"""Hand-written lexer for PLAN-P.

PLAN-P keeps PLAN's SML-like lexical syntax:

* ``--`` starts a comment running to end of line (see figure 2 of the
  paper) and ``(* ... *)`` is a nestable block comment as in SML.
* Integer literals are decimal; an integer followed by three more dotted
  groups (``131.254.60.81``) is an IP-address literal, which the paper
  uses directly in ASP source.
* Strings use double quotes with ``\\`` escapes; characters use ``#"c"``
  as in SML — but since ``#`` also introduces tuple projection (``#1 p``),
  the lexer only treats ``#"`` as a character literal.
"""

from __future__ import annotations

from .errors import LexError, SourcePos
from .tokens import KEYWORDS, Token, TokenKind

def _is_ascii_digit(ch: str) -> bool:
    """ASCII digits only: ``str.isdigit()`` also accepts Unicode digits
    (e.g. superscripts) that ``int()`` rejects."""
    return "0" <= ch <= "9"


_STRING_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "0": "\0",
}


class Lexer:
    """Converts PLAN-P source text into a list of tokens."""

    def __init__(self, source: str):
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- Character-level helpers -------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        idx = self._pos + ahead
        if idx < len(self._src):
            return self._src[idx]
        return ""

    def _advance(self) -> str:
        ch = self._src[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _here(self) -> SourcePos:
        return SourcePos(self._line, self._col)

    def _at_end(self) -> bool:
        return self._pos >= len(self._src)

    # -- Public API ---------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Lex the whole input, returning tokens ending with EOF."""
        out: list[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    # -- Scanner ------------------------------------------------------------

    def _next_token(self) -> Token:
        self._skip_trivia()
        pos = self._here()
        if self._at_end():
            return Token(TokenKind.EOF, "", pos)

        ch = self._peek()
        if _is_ascii_digit(ch):
            return self._number(pos)
        if ch.isalpha() or ch == "_":
            return self._ident_or_keyword(pos)
        if ch == '"':
            return self._string(pos)
        if ch == "#" and self._peek(1) == '"':
            return self._char(pos)
        return self._operator(pos)

    def _skip_trivia(self) -> None:
        """Skip whitespace, line comments and nested block comments."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "(" and self._peek(1) == "*":
                self._block_comment()
            else:
                return

    def _block_comment(self) -> None:
        open_pos = self._here()
        self._advance()  # (
        self._advance()  # *
        depth = 1
        while depth > 0:
            if self._at_end():
                raise LexError("unterminated block comment", open_pos)
            if self._peek() == "(" and self._peek(1) == "*":
                self._advance()
                self._advance()
                depth += 1
            elif self._peek() == "*" and self._peek(1) == ")":
                self._advance()
                self._advance()
                depth -= 1
            else:
                self._advance()

    def _number(self, pos: SourcePos) -> Token:
        start = self._pos
        while not self._at_end() and _is_ascii_digit(self._peek()):
            self._advance()
        # An IP-address literal is four dotted decimal groups.
        if self._peek() == "." and _is_ascii_digit(self._peek(1)):
            return self._ip_address(pos, start)
        text = self._src[start:self._pos]
        return Token(TokenKind.INT, text, pos, int(text))

    def _ip_address(self, pos: SourcePos, start: int) -> Token:
        groups = 1
        while self._peek() == "." and _is_ascii_digit(self._peek(1)):
            self._advance()  # .
            while not self._at_end() and _is_ascii_digit(self._peek()):
                self._advance()
            groups += 1
        text = self._src[start:self._pos]
        if groups != 4:
            raise LexError(f"malformed IP address literal {text!r}", pos)
        if any(int(g) > 255 for g in text.split(".")):
            raise LexError(f"IP address group out of range in {text!r}", pos)
        return Token(TokenKind.IPADDR, text, pos, text)

    def _ident_or_keyword(self, pos: SourcePos) -> Token:
        start = self._pos
        while not self._at_end() and (self._peek().isalnum()
                                      or self._peek() in "_'"):
            self._advance()
        text = self._src[start:self._pos]
        kind = KEYWORDS.get(text)
        if kind is not None:
            return Token(kind, text, pos)
        return Token(TokenKind.IDENT, text, pos, text)

    def _string(self, pos: SourcePos) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated string literal", pos)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance() if not self._at_end() else ""
                if esc not in _STRING_ESCAPES:
                    raise LexError(f"bad string escape \\{esc}", pos)
                chars.append(_STRING_ESCAPES[esc])
            else:
                chars.append(ch)
        text = "".join(chars)
        return Token(TokenKind.STRING, text, pos, text)

    def _char(self, pos: SourcePos) -> Token:
        self._advance()  # '#'
        self._advance()  # opening quote
        if self._at_end():
            raise LexError("unterminated char literal", pos)
        ch = self._advance()
        if ch == "\\":
            esc = self._advance() if not self._at_end() else ""
            if esc not in _STRING_ESCAPES:
                raise LexError(f"bad char escape \\{esc}", pos)
            ch = _STRING_ESCAPES[esc]
        if self._at_end() or self._advance() != '"':
            raise LexError("unterminated char literal", pos)
        return Token(TokenKind.CHAR, ch, pos, ch)

    def _operator(self, pos: SourcePos) -> Token:
        two = self._peek() + self._peek(1)
        if two == "()":
            self._advance()
            self._advance()
            return Token(TokenKind.UNIT, "()", pos)
        two_char = {
            "<>": TokenKind.NEQ,
            "<=": TokenKind.LE,
            ">=": TokenKind.GE,
            "=>": TokenKind.ARROW,
            "::": TokenKind.CONS,
        }
        if two in two_char:
            self._advance()
            self._advance()
            return Token(two_char[two], two, pos)
        one_char = {
            "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN,
            ",": TokenKind.COMMA,
            ";": TokenKind.SEMI,
            ":": TokenKind.COLON,
            "*": TokenKind.STAR,
            "+": TokenKind.PLUS,
            "-": TokenKind.MINUS,
            "/": TokenKind.SLASH,
            "^": TokenKind.CARET,
            "=": TokenKind.EQ,
            "<": TokenKind.LT,
            ">": TokenKind.GT,
            "#": TokenKind.HASH,
        }
        ch = self._peek()
        if ch in one_char:
            self._advance()
            return Token(one_char[ch], ch, pos)
        raise LexError(f"unexpected character {ch!r}", pos)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list ending in EOF."""
    return Lexer(source).tokens()
