"""Abstract syntax for PLAN-P programs.

Nodes are plain dataclasses.  The type checker annotates every expression
node's ``ty`` field in place; downstream passes (interpreter, specializer,
analyses) require a type-checked AST and assert on ``ty``.

The AST is deliberately small — the paper's thesis is that the language's
smallness is what makes the interpreter (≈8000 lines of C) and therefore
the derived JIT easy to evolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SourcePos
from .types import Type


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all expressions."""

    pos: SourcePos = field(default_factory=SourcePos, kw_only=True)
    ty: Type | None = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class CharLit(Expr):
    value: str = "\0"


@dataclass
class UnitLit(Expr):
    pass


@dataclass
class HostLit(Expr):
    """A dotted-quad IP address literal, e.g. ``131.254.60.81``."""

    value: str = "0.0.0.0"


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    """A binary operator application.

    ``op`` is the surface operator text (``+``, ``=``, ``andalso``, ...).
    ``andalso``/``orelse`` are short-circuiting and are treated specially
    by the interpreter and all analyses.
    """

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class UnOp(Expr):
    """``not e`` or unary minus."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class If(Expr):
    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    orelse: Expr = None  # type: ignore[assignment]


@dataclass
class ValBinding:
    """One ``val x : t = e`` binding inside a ``let``."""

    name: str
    declared: Type
    value: Expr
    pos: SourcePos = field(default_factory=SourcePos)


@dataclass
class Let(Expr):
    bindings: list[ValBinding] = field(default_factory=list)
    body: Expr = None  # type: ignore[assignment]


@dataclass
class Seq(Expr):
    """``(e1; e2; ...; en)`` — evaluate all, yield the last value."""

    exprs: list[Expr] = field(default_factory=list)


@dataclass
class TupleExpr(Expr):
    """``(e1, e2, ..., en)`` with n >= 2."""

    elems: list[Expr] = field(default_factory=list)


@dataclass
class Proj(Expr):
    """``#n e`` — 1-based tuple projection, as in ML."""

    index: int = 1
    tuple_expr: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """Application of a primitive or a user-defined ``fun``.

    Calls to the emission primitives ``OnRemote`` and ``OnNeighbor`` are
    ordinary ``Call`` nodes; the analyses pattern-match on the callee name.
    """

    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Try(Expr):
    """``try e handle Exn => e'`` — exception handling.

    ``exn`` is the exception constructor name matched by the handler;
    the distinguished name ``_`` matches any exception.
    """

    body: Expr = None  # type: ignore[assignment]
    exn: str = "_"
    handler: Expr = None  # type: ignore[assignment]


@dataclass
class Raise(Expr):
    """``raise Exn`` — raise a declared exception."""

    exn: str = ""


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    declared: Type
    pos: SourcePos = field(default_factory=SourcePos)


@dataclass
class Decl:
    pos: SourcePos = field(default_factory=SourcePos, kw_only=True)


@dataclass
class ValDecl(Decl):
    """Top-level constant: ``val CmdA : int = 1``."""

    name: str = ""
    declared: Type = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class FunDecl(Decl):
    """A user-defined helper function.

    PLAN-P forbids recursion: a ``fun`` body may only call primitives and
    ``fun``s declared strictly earlier in the program.  The type checker
    enforces this, which gives local termination by construction.
    """

    name: str = ""
    params: list[Param] = field(default_factory=list)
    return_type: Type = None  # type: ignore[assignment]
    body: Expr = None  # type: ignore[assignment]


@dataclass
class ExceptionDecl(Decl):
    """``exception Name`` — declares a user exception constructor."""

    name: str = ""


@dataclass
class ChannelDecl(Decl):
    """A channel definition.

    ``channel name(ps : T1, ss : T2, p : T3) [initstate e] is body``

    The body must evaluate to ``(T1, T2)`` — the new protocol and channel
    states.  Channels named ``network`` are overloadable: several may be
    declared with distinct packet types, and incoming raw packets dispatch
    on the best-matching type (figure 4 of the paper).
    """

    name: str = ""
    params: list[Param] = field(default_factory=list)
    initstate: Expr | None = None
    body: Expr = None  # type: ignore[assignment]

    @property
    def protocol_state_type(self) -> Type:
        return self.params[0].declared

    @property
    def channel_state_type(self) -> Type:
        return self.params[1].declared

    @property
    def packet_type(self) -> Type:
        return self.params[2].declared


@dataclass
class Program:
    """A complete PLAN-P protocol: an ordered list of declarations."""

    decls: list[Decl] = field(default_factory=list)
    source_name: str = "<planp>"

    @property
    def channels(self) -> list[ChannelDecl]:
        return [d for d in self.decls if isinstance(d, ChannelDecl)]

    @property
    def functions(self) -> list[FunDecl]:
        return [d for d in self.decls if isinstance(d, FunDecl)]

    @property
    def vals(self) -> list[ValDecl]:
        return [d for d in self.decls if isinstance(d, ValDecl)]

    @property
    def exceptions(self) -> list[ExceptionDecl]:
        return [d for d in self.decls if isinstance(d, ExceptionDecl)]


# ---------------------------------------------------------------------------
# Traversal helpers shared by the analyses and the specializer
# ---------------------------------------------------------------------------


def children(expr: Expr) -> list[Expr]:
    """The direct sub-expressions of ``expr``, in evaluation order."""
    if isinstance(expr, BinOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnOp):
        return [expr.operand]
    if isinstance(expr, If):
        return [expr.cond, expr.then, expr.orelse]
    if isinstance(expr, Let):
        return [b.value for b in expr.bindings] + [expr.body]
    if isinstance(expr, Seq):
        return list(expr.exprs)
    if isinstance(expr, TupleExpr):
        return list(expr.elems)
    if isinstance(expr, Proj):
        return [expr.tuple_expr]
    if isinstance(expr, Call):
        return list(expr.args)
    if isinstance(expr, Try):
        return [expr.body, expr.handler]
    return []


def walk(expr: Expr):
    """Yield ``expr`` and every descendant expression, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(children(node)))


def calls_in(expr: Expr, names: set[str] | None = None) -> list[Call]:
    """All ``Call`` nodes under ``expr``; filtered to ``names`` if given."""
    found = [n for n in walk(expr) if isinstance(n, Call)]
    if names is None:
        return found
    return [c for c in found if c.func in names]
