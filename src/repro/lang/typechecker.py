"""Type checker for PLAN-P.

Beyond ordinary monomorphic checking, this pass enforces the language
restrictions that make the paper's safety analyses possible:

* **No recursion** — a ``fun`` body may only call primitives and functions
  declared strictly earlier; channels cannot be called as functions.
  With no loop construct in the grammar, this yields *local termination
  by construction* (paper §2.1).
* **Channel discipline** — every channel takes (protocol state, channel
  state, packet) and returns the ``(ps, ss)`` pair; ``initstate`` matches
  the channel-state type.
* **Overloaded channels** — multiple ``network`` channels are allowed if
  their packet types differ (paper §2.3, figure 4); other channel names
  must be unique.
* **Emission syntax** — ``OnRemote(chan, pkt)`` / ``OnNeighbor(chan, pkt,
  host)`` require ``chan`` to name a channel whose packet type admits
  ``pkt``.

The checker annotates every expression's ``ty`` in place and returns a
:class:`ProgramInfo` used by the interpreter, the JIT and the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from . import types as T
from .errors import SourcePos, TypeCheckError
from ..interp.primitives import BUILTIN_EXCEPTIONS, EMISSION_PRIMS, PRIMITIVES

_ARITH_OPS = ("+", "-", "*", "/", "mod")
_CMP_OPS = ("<", ">", "<=", ">=")
_EQ_OPS = ("=", "<>")
_BOOL_OPS = ("andalso", "orelse")
_ORDERED_TYPES = (T.INT, T.STRING, T.CHAR)


@dataclass
class FunInfo:
    decl: ast.FunDecl
    param_types: list[T.Type]
    return_type: T.Type


@dataclass
class ProgramInfo:
    """Summary of a checked program, consumed by every downstream pass."""

    program: ast.Program
    vals: dict[str, T.Type] = field(default_factory=dict)
    funs: dict[str, FunInfo] = field(default_factory=dict)
    exceptions: set[str] = field(default_factory=set)
    #: channel name -> declarations (several for overloaded ``network``)
    channels: dict[str, list[ast.ChannelDecl]] = field(default_factory=dict)

    def channel_overloads(self, name: str) -> list[ast.ChannelDecl]:
        return self.channels.get(name, [])

    def all_channels(self) -> list[ast.ChannelDecl]:
        return [c for decls in self.channels.values() for c in decls]


def _join(a: T.Type, b: T.Type, pos: SourcePos, what: str) -> T.Type:
    """The common type of two branches; prefers the more specific side."""
    if not T.compatible(a, b):
        raise TypeCheckError(f"{what} have incompatible types {a} and {b}",
                             pos)
    if isinstance(a, T.AnyType):
        return b
    if isinstance(b, T.AnyType):
        return a
    if isinstance(a, T.TupleType) and isinstance(b, T.TupleType):
        return T.TupleType(tuple(
            _join(x, y, pos, what) for x, y in zip(a.elems, b.elems)))
    if isinstance(a, T.HashTableType) and isinstance(b, T.HashTableType):
        return T.HashTableType(_join(a.value, b.value, pos, what))
    if isinstance(a, T.ListType) and isinstance(b, T.ListType):
        return T.ListType(_join(a.elem, b.elem, pos, what))
    return a


class _Scope:
    """A lexical scope chain of value bindings."""

    def __init__(self, parent: "_Scope | None" = None):
        self._parent = parent
        self._bindings: dict[str, T.Type] = {}

    def bind(self, name: str, ty: T.Type) -> None:
        self._bindings[name] = ty

    def lookup(self, name: str) -> T.Type | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope._bindings:
                return scope._bindings[name]
            scope = scope._parent
        return None


class TypeChecker:
    """Checks one program.  Use :func:`typecheck` as the entry point."""

    def __init__(self, program: ast.Program):
        self._program = program
        self._info = ProgramInfo(program)
        #: functions visible so far (enforces declaration-order calls)
        self._visible_funs: dict[str, FunInfo] = {}

    # -- program ----------------------------------------------------------------

    def check(self) -> ProgramInfo:
        self._collect_channels()
        globals_scope = _Scope()
        for decl in self._program.decls:
            if isinstance(decl, ast.ValDecl):
                self._check_val(decl, globals_scope)
            elif isinstance(decl, ast.ExceptionDecl):
                self._check_exception(decl)
            elif isinstance(decl, ast.FunDecl):
                self._check_fun(decl, globals_scope)
            elif isinstance(decl, ast.ChannelDecl):
                self._check_channel(decl, globals_scope)
        if not self._info.channels:
            raise TypeCheckError(
                "a PLAN-P protocol must define at least one channel",
                SourcePos())
        # The protocol state is shared between *all* channels (paper §2),
        # so every channel must declare the same protocol state type.
        all_channels = self._info.all_channels()
        first = all_channels[0]
        for chan in all_channels[1:]:
            if chan.protocol_state_type != first.protocol_state_type:
                raise TypeCheckError(
                    f"channel {chan.name!r} declares protocol state "
                    f"{chan.protocol_state_type} but channel "
                    f"{first.name!r} declares "
                    f"{first.protocol_state_type}; the protocol state is "
                    f"shared and must have one type", chan.pos)
        return self._info

    def _collect_channels(self) -> None:
        """Pre-pass: channel names/types must be known before bodies are
        checked, because any channel may OnRemote to any other."""
        for decl in self._program.channels:
            if len(decl.params) != 3:
                raise TypeCheckError(
                    f"channel {decl.name!r} must have 3 parameters",
                    decl.pos)
            overloads = self._info.channels.setdefault(decl.name, [])
            if decl.name == "network":
                if not T.is_packet_type(decl.packet_type):
                    raise TypeCheckError(
                        f"network channel packet type {decl.packet_type} "
                        f"is not a valid packet type (ip [* transport] "
                        f"* payload views)", decl.pos)
                if any(o.packet_type == decl.packet_type for o in overloads):
                    raise TypeCheckError(
                        "duplicate network channel with packet type "
                        f"{decl.packet_type}", decl.pos)
            elif overloads:
                raise TypeCheckError(
                    f"duplicate channel name {decl.name!r} (only "
                    f"'network' channels may be overloaded)", decl.pos)
            if overloads:
                first = overloads[0]
                if (decl.protocol_state_type != first.protocol_state_type):
                    raise TypeCheckError(
                        "overloaded network channels must share the "
                        "protocol state type", decl.pos)
            overloads.append(decl)

    # -- declarations -------------------------------------------------------------

    def _check_val(self, decl: ast.ValDecl, scope: _Scope) -> None:
        if decl.name in self._info.vals:
            raise TypeCheckError(f"duplicate val {decl.name!r}", decl.pos)
        actual = self._expr(decl.value, scope)
        if not T.compatible(decl.declared, actual):
            raise TypeCheckError(
                f"val {decl.name}: declared {decl.declared} but "
                f"initialiser has type {actual}", decl.pos)
        scope.bind(decl.name, decl.declared)
        self._info.vals[decl.name] = decl.declared

    def _check_exception(self, decl: ast.ExceptionDecl) -> None:
        if decl.name in self._info.exceptions:
            raise TypeCheckError(f"duplicate exception {decl.name!r}",
                                 decl.pos)
        if decl.name in BUILTIN_EXCEPTIONS:
            raise TypeCheckError(
                f"exception {decl.name!r} shadows a built-in exception",
                decl.pos)
        self._info.exceptions.add(decl.name)

    def _check_fun(self, decl: ast.FunDecl, globals_scope: _Scope) -> None:
        if decl.name in self._visible_funs or decl.name in PRIMITIVES:
            raise TypeCheckError(
                f"function {decl.name!r} redefines an existing function "
                f"or primitive", decl.pos)
        scope = _Scope(globals_scope)
        seen: set[str] = set()
        for p in decl.params:
            if p.name in seen:
                raise TypeCheckError(
                    f"duplicate parameter {p.name!r}", p.pos)
            seen.add(p.name)
            scope.bind(p.name, p.declared)
        # The body is checked before the function becomes visible, so a
        # recursive call is reported as an unknown function: this is the
        # no-recursion restriction that gives local termination.
        body_type = self._expr(decl.body, scope)
        if not T.compatible(decl.return_type, body_type):
            raise TypeCheckError(
                f"function {decl.name}: body has type {body_type}, "
                f"declared {decl.return_type}", decl.pos)
        info = FunInfo(decl, [p.declared for p in decl.params],
                       decl.return_type)
        self._visible_funs[decl.name] = info
        self._info.funs[decl.name] = info

    def _check_channel(self, decl: ast.ChannelDecl,
                       globals_scope: _Scope) -> None:
        scope = _Scope(globals_scope)
        seen: set[str] = set()
        for p in decl.params:
            if p.name in seen:
                raise TypeCheckError(f"duplicate parameter {p.name!r}",
                                     p.pos)
            seen.add(p.name)
            scope.bind(p.name, p.declared)
        if decl.initstate is not None:
            init_type = self._expr(decl.initstate, globals_scope)
            if not T.compatible(decl.channel_state_type, init_type):
                raise TypeCheckError(
                    f"initstate has type {init_type}, channel state is "
                    f"{decl.channel_state_type}", decl.pos)
        expected = T.state_pair(decl.protocol_state_type,
                                decl.channel_state_type)
        body_type = self._expr(decl.body, scope)
        if not T.compatible(expected, body_type):
            raise TypeCheckError(
                f"channel {decl.name}: body has type {body_type}, must "
                f"return the state pair {expected}", decl.pos)

    # -- expressions ----------------------------------------------------------------

    def _expr(self, expr: ast.Expr, scope: _Scope) -> T.Type:
        method = getattr(self, "_expr_" + type(expr).__name__)
        ty = method(expr, scope)
        expr.ty = ty
        return ty

    def _expr_IntLit(self, expr: ast.IntLit, scope: _Scope) -> T.Type:
        return T.INT

    def _expr_BoolLit(self, expr: ast.BoolLit, scope: _Scope) -> T.Type:
        return T.BOOL

    def _expr_StringLit(self, expr: ast.StringLit, scope: _Scope) -> T.Type:
        return T.STRING

    def _expr_CharLit(self, expr: ast.CharLit, scope: _Scope) -> T.Type:
        return T.CHAR

    def _expr_UnitLit(self, expr: ast.UnitLit, scope: _Scope) -> T.Type:
        return T.UNIT

    def _expr_HostLit(self, expr: ast.HostLit, scope: _Scope) -> T.Type:
        return T.HOST

    def _expr_Var(self, expr: ast.Var, scope: _Scope) -> T.Type:
        ty = scope.lookup(expr.name)
        if ty is None:
            if expr.name in self._info.channels:
                raise TypeCheckError(
                    f"channel {expr.name!r} may only be referenced as the "
                    f"first argument of OnRemote/OnNeighbor", expr.pos)
            raise TypeCheckError(f"unbound variable {expr.name!r}", expr.pos)
        return ty

    def _expr_BinOp(self, expr: ast.BinOp, scope: _Scope) -> T.Type:
        lt = self._expr(expr.left, scope)
        rt = self._expr(expr.right, scope)
        op = expr.op
        if op in _ARITH_OPS:
            if not (T.compatible(T.INT, lt) and T.compatible(T.INT, rt)):
                raise TypeCheckError(
                    f"operator {op!r} needs int operands, got {lt} and {rt}",
                    expr.pos)
            return T.INT
        if op == "^":
            if not (T.compatible(T.STRING, lt)
                    and T.compatible(T.STRING, rt)):
                raise TypeCheckError(
                    f"operator '^' needs string operands, got {lt} and {rt}",
                    expr.pos)
            return T.STRING
        if op in _BOOL_OPS:
            if not (T.compatible(T.BOOL, lt) and T.compatible(T.BOOL, rt)):
                raise TypeCheckError(
                    f"operator {op!r} needs bool operands, got {lt} and {rt}",
                    expr.pos)
            return T.BOOL
        if op in _EQ_OPS:
            joined = _join(lt, rt, expr.pos, f"operands of {op!r}")
            if not T.is_equality_type(joined):
                raise TypeCheckError(
                    f"type {joined} does not admit equality", expr.pos)
            return T.BOOL
        if op in _CMP_OPS:
            joined = _join(lt, rt, expr.pos, f"operands of {op!r}")
            if joined not in _ORDERED_TYPES and not isinstance(
                    joined, T.AnyType):
                raise TypeCheckError(
                    f"operator {op!r} needs int, string or char operands, "
                    f"got {joined}", expr.pos)
            return T.BOOL
        if op == "::":
            if not isinstance(rt, T.ListType):
                raise TypeCheckError(
                    f"'::' needs a list right operand, got {rt}", expr.pos)
            elem = _join(lt, rt.elem, expr.pos, "cons operands")
            return T.ListType(elem)
        raise TypeCheckError(f"unknown operator {op!r}", expr.pos)

    def _expr_UnOp(self, expr: ast.UnOp, scope: _Scope) -> T.Type:
        t = self._expr(expr.operand, scope)
        if expr.op == "not":
            if not T.compatible(T.BOOL, t):
                raise TypeCheckError(f"'not' needs a bool, got {t}",
                                     expr.pos)
            return T.BOOL
        if expr.op == "-":
            if not T.compatible(T.INT, t):
                raise TypeCheckError(f"unary '-' needs an int, got {t}",
                                     expr.pos)
            return T.INT
        raise TypeCheckError(f"unknown unary operator {expr.op!r}", expr.pos)

    def _expr_If(self, expr: ast.If, scope: _Scope) -> T.Type:
        cond = self._expr(expr.cond, scope)
        if not T.compatible(T.BOOL, cond):
            raise TypeCheckError(f"if condition must be bool, got {cond}",
                                 expr.pos)
        then_t = self._expr(expr.then, scope)
        else_t = self._expr(expr.orelse, scope)
        return _join(then_t, else_t, expr.pos, "if branches")

    def _expr_Let(self, expr: ast.Let, scope: _Scope) -> T.Type:
        inner = _Scope(scope)
        for binding in expr.bindings:
            actual = self._expr(binding.value, inner)
            if not T.compatible(binding.declared, actual):
                raise TypeCheckError(
                    f"val {binding.name}: declared {binding.declared} but "
                    f"initialiser has type {actual}", binding.pos)
            inner.bind(binding.name, binding.declared)
        return self._expr(expr.body, inner)

    def _expr_Seq(self, expr: ast.Seq, scope: _Scope) -> T.Type:
        for e in expr.exprs[:-1]:
            t = self._expr(e, scope)
            if not T.compatible(T.UNIT, t):
                raise TypeCheckError(
                    f"non-final expression in a sequence must have type "
                    f"unit, got {t}", e.pos)
        return self._expr(expr.exprs[-1], scope)

    def _expr_TupleExpr(self, expr: ast.TupleExpr, scope: _Scope) -> T.Type:
        elems = tuple(self._expr(e, scope) for e in expr.elems)
        return T.TupleType(elems)

    def _expr_Proj(self, expr: ast.Proj, scope: _Scope) -> T.Type:
        t = self._expr(expr.tuple_expr, scope)
        if isinstance(t, T.AnyType):
            return T.ANY
        if not isinstance(t, T.TupleType):
            raise TypeCheckError(
                f"projection #{expr.index} applied to non-tuple type {t}",
                expr.pos)
        if not 1 <= expr.index <= len(t.elems):
            raise TypeCheckError(
                f"projection #{expr.index} out of range for {t}", expr.pos)
        return t.elems[expr.index - 1]

    def _expr_Call(self, expr: ast.Call, scope: _Scope) -> T.Type:
        if expr.func in EMISSION_PRIMS:
            return self._check_emission(expr, scope)
        if expr.func in self._visible_funs:
            info = self._visible_funs[expr.func]
            if len(expr.args) != len(info.param_types):
                raise TypeCheckError(
                    f"{expr.func} expects {len(info.param_types)} "
                    f"argument(s), got {len(expr.args)}", expr.pos)
            for i, (arg, want) in enumerate(
                    zip(expr.args, info.param_types), start=1):
                got = self._expr(arg, scope)
                if not T.compatible(want, got):
                    raise TypeCheckError(
                        f"argument {i} of {expr.func} has type {got}, "
                        f"expected {want}", arg.pos)
            return info.return_type
        if expr.func in PRIMITIVES:
            arg_types = [self._expr(a, scope) for a in expr.args]
            prim = PRIMITIVES[expr.func]
            try:
                return prim.type_rule(arg_types, expr.pos)
            except TypeCheckError as err:
                raise TypeCheckError(f"in call to {expr.func}: "
                                     f"{err.message}", expr.pos)
        if expr.func in self._info.funs:
            # Declared later in the file: calling it would admit recursion.
            raise TypeCheckError(
                f"function {expr.func!r} is used before its declaration "
                f"(forward and recursive calls are forbidden)", expr.pos)
        raise TypeCheckError(f"unknown function {expr.func!r}", expr.pos)

    def _check_emission(self, expr: ast.Call, scope: _Scope) -> T.Type:
        want_args = 2 if expr.func == "OnRemote" else 3
        if len(expr.args) != want_args:
            raise TypeCheckError(
                f"{expr.func} expects {want_args} arguments "
                f"(channel, packet{', neighbor' if want_args == 3 else ''})",
                expr.pos)
        chan_arg = expr.args[0]
        if not isinstance(chan_arg, ast.Var):
            raise TypeCheckError(
                f"the first argument of {expr.func} must be a channel name",
                expr.pos)
        overloads = self._info.channel_overloads(chan_arg.name)
        if not overloads:
            raise TypeCheckError(
                f"{expr.func} target {chan_arg.name!r} is not a channel",
                chan_arg.pos)
        chan_arg.ty = T.UNIT  # channel names carry no value
        pkt_type = self._expr(expr.args[1], scope)
        if not any(T.compatible(o.packet_type, pkt_type)
                   for o in overloads):
            accepted = ", ".join(str(o.packet_type) for o in overloads)
            raise TypeCheckError(
                f"packet type {pkt_type} does not match channel "
                f"{chan_arg.name!r} (accepts: {accepted})", expr.args[1].pos)
        if expr.func == "OnNeighbor":
            host_t = self._expr(expr.args[2], scope)
            if not T.compatible(T.HOST, host_t):
                raise TypeCheckError(
                    f"OnNeighbor neighbor argument must be host, "
                    f"got {host_t}", expr.args[2].pos)
        return T.UNIT

    def _expr_Try(self, expr: ast.Try, scope: _Scope) -> T.Type:
        body_t = self._expr(expr.body, scope)
        if (expr.exn != "_" and expr.exn not in self._info.exceptions
                and expr.exn not in BUILTIN_EXCEPTIONS):
            raise TypeCheckError(
                f"handler matches unknown exception {expr.exn!r}", expr.pos)
        handler_t = self._expr(expr.handler, scope)
        return _join(body_t, handler_t, expr.pos, "try/handle branches")

    def _expr_Raise(self, expr: ast.Raise, scope: _Scope) -> T.Type:
        if (expr.exn not in self._info.exceptions
                and expr.exn not in BUILTIN_EXCEPTIONS):
            raise TypeCheckError(f"unknown exception {expr.exn!r}", expr.pos)
        return T.ANY  # bottom: a raise fits in any context


def typecheck(program: ast.Program) -> ProgramInfo:
    """Type check ``program`` in place and return its summary."""
    return TypeChecker(program).check()
