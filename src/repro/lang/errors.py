"""Error types for the PLAN-P front end.

Every front-end error carries a source position so that a rejected ASP can
be reported back to the user who attempted to download it (the paper's
"late checking" model: programs arrive as source and are verified at the
router before being installed).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourcePos:
    """A position in PLAN-P source text (1-based line and column)."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class PlanPError(Exception):
    """Base class for every error raised by the PLAN-P toolchain."""

    def __init__(self, message: str, pos: SourcePos | None = None):
        self.message = message
        self.pos = pos or SourcePos()
        super().__init__(self._format())

    def _format(self) -> str:
        if self.pos.line:
            return f"{self.pos}: {self.message}"
        return self.message


class LexError(PlanPError):
    """Raised on malformed input at the character level."""


class ParseError(PlanPError):
    """Raised on malformed input at the syntax level."""


class TypeCheckError(PlanPError):
    """Raised when a program does not type check."""


class VerificationError(PlanPError):
    """Raised when a program fails one of the four safety analyses.

    The run-time system refuses to install programs that raise this;
    per the paper, privileged users could bypass it with authentication.
    """

    def __init__(self, message: str, pos: SourcePos | None = None,
                 analysis: str = ""):
        self.analysis = analysis
        super().__init__(message, pos)


class PlanPRuntimeError(PlanPError):
    """Raised by the interpreter or JIT-compiled code at packet time.

    PLAN-P programs may handle these with ``try ... handle``; an unhandled
    one is flagged by the delivery analysis at verification time.
    """

    def __init__(self, message: str, pos: SourcePos | None = None,
                 exception_name: str = "Error"):
        self.exception_name = exception_name
        super().__init__(message, pos)
