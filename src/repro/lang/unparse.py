"""Pretty-printer for PLAN-P ASTs.

``unparse(parse(src))`` produces text that re-parses to an equal AST —
the round-trip property the test suite checks with hypothesis.  Output is
fully parenthesised, so no precedence reasoning is needed here.
"""

from __future__ import annotations

from . import ast
from . import types as T

_STRING_ESCAPES = {
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    '"': '\\"',
    "\\": "\\\\",
    "\0": "\\0",
}


def _escape(text: str) -> str:
    return "".join(_STRING_ESCAPES.get(ch, ch) for ch in text)


def unparse_type(ty: T.Type) -> str:
    """Render a type in surface syntax."""
    if isinstance(ty, T.TupleType):
        parts = []
        for e in ty.elems:
            text = unparse_type(e)
            if isinstance(e, (T.TupleType, T.HashTableType, T.ListType)):
                text = f"({text})"
            parts.append(text)
        return "*".join(parts)
    if isinstance(ty, T.HashTableType):
        return f"({unparse_type(ty.value)}) hash_table"
    if isinstance(ty, T.ListType):
        return f"({unparse_type(ty.elem)}) list"
    return str(ty)


def unparse_expr(expr: ast.Expr) -> str:
    """Render an expression, fully parenthesised."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLit):
        return f'"{_escape(expr.value)}"'
    if isinstance(expr, ast.CharLit):
        return f'#"{_escape(expr.value)}"'
    if isinstance(expr, ast.UnitLit):
        return "()"
    if isinstance(expr, ast.HostLit):
        return expr.value
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.BinOp):
        return (f"({unparse_expr(expr.left)} {expr.op} "
                f"{unparse_expr(expr.right)})")
    if isinstance(expr, ast.UnOp):
        if expr.op == "not":
            return f"(not {unparse_expr(expr.operand)})"
        return f"(- {unparse_expr(expr.operand)})"
    if isinstance(expr, ast.If):
        return (f"(if {unparse_expr(expr.cond)} then "
                f"{unparse_expr(expr.then)} else "
                f"{unparse_expr(expr.orelse)})")
    if isinstance(expr, ast.Let):
        bindings = " ".join(
            f"val {b.name} : {unparse_type(b.declared)} = "
            f"{unparse_expr(b.value)}"
            for b in expr.bindings)
        return f"(let {bindings} in {unparse_expr(expr.body)} end)"
    if isinstance(expr, ast.Seq):
        return "(" + "; ".join(unparse_expr(e) for e in expr.exprs) + ")"
    if isinstance(expr, ast.TupleExpr):
        return "(" + ", ".join(unparse_expr(e) for e in expr.elems) + ")"
    if isinstance(expr, ast.Proj):
        return f"#{expr.index} {unparse_expr(expr.tuple_expr)}"
    if isinstance(expr, ast.Call):
        args = ", ".join(unparse_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.Try):
        return (f"(try {unparse_expr(expr.body)} handle {expr.exn} => "
                f"{unparse_expr(expr.handler)})")
    if isinstance(expr, ast.Raise):
        return f"(raise {expr.exn})"
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def _unparse_params(params: list[ast.Param]) -> str:
    return ", ".join(f"{p.name} : {unparse_type(p.declared)}"
                     for p in params)


def unparse(program: ast.Program) -> str:
    """Render a whole program as re-parseable PLAN-P source."""
    lines: list[str] = []
    for decl in program.decls:
        if isinstance(decl, ast.ValDecl):
            lines.append(f"val {decl.name} : {unparse_type(decl.declared)} "
                         f"= {unparse_expr(decl.value)}")
        elif isinstance(decl, ast.ExceptionDecl):
            lines.append(f"exception {decl.name}")
        elif isinstance(decl, ast.FunDecl):
            lines.append(
                f"fun {decl.name}({_unparse_params(decl.params)}) : "
                f"{unparse_type(decl.return_type)} = "
                f"{unparse_expr(decl.body)}")
        elif isinstance(decl, ast.ChannelDecl):
            init = ""
            if decl.initstate is not None:
                init = f" initstate {unparse_expr(decl.initstate)}"
            lines.append(
                f"channel {decl.name}({_unparse_params(decl.params)})"
                f"{init} is {unparse_expr(decl.body)}")
        else:
            raise TypeError(f"cannot unparse {type(decl).__name__}")
    return "\n".join(lines) + "\n"
