"""Recursive-descent parser for PLAN-P.

The grammar is documented in DESIGN.md §5.  Operator precedence follows
SML: projection binds tightest, then unary operators, then
multiplicative, additive, ``::``, comparison (non-associative),
``andalso``, ``orelse``.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError, SourcePos
from .lexer import tokenize
from .tokens import Token, TokenKind
from . import types as T

_BASE_TYPES: dict[TokenKind, T.Type] = {
    TokenKind.TINT: T.INT,
    TokenKind.TBOOL: T.BOOL,
    TokenKind.TSTRING: T.STRING,
    TokenKind.TCHAR: T.CHAR,
    TokenKind.TUNIT: T.UNIT,
    TokenKind.THOST: T.HOST,
    TokenKind.TPORT: T.PORT,
    TokenKind.TBLOB: T.BLOB,
    TokenKind.TIP: T.IP,
    TokenKind.TTCP: T.TCP,
    TokenKind.TUDP: T.UDP,
}

_COMPARISONS = {
    TokenKind.EQ: "=",
    TokenKind.NEQ: "<>",
    TokenKind.LT: "<",
    TokenKind.GT: ">",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
}

_ADDITIVE = {
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.CARET: "^",
}

_MULTIPLICATIVE = {
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.MOD: "mod",
}

#: Type keywords double as ordinary identifiers in expression and binding
#: position — the paper's own fragments write ``val tcp : tcp = #2 p``.
_TYPE_KEYWORD_TOKENS = set(_BASE_TYPES) | {TokenKind.THASHTABLE,
                                           TokenKind.TLIST}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token], source_name: str = "<planp>"):
        self._toks = tokens
        self._idx = 0
        self._source_name = source_name

    # -- Token-stream helpers ------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self._idx + ahead, len(self._toks) - 1)
        return self._toks[idx]

    def _at(self, kind: TokenKind, ahead: int = 0) -> bool:
        return self._peek(ahead).kind is kind

    def _advance(self) -> Token:
        tok = self._toks[self._idx]
        if tok.kind is not TokenKind.EOF:
            self._idx += 1
        return tok

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r}{where}, found {tok.kind.value!r}",
                tok.pos)
        return self._advance()

    def _pos(self) -> SourcePos:
        return self._peek().pos

    def _expect_name(self, context: str) -> Token:
        """An identifier, allowing type keywords used as plain names."""
        tok = self._peek()
        if tok.kind is TokenKind.IDENT or tok.kind in _TYPE_KEYWORD_TOKENS:
            return self._advance()
        raise ParseError(
            f"expected an identifier in {context}, "
            f"found {tok.kind.value!r}", tok.pos)

    # -- Program and declarations ---------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: list[ast.Decl] = []
        while not self._at(TokenKind.EOF):
            decls.append(self._declaration())
        return ast.Program(decls, source_name=self._source_name)

    def _declaration(self) -> ast.Decl:
        tok = self._peek()
        if tok.kind is TokenKind.VAL:
            return self._val_decl()
        if tok.kind is TokenKind.FUN:
            return self._fun_decl()
        if tok.kind is TokenKind.CHANNEL:
            return self._channel_decl()
        if tok.kind is TokenKind.EXCEPTION:
            return self._exception_decl()
        raise ParseError(
            f"expected a declaration (val/fun/channel/exception), "
            f"found {tok.kind.value!r}", tok.pos)

    def _val_decl(self) -> ast.ValDecl:
        pos = self._pos()
        self._expect(TokenKind.VAL)
        name = self._expect_name("val declaration").text
        self._expect(TokenKind.COLON, "val declaration")
        declared = self._type()
        self._expect(TokenKind.EQ, "val declaration")
        value = self._expr()
        return ast.ValDecl(name=name, declared=declared, value=value, pos=pos)

    def _fun_decl(self) -> ast.FunDecl:
        pos = self._pos()
        self._expect(TokenKind.FUN)
        name = self._expect_name("fun declaration").text
        self._expect(TokenKind.LPAREN, "fun declaration")
        params = self._params()
        self._expect(TokenKind.RPAREN, "fun declaration")
        self._expect(TokenKind.COLON, "fun declaration")
        return_type = self._type()
        self._expect(TokenKind.EQ, "fun declaration")
        body = self._expr()
        return ast.FunDecl(name=name, params=params,
                           return_type=return_type, body=body, pos=pos)

    def _channel_decl(self) -> ast.ChannelDecl:
        pos = self._pos()
        self._expect(TokenKind.CHANNEL)
        name = self._expect_name("channel declaration").text
        self._expect(TokenKind.LPAREN, "channel declaration")
        params = self._params()
        self._expect(TokenKind.RPAREN, "channel declaration")
        if len(params) != 3:
            raise ParseError(
                f"channel {name!r} must have exactly three parameters "
                f"(protocol state, channel state, packet), got {len(params)}",
                pos)
        initstate: ast.Expr | None = None
        if self._at(TokenKind.INITSTATE):
            self._advance()
            initstate = self._expr()
        self._expect(TokenKind.IS, "channel declaration")
        body = self._expr()
        return ast.ChannelDecl(name=name, params=params,
                               initstate=initstate, body=body, pos=pos)

    def _exception_decl(self) -> ast.ExceptionDecl:
        pos = self._pos()
        self._expect(TokenKind.EXCEPTION)
        name = self._expect_name("exception declaration").text
        return ast.ExceptionDecl(name=name, pos=pos)

    def _params(self) -> list[ast.Param]:
        params: list[ast.Param] = []
        if self._at(TokenKind.RPAREN):
            return params
        while True:
            pos = self._pos()
            name = self._expect_name("parameter list").text
            self._expect(TokenKind.COLON, "parameter list")
            declared = self._type()
            params.append(ast.Param(name=name, declared=declared, pos=pos))
            if not self._at(TokenKind.COMMA):
                return params
            self._advance()

    # -- Types -----------------------------------------------------------------

    def _type(self) -> T.Type:
        first = self._type_postfix()
        elems = [first]
        while self._at(TokenKind.STAR):
            self._advance()
            elems.append(self._type_postfix())
        if len(elems) == 1:
            return first
        return T.TupleType(tuple(elems))

    def _type_postfix(self) -> T.Type:
        t = self._type_atom()
        while True:
            if self._at(TokenKind.THASHTABLE):
                self._advance()
                t = T.HashTableType(t)
            elif self._at(TokenKind.TLIST):
                self._advance()
                t = T.ListType(t)
            else:
                return t

    def _type_atom(self) -> T.Type:
        tok = self._peek()
        if tok.kind in _BASE_TYPES:
            self._advance()
            return _BASE_TYPES[tok.kind]
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._type()
            self._expect(TokenKind.RPAREN, "type")
            return inner
        raise ParseError(f"expected a type, found {tok.kind.value!r}",
                         tok.pos)

    # -- Expressions -------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.LET:
            return self._let()
        if tok.kind is TokenKind.IF:
            return self._if()
        if tok.kind is TokenKind.TRY:
            return self._try()
        if tok.kind is TokenKind.RAISE:
            return self._raise()
        return self._orelse()

    def _let(self) -> ast.Let:
        pos = self._pos()
        self._expect(TokenKind.LET)
        bindings: list[ast.ValBinding] = []
        while self._at(TokenKind.VAL):
            bpos = self._pos()
            self._advance()
            name = self._expect_name("let binding").text
            self._expect(TokenKind.COLON, "let binding")
            declared = self._type()
            self._expect(TokenKind.EQ, "let binding")
            value = self._expr()
            bindings.append(ast.ValBinding(name=name, declared=declared,
                                           value=value, pos=bpos))
        if not bindings:
            raise ParseError("let requires at least one val binding", pos)
        self._expect(TokenKind.IN, "let expression")
        body = self._expr()
        self._expect(TokenKind.END, "let expression")
        return ast.Let(bindings=bindings, body=body, pos=pos)

    def _if(self) -> ast.If:
        pos = self._pos()
        self._expect(TokenKind.IF)
        cond = self._expr()
        self._expect(TokenKind.THEN, "if expression")
        then = self._expr()
        self._expect(TokenKind.ELSE, "if expression")
        orelse = self._expr()
        return ast.If(cond=cond, then=then, orelse=orelse, pos=pos)

    def _try(self) -> ast.Try:
        pos = self._pos()
        self._expect(TokenKind.TRY)
        body = self._expr()
        self._expect(TokenKind.HANDLE, "try expression")
        exn = self._expect(TokenKind.IDENT, "try handler").text
        self._expect(TokenKind.ARROW, "try handler")
        handler = self._expr()
        return ast.Try(body=body, exn=exn, handler=handler, pos=pos)

    def _raise(self) -> ast.Raise:
        pos = self._pos()
        self._expect(TokenKind.RAISE)
        exn = self._expect(TokenKind.IDENT, "raise expression").text
        return ast.Raise(exn=exn, pos=pos)

    def _orelse(self) -> ast.Expr:
        left = self._andalso()
        while self._at(TokenKind.ORELSE):
            pos = self._pos()
            self._advance()
            right = self._andalso()
            left = ast.BinOp(op="orelse", left=left, right=right, pos=pos)
        return left

    def _andalso(self) -> ast.Expr:
        left = self._comparison()
        while self._at(TokenKind.ANDALSO):
            pos = self._pos()
            self._advance()
            right = self._comparison()
            left = ast.BinOp(op="andalso", left=left, right=right, pos=pos)
        return left

    def _comparison(self) -> ast.Expr:
        left = self._cons()
        tok = self._peek()
        if tok.kind in _COMPARISONS:
            self._advance()
            right = self._cons()
            return ast.BinOp(op=_COMPARISONS[tok.kind], left=left,
                             right=right, pos=tok.pos)
        return left

    def _cons(self) -> ast.Expr:
        left = self._additive()
        if self._at(TokenKind.CONS):
            pos = self._pos()
            self._advance()
            right = self._cons()  # right-associative
            return ast.BinOp(op="::", left=left, right=right, pos=pos)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._peek().kind in _ADDITIVE:
            tok = self._advance()
            right = self._multiplicative()
            left = ast.BinOp(op=_ADDITIVE[tok.kind], left=left, right=right,
                             pos=tok.pos)
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._peek().kind in _MULTIPLICATIVE:
            tok = self._advance()
            right = self._unary()
            left = ast.BinOp(op=_MULTIPLICATIVE[tok.kind], left=left,
                             right=right, pos=tok.pos)
        return left

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.NOT:
            self._advance()
            return ast.UnOp(op="not", operand=self._unary(), pos=tok.pos)
        if tok.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnOp(op="-", operand=self._unary(), pos=tok.pos)
        return self._projection()

    def _projection(self) -> ast.Expr:
        if self._at(TokenKind.HASH):
            pos = self._pos()
            self._advance()
            idx_tok = self._expect(TokenKind.INT, "tuple projection")
            index = int(idx_tok.value)  # type: ignore[arg-type]
            if index < 1:
                raise ParseError("projection index must be >= 1", idx_tok.pos)
            target = self._projection()
            return ast.Proj(index=index, tuple_expr=target, pos=pos)
        return self._atom()

    def _atom(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(value=int(tok.value), pos=tok.pos)  # type: ignore[arg-type]
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(value=str(tok.value), pos=tok.pos)
        if tok.kind is TokenKind.CHAR:
            self._advance()
            return ast.CharLit(value=str(tok.value), pos=tok.pos)
        if tok.kind is TokenKind.IPADDR:
            self._advance()
            return ast.HostLit(value=str(tok.value), pos=tok.pos)
        if tok.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(value=True, pos=tok.pos)
        if tok.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(value=False, pos=tok.pos)
        if tok.kind is TokenKind.UNIT:
            self._advance()
            return ast.UnitLit(pos=tok.pos)
        if tok.kind is TokenKind.IDENT or tok.kind in _TYPE_KEYWORD_TOKENS:
            return self._ident_or_call()
        if tok.kind is TokenKind.LPAREN:
            return self._paren()
        raise ParseError(f"expected an expression, found {tok.kind.value!r}",
                         tok.pos)

    def _ident_or_call(self) -> ast.Expr:
        tok = self._advance()
        name = tok.text
        if self._at(TokenKind.UNIT):
            # ``f()`` — the lexer fuses the empty parens into one token.
            self._advance()
            return ast.Call(func=name, args=[], pos=tok.pos)
        if not self._at(TokenKind.LPAREN):
            return ast.Var(name=name, pos=tok.pos)
        self._advance()  # (
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            args.append(self._expr())
            while self._at(TokenKind.COMMA):
                self._advance()
                args.append(self._expr())
        self._expect(TokenKind.RPAREN, f"call to {name}")
        return ast.Call(func=name, args=args, pos=tok.pos)

    def _paren(self) -> ast.Expr:
        pos = self._pos()
        self._expect(TokenKind.LPAREN)
        first = self._expr()
        if self._at(TokenKind.SEMI):
            exprs = [first]
            while self._at(TokenKind.SEMI):
                self._advance()
                exprs.append(self._expr())
            self._expect(TokenKind.RPAREN, "sequence expression")
            return ast.Seq(exprs=exprs, pos=pos)
        if self._at(TokenKind.COMMA):
            elems = [first]
            while self._at(TokenKind.COMMA):
                self._advance()
                elems.append(self._expr())
            self._expect(TokenKind.RPAREN, "tuple expression")
            return ast.TupleExpr(elems=elems, pos=pos)
        self._expect(TokenKind.RPAREN, "parenthesised expression")
        return first


def parse(source: str, source_name: str = "<planp>") -> ast.Program:
    """Parse PLAN-P source text into an (untyped) AST."""
    return Parser(tokenize(source), source_name).parse_program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression — used by tests and the REPL example."""
    parser = Parser(tokenize(source))
    expr = parser._expr()
    tok = parser._peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError(
            f"trailing input after expression: {tok.kind.value!r}", tok.pos)
    return expr
