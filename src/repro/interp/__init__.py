"""The PLAN-P execution engine: values, primitives, interpreter, context."""

from .context import Emission, ExecutionContext, RecordingContext
from . import compress_prims  # noqa: F401  (registers blobCompress etc.)
from . import image_prims  # noqa: F401  (registers the image primitives)
from .env import Env
from .interpreter import Interpreter
from .primitives import PRIMITIVES, Primitive, register
from .values import (UNIT, PlanPList, PlanPTable, conforms, default_value,
                     format_value, values_equal)

__all__ = [
    "Emission",
    "ExecutionContext",
    "RecordingContext",
    "Env",
    "Interpreter",
    "PRIMITIVES",
    "Primitive",
    "register",
    "UNIT",
    "PlanPList",
    "PlanPTable",
    "conforms",
    "default_value",
    "format_value",
    "values_equal",
]
