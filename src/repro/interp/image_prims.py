"""Image distillation primitives (paper §5, medium-term goals).

"Our medium term goal is to do adaptation of data traffic such as images
... over low bandwidth networks.  One possible solution is the
integration of image distillation support into PLAN-P."

This module integrates that support.  Images travel as blobs in a tiny
uncompressed grayscale format (SIMG):

    bytes 0..3   magic "SIMG"
    bytes 4..5   width  (big-endian)
    bytes 6..7   height (big-endian)
    byte  8      bits per pixel (1..8)
    bytes 9..    pixels, row-major, one byte each (quantised values are
                 stored left-aligned in the byte)

Distillation operators (à la Fox et al.'s transcoding proxies, which the
paper cites implicitly via "image distillation"):

* ``imgDownscale`` — halve both dimensions by 2×2 box averaging;
* ``imgQuantize``  — reduce to n bits per pixel;
* ``imgDistill``   — repeatedly downscale until the encoding fits a
  byte budget (the form an ASP uses on a slow link).

Registering these extends the interpreter, the type checker and both
JIT backends at once — the §2.3 extension story in action, which
``tests/interp/test_image_prims.py`` checks explicitly.
"""

from __future__ import annotations

import numpy as np

from ..lang import types as T
from ..lang.errors import PlanPRuntimeError
from .context import ExecutionContext
from .primitives import register, sig

MAGIC = b"SIMG"
HEADER_BYTES = 9


def encode_image(pixels: np.ndarray, bits: int = 8) -> bytes:
    """Build a SIMG blob from a 2-D uint8 array."""
    if pixels.ndim != 2:
        raise ValueError("pixels must be a 2-D array")
    if not 1 <= bits <= 8:
        raise ValueError("bits per pixel must be in 1..8")
    height, width = pixels.shape
    header = (MAGIC + width.to_bytes(2, "big") + height.to_bytes(2, "big")
              + bytes([bits]))
    return header + pixels.astype(np.uint8).tobytes()


def decode_image(blob: bytes) -> tuple[np.ndarray, int]:
    """Parse a SIMG blob into (pixels, bits); raises BadPacket."""
    if len(blob) < HEADER_BYTES or blob[:4] != MAGIC:
        raise PlanPRuntimeError("not a SIMG image",
                                exception_name="BadPacket")
    width = int.from_bytes(blob[4:6], "big")
    height = int.from_bytes(blob[6:8], "big")
    bits = blob[8]
    if not 1 <= bits <= 8:
        raise PlanPRuntimeError(f"bad bit depth {bits}",
                                exception_name="BadPacket")
    expected = width * height
    body = blob[HEADER_BYTES:]
    if len(body) != expected:
        raise PlanPRuntimeError(
            f"image body is {len(body)} bytes, header says {expected}",
            exception_name="BadPacket")
    pixels = np.frombuffer(body, np.uint8).reshape(height, width)
    return pixels, bits


def downscale(pixels: np.ndarray) -> np.ndarray:
    """2x2 box filter; odd edges are dropped (like the classic pyramid)."""
    height, width = pixels.shape
    height -= height % 2
    width -= width % 2
    if height == 0 or width == 0:
        return pixels[:1, :1].copy()
    trimmed = pixels[:height, :width].astype(np.uint16)
    pooled = (trimmed[0::2, 0::2] + trimmed[0::2, 1::2]
              + trimmed[1::2, 0::2] + trimmed[1::2, 1::2]) // 4
    return pooled.astype(np.uint8)


def quantize(pixels: np.ndarray, bits: int) -> np.ndarray:
    """Keep the top ``bits`` bits of each pixel (left-aligned)."""
    shift = 8 - bits
    return ((pixels >> shift) << shift).astype(np.uint8)


# ---------------------------------------------------------------------------
# Primitive implementations
# ---------------------------------------------------------------------------


def _impl_is_image(ctx: ExecutionContext, a: list[object]) -> object:
    blob = a[0]
    try:
        decode_image(blob)  # type: ignore[arg-type]
        return True
    except PlanPRuntimeError:
        return False


def _impl_width(ctx: ExecutionContext, a: list[object]) -> object:
    pixels, _bits = decode_image(a[0])  # type: ignore[arg-type]
    return int(pixels.shape[1])


def _impl_height(ctx: ExecutionContext, a: list[object]) -> object:
    pixels, _bits = decode_image(a[0])  # type: ignore[arg-type]
    return int(pixels.shape[0])


def _impl_depth(ctx: ExecutionContext, a: list[object]) -> object:
    _pixels, bits = decode_image(a[0])  # type: ignore[arg-type]
    return int(bits)


def _impl_downscale(ctx: ExecutionContext, a: list[object]) -> object:
    pixels, bits = decode_image(a[0])  # type: ignore[arg-type]
    return encode_image(downscale(pixels), bits)


def _impl_quantize(ctx: ExecutionContext, a: list[object]) -> object:
    blob, bits = a
    if not 1 <= bits <= 8:  # type: ignore[operator]
        raise PlanPRuntimeError(f"bad target depth {bits}",
                                exception_name="BadPacket")
    pixels, _old = decode_image(blob)  # type: ignore[arg-type]
    return encode_image(quantize(pixels, bits),  # type: ignore[arg-type]
                        bits)  # type: ignore[arg-type]


def _impl_distill(ctx: ExecutionContext, a: list[object]) -> object:
    blob, budget = a
    if budget < HEADER_BYTES + 1:  # type: ignore[operator]
        raise PlanPRuntimeError(f"budget {budget} too small",
                                exception_name="BadPacket")
    pixels, bits = decode_image(blob)  # type: ignore[arg-type]
    current = blob
    while len(current) > budget:  # type: ignore[arg-type]
        if pixels.size <= 1:
            break
        pixels = downscale(pixels)
        current = encode_image(pixels, bits)
    return current


register("imgIs", sig([T.BLOB], T.BOOL), _impl_is_image)
register("imgWidth", sig([T.BLOB], T.INT), _impl_width,
         may_raise=("BadPacket",))
register("imgHeight", sig([T.BLOB], T.INT), _impl_height,
         may_raise=("BadPacket",))
register("imgDepth", sig([T.BLOB], T.INT), _impl_depth,
         may_raise=("BadPacket",))
register("imgDownscale", sig([T.BLOB], T.BLOB), _impl_downscale,
         may_raise=("BadPacket",))
register("imgQuantize", sig([T.BLOB, T.INT], T.BLOB), _impl_quantize,
         may_raise=("BadPacket",))
register("imgDistill", sig([T.BLOB, T.INT], T.BLOB), _impl_distill,
         may_raise=("BadPacket",))
