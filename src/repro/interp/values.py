"""Run-time value domain of PLAN-P.

The representation piggybacks on Python values where that is unambiguous:

=============  ==========================================
PLAN-P type    Python representation
=============  ==========================================
int            ``int``
bool           ``bool``
string         ``str``
char           one-character ``str`` (distinguished by static type)
unit           :data:`UNIT` (a singleton)
host           :class:`repro.net.addresses.HostAddr`
blob           ``bytes``
ip             :class:`repro.net.packet.IpHeader`
tcp            :class:`repro.net.packet.TcpHeader`
udp            :class:`repro.net.packet.UdpHeader`
tuple          Python ``tuple`` (length >= 2)
hash_table     :class:`PlanPTable`
list           :class:`PlanPList`
=============  ==========================================

Only ``hash_table`` is mutable, matching the paper's use of hash tables as
channel state that records connections across packets.
"""

from __future__ import annotations

from typing import Iterable

from ..lang import types as T
from ..net.addresses import HostAddr
from ..net.packet import IpHeader, TcpHeader, UdpHeader


class _UnitType:
    """The PLAN-P unit value ``()``."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _UnitType)

    def __hash__(self) -> int:
        return hash("planp-unit")


UNIT = _UnitType()


class PlanPTable:
    """A bounded hash table (``mkTable(n)``), the only mutable value.

    The capacity argument mirrors the paper's ``mkTable(256)``; insertion
    beyond capacity evicts the least-recently-inserted entry, modelling a
    fixed-size kernel table rather than failing — a router ASP must keep
    running when its connection table fills.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("table capacity must be positive")
        self.capacity = capacity
        self._entries: dict[object, object] = {}

    def get(self, key: object) -> object:
        """Return the value for ``key``; raises ``KeyError`` if missing."""
        return self._entries[key]

    def get_default(self, key: object, default: object) -> object:
        return self._entries.get(key, default)

    def put(self, key: object, value: object) -> None:
        if key not in self._entries and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        # Reinsert to refresh insertion order (LRU-by-insertion eviction).
        self._entries.pop(key, None)
        self._entries[key] = value

    def remove(self, key: object) -> None:
        self._entries.pop(key, None)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()

    def __repr__(self) -> str:
        return f"PlanPTable({len(self._entries)}/{self.capacity})"


class PlanPList:
    """An immutable list value, built with ``::`` and ``listNew()``."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[object] = ()):
        object.__setattr__(self, "items", tuple(items))

    def cons(self, head: object) -> "PlanPList":
        return PlanPList((head, *self.items))

    @property
    def head(self) -> object:
        if not self.items:
            raise IndexError("head of empty list")
        return self.items[0]

    @property
    def tail(self) -> "PlanPList":
        if not self.items:
            raise IndexError("tail of empty list")
        return PlanPList(self.items[1:])

    def reversed(self) -> "PlanPList":
        return PlanPList(tuple(reversed(self.items)))

    def __len__(self) -> int:
        return len(self.items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PlanPList) and self.items == other.items

    def __hash__(self) -> int:
        return hash(("planp-list", self.items))

    def __repr__(self) -> str:
        return "[" + ", ".join(map(format_value, self.items)) + "]"


def format_value(value: object) -> str:
    """Render a PLAN-P value the way ``println`` prints it."""
    if value is UNIT:
        return "()"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, HostAddr):
        return str(value)
    if isinstance(value, bytes):
        return f"<blob {len(value)}B>"
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    if isinstance(value, IpHeader):
        return f"<ip {value.src}->{value.dst} ttl={value.ttl}>"
    if isinstance(value, TcpHeader):
        return f"<tcp {value.src_port}->{value.dst_port}>"
    if isinstance(value, UdpHeader):
        return f"<udp {value.src_port}->{value.dst_port}>"
    return str(value)


def default_value(ty: T.Type) -> object:
    """The zero value of a type — used for channel state before initstate."""
    if ty == T.INT:
        return 0
    if ty == T.BOOL:
        return False
    if ty in (T.STRING,):
        return ""
    if ty == T.CHAR:
        return "\0"
    if ty == T.UNIT:
        return UNIT
    if ty == T.HOST:
        return HostAddr(0)
    if ty == T.BLOB:
        return b""
    if ty == T.IP:
        return IpHeader()
    if ty == T.TCP:
        return TcpHeader()
    if ty == T.UDP:
        return UdpHeader()
    if isinstance(ty, T.TupleType):
        return tuple(default_value(e) for e in ty.elems)
    if isinstance(ty, T.HashTableType):
        return PlanPTable(256)
    if isinstance(ty, T.ListType):
        return PlanPList()
    raise ValueError(f"no default value for type {ty}")


_TYPE_OF_PYTHON = {
    bool: T.BOOL,   # must precede int: bool is a subclass of int
    int: T.INT,
    str: T.STRING,
    bytes: T.BLOB,
    HostAddr: T.HOST,
    IpHeader: T.IP,
    TcpHeader: T.TCP,
    UdpHeader: T.UDP,
}


def conforms(value: object, ty: T.Type) -> bool:
    """True if ``value`` is a legal inhabitant of ``ty``.

    Used by the runtime to dispatch raw packets onto overloaded
    ``network`` channels and to validate states handed across the
    host/ASP boundary.
    """
    if ty == T.UNIT:
        return value is UNIT
    if ty == T.BOOL:
        return isinstance(value, bool)
    if ty == T.INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if ty == T.CHAR:
        return isinstance(value, str) and len(value) == 1
    if ty == T.STRING:
        return isinstance(value, str)
    if ty == T.BLOB:
        return isinstance(value, bytes)
    if ty == T.HOST:
        return isinstance(value, HostAddr)
    if ty == T.IP:
        return isinstance(value, IpHeader)
    if ty == T.TCP:
        return isinstance(value, TcpHeader)
    if ty == T.UDP:
        return isinstance(value, UdpHeader)
    if isinstance(ty, T.TupleType):
        return (isinstance(value, tuple) and len(value) == len(ty.elems)
                and all(conforms(v, e) for v, e in zip(value, ty.elems)))
    if isinstance(ty, T.HashTableType):
        return isinstance(value, PlanPTable)
    if isinstance(ty, T.ListType):
        return (isinstance(value, PlanPList)
                and all(conforms(v, ty.elem) for v in value.items))
    return False


def values_equal(a: object, b: object) -> bool:
    """PLAN-P structural equality (``=``).

    The type checker guarantees both operands share an equality type, so a
    plain ``==`` is sound for every representation we use.
    """
    return a == b
