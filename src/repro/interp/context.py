"""Execution context: the boundary between an ASP and its node.

Every PLAN-P primitive that touches the outside world (packet emission,
clocks, link monitoring, console output) goes through an
:class:`ExecutionContext`.  The node's PLAN-P layer implements it against
the simulator; tests use :class:`RecordingContext`, which records
emissions and serves canned monitor readings.

This is exactly the paper's architecture: the interpreter is "portable"
because all OS interaction is behind a small primitive API, and the same
boundary is preserved by the generated JIT.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from ..net.addresses import HostAddr


class ExecutionContext(Protocol):
    """Host services available to an executing PLAN-P program."""

    def emit_remote(self, channel: str, packet_value: tuple) -> None:
        """``OnRemote(chan, pkt)`` — route ``pkt`` toward its IP
        destination; the next PLAN-P node runs channel ``chan`` on it."""

    def emit_neighbor(self, channel: str, packet_value: tuple,
                      neighbor: HostAddr) -> None:
        """``OnNeighbor(chan, pkt, h)`` — hand ``pkt`` to the directly
        connected neighbor ``h`` without IP routing."""

    def deliver(self, packet_value: tuple) -> None:
        """``deliver(pkt)`` — pass ``pkt`` up to the local application."""

    def drop(self, packet_value: tuple) -> None:
        """``drop(pkt)`` — intentionally discard (counted by the node)."""

    def this_host(self) -> HostAddr:
        """The address of the executing node."""

    def time_ms(self) -> int:
        """Current time in milliseconds."""

    def link_load(self, toward: HostAddr) -> int:
        """Measured traffic (kbit/s) on the outgoing link toward an
        address — the router-local measurement that makes adaptation
        immediate (paper §3.1)."""

    def link_bandwidth(self, toward: HostAddr) -> int:
        """Capacity (kbit/s) of the outgoing link toward an address."""

    def queue_len(self, toward: HostAddr) -> int:
        """Packets queued on the outgoing link toward an address."""

    def random_int(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)`` from the node's RNG."""

    def output(self, text: str) -> None:
        """Console output (``print``/``println``)."""


@dataclass
class Emission:
    """One recorded packet emission (for tests and tracing)."""

    kind: str  # "remote" | "neighbor" | "deliver" | "drop"
    channel: str | None
    packet_value: tuple
    neighbor: HostAddr | None = None


@dataclass
class RecordingContext:
    """A stand-alone context for unit tests and offline execution.

    Monitor readings are served from the ``loads`` / ``bandwidths`` /
    ``queues`` dicts (keyed by address), with scalar fallbacks.
    """

    host: HostAddr = field(default_factory=lambda: HostAddr.parse("127.0.0.1"))
    now_ms: int = 0
    default_load: int = 0
    default_bandwidth: int = 10_000
    default_queue: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self.emissions: list[Emission] = []
        self.printed: list[str] = []
        self.loads: dict[HostAddr, int] = {}
        self.bandwidths: dict[HostAddr, int] = {}
        self.queues: dict[HostAddr, int] = {}
        self._rng = random.Random(self.seed)

    # -- emission ------------------------------------------------------------

    def emit_remote(self, channel: str, packet_value: tuple) -> None:
        self.emissions.append(Emission("remote", channel, packet_value))

    def emit_neighbor(self, channel: str, packet_value: tuple,
                      neighbor: HostAddr) -> None:
        self.emissions.append(
            Emission("neighbor", channel, packet_value, neighbor))

    def deliver(self, packet_value: tuple) -> None:
        self.emissions.append(Emission("deliver", None, packet_value))

    def drop(self, packet_value: tuple) -> None:
        self.emissions.append(Emission("drop", None, packet_value))

    # -- environment -----------------------------------------------------------

    def this_host(self) -> HostAddr:
        return self.host

    def time_ms(self) -> int:
        return self.now_ms

    def link_load(self, toward: HostAddr) -> int:
        return self.loads.get(toward, self.default_load)

    def link_bandwidth(self, toward: HostAddr) -> int:
        return self.bandwidths.get(toward, self.default_bandwidth)

    def queue_len(self, toward: HostAddr) -> int:
        return self.queues.get(toward, self.default_queue)

    def random_int(self, bound: int) -> int:
        return self._rng.randrange(bound) if bound > 0 else 0

    def output(self, text: str) -> None:
        self.printed.append(text)

    # -- test helpers ------------------------------------------------------------

    @property
    def remote_emissions(self) -> list[Emission]:
        return [e for e in self.emissions if e.kind == "remote"]

    @property
    def delivered(self) -> list[Emission]:
        return [e for e in self.emissions if e.kind == "deliver"]
