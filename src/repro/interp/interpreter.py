"""The portable PLAN-P interpreter.

This is the reproduction's analogue of the paper's ≈8000-line C
interpreter: a straightforward environment-passing AST walker.  The JIT
(:mod:`repro.jit.specializer`) is *derived from this module* — it has one
specialisation case per evaluation case below, and a test
(`tests/jit/test_coverage.py`) asserts the two stay in sync, reproducing
the paper's "evolve the interpreter, regenerate the specializer" claim.

New functionality is debugged here first (paper §1: "new functionalities
can be tested within the interpreter, as long as good performance is not
required").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..lang import ast
from ..lang.errors import PlanPRuntimeError
from ..obs import GLOBAL
from .context import ExecutionContext

if TYPE_CHECKING:  # avoid a cycle: typechecker imports the primitives
    from ..lang.typechecker import ProgramInfo
from .env import Env
from .primitives import PRIMITIVES
from .values import UNIT, values_equal


class Interpreter:
    """Evaluates channel invocations of a type-checked program."""

    def __init__(self, info: ProgramInfo):
        self._info = info
        self._globals: Env | None = None

    # -- program-level evaluation ------------------------------------------------

    def on_install(self, ctx: ExecutionContext) -> None:
        """(Re)installation hook: forget the cached globals env.

        Top-level vals may read node state (``thisHost()``, clocks), so a
        program moved to another node must re-evaluate them against the
        new node's context instead of reading the first node's forever.
        """
        self._globals = None

    def globals_env(self, ctx: ExecutionContext) -> Env:
        """The environment of top-level ``val`` bindings.

        Evaluated once per protocol instance, at install time — top-level
        vals may allocate tables shared across packets.
        """
        if self._globals is None:
            # Publish the (partial) environment first: a val initialiser
            # may call a fun, whose body is evaluated against the
            # globals env; declaration order guarantees it only reads
            # already-bound names.
            env = Env()
            self._globals = env
            for decl in self._info.program.vals:
                env.bind(decl.name, self.eval(decl.value, env, ctx))
        return self._globals

    def initial_channel_state(self, decl: ast.ChannelDecl,
                              ctx: ExecutionContext) -> object:
        """Evaluate ``initstate`` (or the type's zero value)."""
        from .values import default_value

        if decl.initstate is not None:
            return self.eval(decl.initstate, self.globals_env(ctx), ctx)
        return default_value(decl.channel_state_type)

    def run_channel(self, decl: ast.ChannelDecl, protocol_state: object,
                    channel_state: object, packet_value: tuple,
                    ctx: ExecutionContext) -> tuple[object, object]:
        """Process one packet: returns the new ``(ps, ss)`` pair.

        The global counter is looked up per invocation (not captured at
        import) so it survives test-isolation resets; the lookup is
        noise against the ~10µs the AST walk costs per packet.
        """
        GLOBAL.metrics.counter("interp.invocations_total").inc()
        env = self.globals_env(ctx).child()
        env.bind(decl.params[0].name, protocol_state)
        env.bind(decl.params[1].name, channel_state)
        env.bind(decl.params[2].name, packet_value)
        result = self.eval(decl.body, env, ctx)
        if not isinstance(result, tuple) or len(result) != 2:
            raise PlanPRuntimeError(
                f"channel {decl.name} returned {result!r}, expected a "
                f"(protocol state, channel state) pair", decl.pos)
        return result[0], result[1]

    # -- expression evaluation -----------------------------------------------------
    #
    # One case per AST node.  The specializer mirrors this structure.

    def eval(self, expr: ast.Expr, env: Env, ctx: ExecutionContext) -> object:
        kind = type(expr)

        if kind is ast.IntLit:
            return expr.value
        if kind is ast.BoolLit:
            return expr.value
        if kind is ast.StringLit:
            return expr.value
        if kind is ast.CharLit:
            return expr.value
        if kind is ast.UnitLit:
            return UNIT
        if kind is ast.HostLit:
            from ..net.addresses import HostAddr

            return HostAddr.parse(expr.value)
        if kind is ast.Var:
            return env.lookup(expr.name)
        if kind is ast.BinOp:
            return self._eval_binop(expr, env, ctx)
        if kind is ast.UnOp:
            operand = self.eval(expr.operand, env, ctx)
            if expr.op == "not":
                return not operand
            return -operand  # type: ignore[operator]
        if kind is ast.If:
            if self.eval(expr.cond, env, ctx):
                return self.eval(expr.then, env, ctx)
            return self.eval(expr.orelse, env, ctx)
        if kind is ast.Let:
            inner = env.child()
            for binding in expr.bindings:
                inner.bind(binding.name, self.eval(binding.value, inner, ctx))
            return self.eval(expr.body, inner, ctx)
        if kind is ast.Seq:
            result: object = UNIT
            for e in expr.exprs:
                result = self.eval(e, env, ctx)
            return result
        if kind is ast.TupleExpr:
            return tuple(self.eval(e, env, ctx) for e in expr.elems)
        if kind is ast.Proj:
            value = self.eval(expr.tuple_expr, env, ctx)
            return value[expr.index - 1]  # type: ignore[index]
        if kind is ast.Call:
            return self._eval_call(expr, env, ctx)
        if kind is ast.Try:
            try:
                return self.eval(expr.body, env, ctx)
            except PlanPRuntimeError as err:
                if expr.exn in ("_", err.exception_name):
                    return self.eval(expr.handler, env, ctx)
                raise
        if kind is ast.Raise:
            raise PlanPRuntimeError(f"exception {expr.exn}", expr.pos,
                                    exception_name=expr.exn)
        raise TypeError(f"interpreter cannot evaluate {kind.__name__}")

    def _eval_binop(self, expr: ast.BinOp, env: Env,
                    ctx: ExecutionContext) -> object:
        op = expr.op
        # Short-circuit operators evaluate the right operand lazily.
        if op == "andalso":
            return (self.eval(expr.left, env, ctx)
                    and self.eval(expr.right, env, ctx))
        if op == "orelse":
            return (self.eval(expr.left, env, ctx)
                    or self.eval(expr.right, env, ctx))
        left = self.eval(expr.left, env, ctx)
        right = self.eval(expr.right, env, ctx)
        if op == "+":
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            if right == 0:
                raise PlanPRuntimeError("division by zero", expr.pos,
                                        exception_name="DivideByZero")
            return _sml_div(left, right)  # type: ignore[arg-type]
        if op == "mod":
            if right == 0:
                raise PlanPRuntimeError("mod by zero", expr.pos,
                                        exception_name="DivideByZero")
            return left % right  # type: ignore[operator]
        if op == "^":
            return left + right  # type: ignore[operator]
        if op == "=":
            return values_equal(left, right)
        if op == "<>":
            return not values_equal(left, right)
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
        if op == "::":
            return right.cons(left)  # type: ignore[union-attr]
        raise TypeError(f"unknown operator {op!r}")

    def _eval_call(self, expr: ast.Call, env: Env,
                   ctx: ExecutionContext) -> object:
        name = expr.func
        if name == "OnRemote":
            packet = self.eval(expr.args[1], env, ctx)
            ctx.emit_remote(expr.args[0].name,  # type: ignore[union-attr]
                            packet)  # type: ignore[arg-type]
            return UNIT
        if name == "OnNeighbor":
            packet = self.eval(expr.args[1], env, ctx)
            neighbor = self.eval(expr.args[2], env, ctx)
            ctx.emit_neighbor(expr.args[0].name,  # type: ignore[union-attr]
                              packet, neighbor)  # type: ignore[arg-type]
            return UNIT
        if name in self._info.funs:
            info = self._info.funs[name]
            args = [self.eval(a, env, ctx) for a in expr.args]
            call_env = self.globals_env(ctx).child()
            for param, value in zip(info.decl.params, args):
                call_env.bind(param.name, value)
            return self.eval(info.decl.body, call_env, ctx)
        prim = PRIMITIVES[name]
        args = [self.eval(a, env, ctx) for a in expr.args]
        return prim.impl(ctx, args)


def _sml_div(left: int, right: int) -> int:
    """Integer division truncating toward zero (C semantics, matching the
    paper's C interpreter) rather than Python's floor division."""
    q = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        return -q
    return q
