"""Lexical environments for the PLAN-P interpreter."""

from __future__ import annotations


class Env:
    """A chained mapping from names to run-time values.

    Lookup failures are programming errors (the type checker guarantees
    scoping), so they raise ``KeyError`` rather than a PLAN-P exception.
    """

    __slots__ = ("_bindings", "_parent")

    def __init__(self, parent: "Env | None" = None,
                 bindings: dict[str, object] | None = None):
        self._parent = parent
        self._bindings: dict[str, object] = bindings or {}

    def bind(self, name: str, value: object) -> None:
        self._bindings[name] = value

    def lookup(self, name: str) -> object:
        env: Env | None = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise KeyError(f"unbound variable {name!r} (type checker bug?)")

    def child(self) -> "Env":
        return Env(parent=self)
