"""Compression primitives (paper §1: ASPs "perform various operations
on packets (e.g., (un-)compression, data filtering, string matching)").

DEFLATE via the standard library; level is fixed so the interpreter and
both JITs are bit-identical.  ``blobDecompress`` raises ``BadPacket`` on
garbage, so filters must guard with ``try``/``handle`` — which the
delivery analysis then insists is handled.
"""

from __future__ import annotations

import zlib

from ..lang import types as T
from ..lang.errors import PlanPRuntimeError
from .context import ExecutionContext
from .primitives import register, sig

#: Deterministic compression level.
LEVEL = 6


def _impl_compress(ctx: ExecutionContext, a: list[object]) -> object:
    return zlib.compress(a[0], LEVEL)  # type: ignore[arg-type]


def _impl_decompress(ctx: ExecutionContext, a: list[object]) -> object:
    try:
        return zlib.decompress(a[0])  # type: ignore[arg-type]
    except zlib.error:
        raise PlanPRuntimeError("not a DEFLATE stream",
                                exception_name="BadPacket")


def _impl_is_compressed(ctx: ExecutionContext, a: list[object]) -> object:
    blob = a[0]
    # zlib header: 0x78 CMF with a valid FCHECK byte.
    if not isinstance(blob, bytes) or len(blob) < 2 or blob[0] != 0x78:
        return False
    return ((blob[0] << 8) | blob[1]) % 31 == 0


register("blobCompress", sig([T.BLOB], T.BLOB), _impl_compress)
register("blobDecompress", sig([T.BLOB], T.BLOB), _impl_decompress,
         may_raise=("BadPacket",))
register("blobIsCompressed", sig([T.BLOB], T.BOOL), _impl_is_compressed)
