"""The PLAN-P primitive library.

Following the paper (§2.3), each primitive is a pair of functions: one
performs the calculation, the other computes the result type from the
argument types.  Registering a new primitive automatically extends the
interpreter, the type checker, *and* the generated JIT (which calls the
same implementations), reproducing the "extend the interpreter, then
regenerate the specializer" workflow.

The emission primitives ``OnRemote`` and ``OnNeighbor`` are *not* in this
registry: their first argument is a channel name, not a value, so the
type checker, interpreter, specializer and analyses treat them as syntax
(see their handling in :mod:`repro.lang.typechecker` and
:mod:`repro.interp.interpreter`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..lang import types as T
from ..lang.errors import PlanPRuntimeError, SourcePos, TypeCheckError
from ..net.addresses import HostAddr
from ..net.packet import IpHeader, TcpHeader, UdpHeader
from .context import ExecutionContext
from .values import UNIT, PlanPList, PlanPTable, format_value

TypeRule = Callable[[list[T.Type], SourcePos], T.Type]
Impl = Callable[[ExecutionContext, list[object]], object]

#: Names of channel-argument emission primitives, special-cased everywhere.
EMISSION_PRIMS = ("OnRemote", "OnNeighbor")

#: Built-in exception constructors that primitives may raise.
BUILTIN_EXCEPTIONS = ("NotFound", "Subscript", "HeadEmpty", "DivideByZero",
                      "BadInt", "BadPacket")


@dataclass(frozen=True)
class Primitive:
    """One registered primitive."""

    name: str
    type_rule: TypeRule
    impl: Impl
    #: may raise a PLAN-P exception at run time (delivery analysis input)
    may_raise: tuple[str, ...] = ()
    #: consumes the packet like a send (delivery analysis treats as exit)
    is_exit: bool = False
    #: reads or writes the outside world through the context
    effectful: bool = False


PRIMITIVES: dict[str, Primitive] = {}


def register(name: str, type_rule: TypeRule, impl: Impl, *,
             may_raise: tuple[str, ...] = (), is_exit: bool = False,
             effectful: bool = False) -> None:
    """Add a primitive to the global registry (idempotent re-registration
    is an error to catch accidental name collisions)."""
    if name in PRIMITIVES:
        raise ValueError(f"primitive {name!r} already registered")
    PRIMITIVES[name] = Primitive(name, type_rule, impl, may_raise=may_raise,
                                 is_exit=is_exit, effectful=effectful)


def _raise(exn: str, message: str) -> PlanPRuntimeError:
    return PlanPRuntimeError(message, exception_name=exn)


# ---------------------------------------------------------------------------
# Type-rule helpers
# ---------------------------------------------------------------------------


def sig(params: list[T.Type], result: T.Type) -> TypeRule:
    """A fixed-arity monomorphic signature."""

    def rule(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
        if len(arg_types) != len(params):
            raise TypeCheckError(
                f"expected {len(params)} argument(s), got {len(arg_types)}",
                pos)
        for i, (want, got) in enumerate(zip(params, arg_types), start=1):
            if not T.compatible(want, got):
                raise TypeCheckError(
                    f"argument {i} has type {got}, expected {want}", pos)
        return result

    return rule


def _arity(arg_types: list[T.Type], pos: SourcePos, n: int,
           name: str) -> None:
    if len(arg_types) != n:
        raise TypeCheckError(
            f"{name} expects {n} argument(s), got {len(arg_types)}", pos)


def _packet_rule(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 1, "packet operation")
    t = arg_types[0]
    if not (isinstance(t, T.TupleType) and t.elems
            and T.compatible(t.elems[0], T.IP)):
        raise TypeCheckError(
            f"expected a packet tuple (ip*...), got {t}", pos)
    return T.UNIT


# ---------------------------------------------------------------------------
# IP header primitives
# ---------------------------------------------------------------------------


register("ipSrc", sig([T.IP], T.HOST),
         lambda ctx, a: a[0].src)
register("ipDst", sig([T.IP], T.HOST),
         lambda ctx, a: a[0].dst)
register("ipSrcSet", sig([T.IP, T.HOST], T.IP),
         lambda ctx, a: a[0].with_src(a[1]))
register("ipDestSet", sig([T.IP, T.HOST], T.IP),
         lambda ctx, a: a[0].with_dst(a[1]))
register("ipTTL", sig([T.IP], T.INT),
         lambda ctx, a: a[0].ttl)
register("ipProto", sig([T.IP], T.INT),
         lambda ctx, a: a[0].proto)
register("ipTos", sig([T.IP], T.INT),
         lambda ctx, a: a[0].tos)
register("ipTosSet", sig([T.IP, T.INT], T.IP),
         lambda ctx, a: IpHeader(src=a[0].src, dst=a[0].dst, ttl=a[0].ttl,
                                 proto=a[0].proto, tos=a[1]))
register("ipSwap", sig([T.IP], T.IP),
         lambda ctx, a: a[0].swapped())
register("ipMk", sig([T.HOST, T.HOST], T.IP),
         lambda ctx, a: IpHeader(src=a[0], dst=a[1]))


# ---------------------------------------------------------------------------
# TCP header primitives
# ---------------------------------------------------------------------------


register("tcpSrc", sig([T.TCP], T.INT),
         lambda ctx, a: a[0].src_port)
register("tcpDst", sig([T.TCP], T.INT),
         lambda ctx, a: a[0].dst_port)
register("tcpSrcSet", sig([T.TCP, T.INT], T.TCP),
         lambda ctx, a: a[0].with_src_port(a[1]))
register("tcpDstSet", sig([T.TCP, T.INT], T.TCP),
         lambda ctx, a: a[0].with_dst_port(a[1]))
register("tcpSeq", sig([T.TCP], T.INT),
         lambda ctx, a: a[0].seq)
register("tcpAck", sig([T.TCP], T.INT),
         lambda ctx, a: a[0].ack)
register("tcpSyn", sig([T.TCP], T.BOOL),
         lambda ctx, a: a[0].syn)
register("tcpFin", sig([T.TCP], T.BOOL),
         lambda ctx, a: a[0].fin)
register("tcpAckFlag", sig([T.TCP], T.BOOL),
         lambda ctx, a: a[0].ack_flag)
register("tcpRst", sig([T.TCP], T.BOOL),
         lambda ctx, a: a[0].rst)
register("tcpSwap", sig([T.TCP], T.TCP),
         lambda ctx, a: a[0].swapped())
register("tcpMk", sig([T.INT, T.INT], T.TCP),
         lambda ctx, a: TcpHeader(src_port=a[0], dst_port=a[1]))


# ---------------------------------------------------------------------------
# UDP header primitives
# ---------------------------------------------------------------------------


register("udpSrc", sig([T.UDP], T.INT),
         lambda ctx, a: a[0].src_port)
register("udpDst", sig([T.UDP], T.INT),
         lambda ctx, a: a[0].dst_port)
register("udpSrcSet", sig([T.UDP, T.INT], T.UDP),
         lambda ctx, a: a[0].with_src_port(a[1]))
register("udpDstSet", sig([T.UDP, T.INT], T.UDP),
         lambda ctx, a: a[0].with_dst_port(a[1]))
register("udpSwap", sig([T.UDP], T.UDP),
         lambda ctx, a: a[0].swapped())
register("udpMk", sig([T.INT, T.INT], T.UDP),
         lambda ctx, a: UdpHeader(src_port=a[0], dst_port=a[1]))


# ---------------------------------------------------------------------------
# Delivery / drop (exits that are not channel sends)
# ---------------------------------------------------------------------------


def _impl_deliver(ctx: ExecutionContext, a: list[object]) -> object:
    ctx.deliver(a[0])
    return UNIT


def _impl_drop(ctx: ExecutionContext, a: list[object]) -> object:
    ctx.drop(a[0])
    return UNIT


register("deliver", _packet_rule, _impl_deliver, is_exit=True,
         effectful=True)
register("drop", _packet_rule, _impl_drop, effectful=True)


# ---------------------------------------------------------------------------
# Blob primitives
# ---------------------------------------------------------------------------


def _check_sub(blob: bytes, start: int, length: int) -> None:
    if start < 0 or length < 0 or start + length > len(blob):
        raise _raise("Subscript",
                     f"blob range [{start}, {start + length}) out of "
                     f"bounds for {len(blob)}-byte blob")


def _impl_blob_byte(ctx: ExecutionContext, a: list[object]) -> object:
    blob, idx = a
    if not 0 <= idx < len(blob):
        raise _raise("Subscript", f"blob index {idx} out of bounds "
                                  f"for {len(blob)}-byte blob")
    return blob[idx]


def _impl_blob_sub(ctx: ExecutionContext, a: list[object]) -> object:
    blob, start, length = a
    _check_sub(blob, start, length)
    return blob[start:start + length]


def _impl_blob_int(ctx: ExecutionContext, a: list[object]) -> object:
    blob, off = a
    _check_sub(blob, off, 4)
    return int.from_bytes(blob[off:off + 4], "big", signed=True)


def _impl_blob_with_int(ctx: ExecutionContext, a: list[object]) -> object:
    blob, off, value = a
    _check_sub(blob, off, 4)
    word = int(value) & 0xFFFFFFFF
    return blob[:off] + word.to_bytes(4, "big") + blob[off + 4:]


def _impl_blob_with_byte(ctx: ExecutionContext, a: list[object]) -> object:
    blob, idx, value = a
    _check_sub(blob, idx, 1)
    return blob[:idx] + bytes([value & 0xFF]) + blob[idx + 1:]


register("blobLen", sig([T.BLOB], T.INT), lambda ctx, a: len(a[0]))
register("blobByte", sig([T.BLOB, T.INT], T.INT), _impl_blob_byte,
         may_raise=("Subscript",))
register("blobSub", sig([T.BLOB, T.INT, T.INT], T.BLOB), _impl_blob_sub,
         may_raise=("Subscript",))
register("blobCat", sig([T.BLOB, T.BLOB], T.BLOB),
         lambda ctx, a: a[0] + a[1])
register("blobInt", sig([T.BLOB, T.INT], T.INT), _impl_blob_int,
         may_raise=("Subscript",))
register("blobWithInt", sig([T.BLOB, T.INT, T.INT], T.BLOB),
         _impl_blob_with_int, may_raise=("Subscript",))
register("blobWithByte", sig([T.BLOB, T.INT, T.INT], T.BLOB),
         _impl_blob_with_byte, may_raise=("Subscript",))
register("blobOfString", sig([T.STRING], T.BLOB),
         lambda ctx, a: a[0].encode("latin-1", errors="replace"))
register("stringOfBlob", sig([T.BLOB], T.STRING),
         lambda ctx, a: a[0].decode("latin-1"))
register("blobIndex", sig([T.BLOB, T.STRING], T.INT),
         lambda ctx, a: a[0].find(a[1].encode("latin-1", errors="replace")))
register("blobEmpty", sig([], T.BLOB), lambda ctx, a: b"")


# ---------------------------------------------------------------------------
# String / char primitives
# ---------------------------------------------------------------------------


def _impl_string_to_int(ctx: ExecutionContext, a: list[object]) -> object:
    try:
        return int(a[0])
    except ValueError:
        raise _raise("BadInt", f"cannot parse integer from {a[0]!r}")


def _impl_str_sub(ctx: ExecutionContext, a: list[object]) -> object:
    s, start, length = a
    if start < 0 or length < 0 or start + length > len(s):
        raise _raise("Subscript", f"string range out of bounds")
    return s[start:start + length]


def _impl_str_field(ctx: ExecutionContext, a: list[object]) -> object:
    s, index, sep = a
    if not sep:
        raise _raise("Subscript", "strField separator must be non-empty")
    fields = s.split(sep)
    if not 0 <= index < len(fields):
        raise _raise("Subscript",
                     f"field {index} missing ({len(fields)} fields)")
    return fields[index]


register("strLen", sig([T.STRING], T.INT), lambda ctx, a: len(a[0]))
register("strCat", sig([T.STRING, T.STRING], T.STRING),
         lambda ctx, a: a[0] + a[1])
register("strSub", sig([T.STRING, T.INT, T.INT], T.STRING), _impl_str_sub,
         may_raise=("Subscript",))
register("strIndex", sig([T.STRING, T.STRING], T.INT),
         lambda ctx, a: a[0].find(a[1]))
register("strField", sig([T.STRING, T.INT, T.STRING], T.STRING),
         _impl_str_field, may_raise=("Subscript",))
register("intToString", sig([T.INT], T.STRING), lambda ctx, a: str(a[0]))
register("stringToInt", sig([T.STRING], T.INT), _impl_string_to_int,
         may_raise=("BadInt",))
register("hostToString", sig([T.HOST], T.STRING), lambda ctx, a: str(a[0]))
register("charPos", sig([T.CHAR], T.INT), lambda ctx, a: ord(a[0]))
register("chr", sig([T.INT], T.CHAR), lambda ctx, a: builtins_chr(a[0]))


def builtins_chr(code: int) -> str:
    if not 0 <= code <= 0x10FFFF:
        raise _raise("Subscript", f"chr code {code} out of range")
    return chr(code)


# ---------------------------------------------------------------------------
# Hash tables
# ---------------------------------------------------------------------------


def _rule_mk_table(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 1, "mkTable")
    if not T.compatible(T.INT, arg_types[0]):
        raise TypeCheckError("mkTable expects an int capacity", pos)
    return T.HashTableType(T.ANY)


def _rule_table_key(arg_types: list[T.Type], pos: SourcePos,
                    name: str) -> T.HashTableType:
    if not isinstance(arg_types[0], T.HashTableType):
        raise TypeCheckError(
            f"{name} expects a hash_table first argument, "
            f"got {arg_types[0]}", pos)
    if not T.is_equality_type(arg_types[1]):
        raise TypeCheckError(
            f"{name} key type {arg_types[1]} does not admit equality", pos)
    return arg_types[0]


def _rule_table_get(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 2, "tableGet")
    return _rule_table_key(arg_types, pos, "tableGet").value


def _rule_table_get_default(arg_types: list[T.Type],
                            pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 3, "tableGetDefault")
    table = _rule_table_key(arg_types, pos, "tableGetDefault")
    if not T.compatible(table.value, arg_types[2]):
        raise TypeCheckError(
            f"default value type {arg_types[2]} does not match table "
            f"value type {table.value}", pos)
    if isinstance(table.value, T.AnyType):
        return arg_types[2]
    return table.value


def _rule_table_set(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 3, "tableSet")
    table = _rule_table_key(arg_types, pos, "tableSet")
    if not T.compatible(table.value, arg_types[2]):
        raise TypeCheckError(
            f"value type {arg_types[2]} does not match table value type "
            f"{table.value}", pos)
    return T.UNIT


def _rule_table_mem(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 2, "tableMem")
    _rule_table_key(arg_types, pos, "tableMem")
    return T.BOOL


def _rule_table_remove(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 2, "tableRemove")
    _rule_table_key(arg_types, pos, "tableRemove")
    return T.UNIT


def _rule_table_size(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 1, "tableSize")
    if not isinstance(arg_types[0], T.HashTableType):
        raise TypeCheckError("tableSize expects a hash_table", pos)
    return T.INT


def _impl_table_get(ctx: ExecutionContext, a: list[object]) -> object:
    table, key = a
    try:
        return table.get(key)
    except KeyError:
        raise _raise("NotFound", f"key {format_value(key)} not in table")


def _impl_table_set(ctx: ExecutionContext, a: list[object]) -> object:
    a[0].put(a[1], a[2])
    return UNIT


def _impl_table_remove(ctx: ExecutionContext, a: list[object]) -> object:
    a[0].remove(a[1])
    return UNIT


# Capacity clamps at 1: a router ASP asking for a degenerate table must
# keep running (same totality stance as eviction-on-overflow), and the
# bare constructor's ValueError must not cross the containment boundary.
register("mkTable", _rule_mk_table,
         lambda ctx, a: PlanPTable(max(1, a[0])))
register("tableGet", _rule_table_get, _impl_table_get,
         may_raise=("NotFound",))
register("tableGetDefault", _rule_table_get_default,
         lambda ctx, a: a[0].get_default(a[1], a[2]))
register("tableSet", _rule_table_set, _impl_table_set)
register("tableMem", _rule_table_mem, lambda ctx, a: a[1] in a[0])
register("tableRemove", _rule_table_remove, _impl_table_remove)
register("tableSize", _rule_table_size, lambda ctx, a: len(a[0]))


# ---------------------------------------------------------------------------
# Lists
# ---------------------------------------------------------------------------


def _rule_list_new(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 0, "listNew")
    return T.ListType(T.ANY)


def _rule_list_arg(arg_types: list[T.Type], pos: SourcePos,
                   name: str) -> T.ListType:
    _arity(arg_types, pos, 1, name)
    if not isinstance(arg_types[0], T.ListType):
        raise TypeCheckError(f"{name} expects a list, got {arg_types[0]}",
                             pos)
    return arg_types[0]


def _rule_list_head(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    return _rule_list_arg(arg_types, pos, "listHead").elem


def _rule_list_tail(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    return _rule_list_arg(arg_types, pos, "listTail")


def _rule_list_len(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _rule_list_arg(arg_types, pos, "listLen")
    return T.INT


def _rule_list_null(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _rule_list_arg(arg_types, pos, "listNull")
    return T.BOOL


def _rule_list_rev(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    return _rule_list_arg(arg_types, pos, "listRev")


def _rule_list_mem(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 2, "listMem")
    if not isinstance(arg_types[1], T.ListType):
        raise TypeCheckError("listMem expects a list second argument", pos)
    if not T.is_equality_type(arg_types[0]):
        raise TypeCheckError(
            f"listMem element type {arg_types[0]} does not admit equality",
            pos)
    return T.BOOL


def _impl_list_head(ctx: ExecutionContext, a: list[object]) -> object:
    try:
        return a[0].head
    except IndexError:
        raise _raise("HeadEmpty", "head of empty list")


def _impl_list_tail(ctx: ExecutionContext, a: list[object]) -> object:
    try:
        return a[0].tail
    except IndexError:
        raise _raise("HeadEmpty", "tail of empty list")


register("listNew", _rule_list_new, lambda ctx, a: PlanPList())
register("listHead", _rule_list_head, _impl_list_head,
         may_raise=("HeadEmpty",))
register("listTail", _rule_list_tail, _impl_list_tail,
         may_raise=("HeadEmpty",))
register("listLen", _rule_list_len, lambda ctx, a: len(a[0]))
register("listNull", _rule_list_null, lambda ctx, a: len(a[0]) == 0)
register("listRev", _rule_list_rev, lambda ctx, a: a[0].reversed())
register("listMem", _rule_list_mem,
         lambda ctx, a: a[0] in a[1].items)


# ---------------------------------------------------------------------------
# Audio transforms (the paper's QoS degradation primitives, §1 and §3.1)
#
# Payloads are raw PCM: signed 16-bit little-endian samples, interleaved
# L/R when stereo; or unsigned 8-bit samples after 16->8 degradation.
# ---------------------------------------------------------------------------


def _pcm16(blob: bytes) -> np.ndarray:
    if len(blob) % 2:
        raise _raise("BadPacket", "odd-length 16-bit PCM payload")
    return np.frombuffer(blob, dtype="<i2")


def _impl_audio_stereo_to_mono(ctx: ExecutionContext,
                               a: list[object]) -> object:
    samples = _pcm16(a[0])
    if len(samples) % 2:
        raise _raise("BadPacket", "stereo PCM with odd sample count")
    pairs = samples.reshape(-1, 2).astype(np.int32)
    mono = (pairs.sum(axis=1) // 2).astype("<i2")
    return mono.tobytes()


def _impl_audio_mono_to_stereo(ctx: ExecutionContext,
                               a: list[object]) -> object:
    samples = _pcm16(a[0])
    return np.repeat(samples, 2).astype("<i2").tobytes()


def _impl_audio_16_to_8(ctx: ExecutionContext, a: list[object]) -> object:
    samples = _pcm16(a[0])
    return ((samples.astype(np.int32) >> 8) + 128).astype(np.uint8).tobytes()


def _impl_audio_8_to_16(ctx: ExecutionContext, a: list[object]) -> object:
    samples = np.frombuffer(a[0], dtype=np.uint8)
    return ((samples.astype(np.int32) - 128) << 8).astype("<i2").tobytes()


register("audioStereoToMono", sig([T.BLOB], T.BLOB),
         _impl_audio_stereo_to_mono, may_raise=("BadPacket",))
register("audioMonoToStereo", sig([T.BLOB], T.BLOB),
         _impl_audio_mono_to_stereo, may_raise=("BadPacket",))
register("audio16to8", sig([T.BLOB], T.BLOB), _impl_audio_16_to_8,
         may_raise=("BadPacket",))
register("audio8to16", sig([T.BLOB], T.BLOB), _impl_audio_8_to_16)


# ---------------------------------------------------------------------------
# Environment: node identity, clocks, link monitoring, randomness, output
# ---------------------------------------------------------------------------


def _impl_random(ctx: ExecutionContext, a: list[object]) -> object:
    return ctx.random_int(a[0])


def _rule_println(arg_types: list[T.Type], pos: SourcePos) -> T.Type:
    _arity(arg_types, pos, 1, "println")
    printable = (T.INT, T.BOOL, T.STRING, T.CHAR, T.HOST, T.UNIT)
    t = arg_types[0]
    if t not in printable and not isinstance(
            t, (T.TupleType, T.AnyType, T.ListType)):
        raise TypeCheckError(f"println cannot print values of type {t}", pos)
    return T.UNIT


def _impl_print(ctx: ExecutionContext, a: list[object]) -> object:
    ctx.output(a[0])
    return UNIT


def _impl_println(ctx: ExecutionContext, a: list[object]) -> object:
    ctx.output(format_value(a[0]) + "\n")
    return UNIT


register("thisHost", sig([], T.HOST), lambda ctx, a: ctx.this_host(),
         effectful=True)
register("getTime", sig([], T.INT), lambda ctx, a: ctx.time_ms(),
         effectful=True)
register("linkLoad", sig([T.HOST], T.INT),
         lambda ctx, a: ctx.link_load(a[0]), effectful=True)
register("linkBandwidth", sig([T.HOST], T.INT),
         lambda ctx, a: ctx.link_bandwidth(a[0]), effectful=True)
register("queueLen", sig([T.HOST], T.INT),
         lambda ctx, a: ctx.queue_len(a[0]), effectful=True)
register("random", sig([T.INT], T.INT), _impl_random, effectful=True)
register("print", sig([T.STRING], T.UNIT), _impl_print, effectful=True)
register("println", _rule_println, _impl_println, effectful=True)
