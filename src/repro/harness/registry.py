"""The experiment registry: one ``run(scenario)`` for every experiment.

Each entry wraps one of the repo's ``run_*`` entry points behind the
uniform shape ``fn(*, seed, **params) -> ExperimentResult``, and names
the result class used to rehydrate stored records (so report code gets
back objects with the domain helper methods, not bare dicts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..experiments.result import ExperimentResult
from .scenario import Scenario


@dataclass(frozen=True)
class RegisteredExperiment:
    name: str
    fn: Callable[..., ExperimentResult]
    result_cls: type[ExperimentResult]
    description: str


_REGISTRY: dict[str, RegisteredExperiment] = {}


def register(name: str, *, result_cls: type[ExperimentResult],
             description: str = "") -> Callable:
    def decorate(fn: Callable[..., ExperimentResult]) -> Callable:
        _REGISTRY[name] = RegisteredExperiment(
            name=name, fn=fn, result_cls=result_cls,
            description=description)
        return fn
    return decorate


def get(name: str) -> RegisteredExperiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; registered: "
                       f"{sorted(_REGISTRY)}") from None


def names() -> list[str]:
    return sorted(_REGISTRY)


def run(scenario: Scenario) -> ExperimentResult:
    """Run one scenario and stamp the result with its identity."""
    reg = get(scenario.experiment)
    result = reg.fn(seed=scenario.seed, **scenario.params)
    result.name = scenario.name
    result.seed = scenario.seed
    result.params = {**result.params, **scenario.params}
    return result


def rehydrate(line: dict[str, Any]) -> ExperimentResult:
    """Rebuild a result object from one stored line (record +
    volatile), using the experiment's result class."""
    record = line["record"]
    cls = get(record["experiment"]).result_cls
    return cls.from_record(record, volatile=line.get("volatile"))


# ---------------------------------------------------------------------------
# Registered experiments (every run_* entry point in the repo)
# ---------------------------------------------------------------------------


def _register_all() -> None:
    from ..apps.audio.experiment import (AudioExperimentResult,
                                         GapSweepResult,
                                         run_audio_experiment,
                                         run_gap_sweep)
    from ..apps.http.experiment import (Fig8SweepResult,
                                        HttpExperimentResult,
                                        run_fig8_sweep,
                                        run_http_experiment)
    from ..apps.images.service import (ImageExperimentResult,
                                       run_image_experiment)
    from ..apps.mpeg.experiment import (MpegExperimentResult,
                                        run_mpeg_experiment)
    from ..experiments.chaos import ChaosResult, run_chaos_experiment
    from ..experiments.upgrade import (UpgradeResult,
                                       run_upgrade_experiment)
    from ..experiments.fig3 import Fig3Result, fig3_codegen_table
    from ..experiments.microbench import (MicrobenchResult,
                                          run_engine_microbench)
    from ..experiments.scale import ScaleResult, run_scale_experiment
    from ..experiments.web import WebResult, run_web_experiment

    register("audio", result_cls=AudioExperimentResult,
             description="figure 5/6 audio adaptation run"
             )(lambda *, seed, **p: run_audio_experiment(seed=seed, **p))

    @register("audio_gap_sweep", result_cls=GapSweepResult,
              description="figure 7 silent-period sweep over loads")
    def _gap(*, seed: int, load_levels_bps: list[float],
             **params) -> ExperimentResult:
        sweep = run_gap_sweep(load_levels_bps=load_levels_bps,
                              seed=seed, **params)
        return GapSweepResult(
            seed=seed,
            sweep={str(load): counts for load, counts in sweep.items()})

    register("http", result_cls=HttpExperimentResult,
             description="one figure 8 HTTP cluster configuration"
             )(lambda *, seed, **p: run_http_experiment(seed=seed, **p))

    @register("http_fig8_sweep", result_cls=Fig8SweepResult,
              description="figure 8 throughput-vs-load sweep per mode")
    def _fig8(*, seed: int, client_counts: list[int],
              modes: list[str] = ("single", "asp", "builtin"),
              **params) -> ExperimentResult:
        curves = run_fig8_sweep(client_counts=client_counts,
                                modes=tuple(modes), seed=seed, **params)
        return Fig8SweepResult(
            seed=seed,
            curves={mode: [{"n_clients": r.n_clients,
                            "throughput_rps": r.throughput_rps,
                            "mean_latency_s": r.mean_latency_s,
                            "balance_ratio": r.balance_ratio,
                            "completed": r.completed,
                            "failures": r.failures}
                           for r in results]
                    for mode, results in curves.items()})

    register("mpeg", result_cls=MpegExperimentResult,
             description="§3.3 point-to-point→multipoint MPEG run"
             )(lambda *, seed, **p: run_mpeg_experiment(seed=seed, **p))

    register("images", result_cls=ImageExperimentResult,
             description="§5 image distillation over a slow link"
             )(lambda *, seed, **p: run_image_experiment(seed=seed, **p))

    @register("fig3", result_cls=Fig3Result,
              description="figure 3 codegen-time table for the ASPs")
    def _fig3(*, seed: int, backends: list[str] = ("closure", "source"),
              repeats: int = 5) -> ExperimentResult:
        rows = fig3_codegen_table(backends=tuple(backends),
                                  repeats=repeats)
        return Fig3Result(seed=seed, rows=rows)

    register("microbench", result_cls=MicrobenchResult,
             description="§2.4 engine microbenchmark (one engine)"
             )(lambda *, seed, **p: run_engine_microbench(seed=seed,
                                                          **p))

    register("chaos", result_cls=ChaosResult,
             description="lifecycle/fault chaos drill (one profile)"
             )(lambda *, seed, **p: run_chaos_experiment(seed=seed,
                                                         **p))

    register("scale", result_cls=ScaleResult,
             description="sharded-core ring-of-clusters scale run "
                         "(shard_segments picks the partition)"
             )(lambda *, seed, **p: run_scale_experiment(seed=seed,
                                                         **p))

    register("web", result_cls=WebResult,
             description="overload drill: flash/syn/elephant attacks "
                         "with in-network shedding on or off"
             )(lambda *, seed, **p: run_web_experiment(seed=seed, **p))

    register("upgrade", result_cls=UpgradeResult,
             description="rolling-upgrade drill: wire-compat veto "
                         "plus a compatible canary promotion"
             )(lambda *, seed, **p: run_upgrade_experiment(seed=seed,
                                                           **p))


_register_all()
