"""The JSONL result store under ``results/``.

One line per completed scenario run:

.. code-block:: json

    {"scenario": "fig6/audio", "experiment": "audio", "seed": 7,
     "cache_key": "…", "record": {…}, "volatile": {…}, "elapsed_s": 1.2}

``record`` is the canonical :meth:`ExperimentResult.record` — the
deterministic payload that serial and parallel runs must reproduce
byte-for-byte and that report generation reads.  ``volatile`` carries
the wall-clock measurements (codegen / benchmark timings) and
``elapsed_s`` the run's own wall time; both sit outside the record so
they never perturb cache comparisons.

Appends are line-atomic (single ``write`` of one line, flushed), so a
killed sweep leaves a loadable store and the next run resumes from it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator


class ResultStore:
    """Append/load access to one ``results.jsonl`` file."""

    FILENAME = "results.jsonl"

    def __init__(self, root: str | Path = "results"):
        self.root = Path(root)
        self.path = self.root / self.FILENAME

    def append(self, line: dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        data = json.dumps(line, sort_keys=True, separators=(",", ":"))
        with self.path.open("a") as fp:
            fp.write(data + "\n")
            fp.flush()

    def lines(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return
        with self.path.open() as fp:
            for raw in fp:
                raw = raw.strip()
                if raw:
                    yield json.loads(raw)

    def load(self) -> list[dict[str, Any]]:
        return list(self.lines())

    def by_cache_key(self) -> dict[str, dict[str, Any]]:
        """Latest line per cache key (later lines supersede earlier)."""
        out: dict[str, dict[str, Any]] = {}
        for line in self.lines():
            out[line["cache_key"]] = line
        return out

    def by_name(self) -> dict[str, dict[str, Any]]:
        """Latest line per scenario name."""
        out: dict[str, dict[str, Any]] = {}
        for line in self.lines():
            out[line["scenario"]] = line
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self.lines())
