"""Scenario matrices: the paper's evaluation as declarative data.

``standard_matrix()`` is figures 3–8 at full reproduction scale — the
matrix ``BENCH_harness.json`` times and ``runx sweep`` runs by default.
``smoke_matrix()`` is the same coverage at CI scale (seconds, tagged
``smoke``).  ``report_matrix(scale)`` is exactly the set of scenarios
:mod:`repro.experiments.report` formats, at ``quick`` or ``full``
scale; its full-scale parameters coincide with the standard matrix, so
a report regeneration after a standard sweep is pure cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scenario import Scenario

#: The figure 7 offered-load levels (bps) reported in EXPERIMENTS.md.
GAP_SWEEP_LOADS = (800_000, 1_500_000, 1_900_000)

ENGINES = ("interpreter", "closure", "source", "builtin")


@dataclass(frozen=True)
class Scale:
    """Report scale: simulated durations and sizes per section."""
    name: str
    audio_duration: float
    gap_duration: float
    http_duration: float
    http_clients: int
    mpeg_duration: float
    microbench_packets: int


FULL = Scale(name="full", audio_duration=45.0, gap_duration=25.0,
             http_duration=12.0, http_clients=8, mpeg_duration=15.0,
             microbench_packets=20_000)
QUICK = Scale(name="quick", audio_duration=18.0, gap_duration=8.0,
              http_duration=6.0, http_clients=4, mpeg_duration=8.0,
              microbench_packets=2_000)


def report_matrix(scale: Scale) -> list[Scenario]:
    """The scenarios the report reads, one per figure row group."""
    pre = scale.name
    tags = frozenset({"report", scale.name})
    scenarios = [
        Scenario(f"{pre}/fig3", "fig3", {"repeats": 5}, seed=0,
                 tags=tags | {"fig3"}),
        Scenario(f"{pre}/fig6", "audio",
                 {"duration": scale.audio_duration}, seed=7,
                 tags=tags | {"fig6", "audio"}),
        Scenario(f"{pre}/fig7", "audio_gap_sweep",
                 {"load_levels_bps": list(GAP_SWEEP_LOADS),
                  "duration": scale.gap_duration}, seed=7,
                 tags=tags | {"fig7", "audio"}),
    ]
    for mode in ("single", "asp", "builtin", "disjoint"):
        scenarios.append(Scenario(
            f"{pre}/fig8/{mode}", "http",
            {"mode": mode, "n_clients": scale.http_clients,
             "duration": scale.http_duration,
             "warmup": scale.http_duration / 4}, seed=11,
            tags=tags | {"fig8", "http"}))
    for use_asps, label in ((True, "asps"), (False, "plain")):
        scenarios.append(Scenario(
            f"{pre}/mpeg/{label}", "mpeg",
            {"use_asps": use_asps, "n_clients": 3,
             "duration": scale.mpeg_duration}, seed=23,
            tags=tags | {"mpeg"}))
    for engine in ENGINES:
        scenarios.append(Scenario(
            f"{pre}/microbench/{engine}", "microbench",
            {"engine": engine,
             "n_packets": scale.microbench_packets}, seed=0,
            tags=tags | {"microbench"}))
    return scenarios


def standard_matrix() -> list[Scenario]:
    """The full-scale evaluation matrix (the BENCH_harness target)."""
    scenarios = [
        Scenario(s.name.replace("full/", "standard/", 1), s.experiment,
                 s.params, seed=s.seed, tags=s.tags | {"standard"})
        for s in report_matrix(FULL)]
    scenarios.append(Scenario(
        "standard/images", "images", {"distillation": True}, seed=31,
        tags=frozenset({"standard", "images"})))
    # the sharded core, exercised through the harness: same workload
    # serial and partitioned — their records must agree byte-for-byte
    # (test_harness_determinism covers the cache/report contract)
    for segments in (1, 4):
        scenarios.append(Scenario(
            f"standard/scale-x{segments}", "scale",
            {"n_clusters": 16, "hosts_per_cluster": 8,
             "packets_per_host": 8, "shard_segments": segments},
            seed=5, tags=frozenset({"standard", "scale"})))
    return scenarios


def smoke_matrix() -> list[Scenario]:
    """Tiny versions of every experiment, for CI (tagged ``smoke``)."""
    def tags(*extra: str) -> frozenset[str]:
        return frozenset({"smoke", *extra})

    return [
        Scenario("smoke/fig3", "fig3", {"repeats": 1}, seed=0,
                 tags=tags("fig3")),
        Scenario("smoke/audio", "audio", {"duration": 6.0}, seed=7,
                 tags=tags("audio")),
        Scenario("smoke/gap-sweep", "audio_gap_sweep",
                 {"load_levels_bps": [1_900_000], "duration": 4.0},
                 seed=7, tags=tags("audio")),
        Scenario("smoke/http-asp", "http",
                 {"mode": "asp", "n_clients": 2, "duration": 4.0,
                  "warmup": 1.0}, seed=11, tags=tags("http")),
        Scenario("smoke/http-single", "http",
                 {"mode": "single", "n_clients": 2, "duration": 4.0,
                  "warmup": 1.0}, seed=11, tags=tags("http")),
        Scenario("smoke/mpeg", "mpeg",
                 {"use_asps": True, "n_clients": 2, "duration": 6.0},
                 seed=23, tags=tags("mpeg")),
        Scenario("smoke/images", "images", {"distillation": True},
                 seed=31, tags=tags("images")),
        Scenario("smoke/scale-sharded", "scale",
                 {"n_clusters": 4, "hosts_per_cluster": 3,
                  "packets_per_host": 4, "shard_segments": 2},
                 seed=5, tags=tags("scale")),
        Scenario("smoke/microbench-closure", "microbench",
                 {"engine": "closure", "n_packets": 2_000}, seed=0,
                 tags=tags("microbench")),
        Scenario("smoke/microbench-builtin", "microbench",
                 {"engine": "builtin", "n_packets": 2_000}, seed=0,
                 tags=tags("microbench")),
    ]


def chaos_matrix() -> list[Scenario]:
    """Fault/lifecycle drills: the poisoned-ASP drill plus the audio
    and HTTP experiments under scripted link faults.  The
    ``chaos-smoke`` tag marks the CI-scale subset (the drill itself is
    already CI-scale; the app profiles get short durations)."""
    def tags(*extra: str) -> frozenset[str]:
        return frozenset({"chaos", *extra})

    return [
        Scenario("chaos/drill-16", "chaos",
                 {"profile": "drill", "n_routers": 16,
                  "duration": 12.0}, seed=5,
                 tags=tags("drill", "chaos-smoke")),
        Scenario("chaos/drill-4", "chaos",
                 {"profile": "drill", "n_routers": 4, "duration": 10.0},
                 seed=13, tags=tags("drill")),
        Scenario("chaos/upgrade-16", "upgrade",
                 {"n_routers": 16, "duration": 8.0}, seed=5,
                 tags=tags("upgrade", "chaos-smoke")),
        Scenario("chaos/audio-faults", "chaos",
                 {"profile": "audio", "duration": 20.0}, seed=7,
                 tags=tags("audio")),
        Scenario("chaos/audio-faults-smoke", "chaos",
                 {"profile": "audio", "duration": 8.0}, seed=7,
                 tags=tags("audio", "chaos-smoke")),
        Scenario("chaos/http-faults", "chaos",
                 {"profile": "http", "duration": 10.0}, seed=11,
                 tags=tags("http")),
        Scenario("chaos/http-faults-smoke", "chaos",
                 {"profile": "http", "duration": 6.0}, seed=11,
                 tags=tags("http", "chaos-smoke")),
    ]


def web_matrix() -> list[Scenario]:
    """The overload drill (DESIGN §14): every attack shape with the
    shedding defense on and off, plus the poisoned-shedder chaos cell.
    The ``web-smoke`` tag marks the CI subset: the no-attack baseline
    and the two floor-gated attacks (syn, elephant) at short duration —
    exactly the cells the goodput-retention assertions in CI read."""
    def tags(*extra: str) -> frozenset[str]:
        return frozenset({"web", *extra})

    scenarios = []
    for attack in ("none", "flash", "syn", "elephant"):
        for shedding in (False, True):
            label = "shed" if shedding else "open"
            smoke = (("web-smoke",) if attack in ("none", "syn",
                                                  "elephant") else ())
            scenarios.append(Scenario(
                f"web/{attack}-{label}", "web",
                {"attack": attack, "shedding": shedding,
                 "duration": 6.0, "warmup": 2.0}, seed=17,
                tags=tags(attack, *smoke)))
    # the same cells through the sharded core: records must agree
    # byte-for-byte with the serial cells above (asserted in tests;
    # distinct scenario names because shard_segments is a param)
    scenarios.append(Scenario(
        "web/syn-shed-x2", "web",
        {"attack": "syn", "shedding": True, "duration": 6.0,
         "warmup": 2.0, "shard_segments": 2}, seed=17,
        tags=tags("syn", "sharded")))
    # chaos: the poisoned shedder must trip the breaker and degrade
    # the gateway to standard IP without killing the run
    scenarios.append(Scenario(
        "web/syn-shed-poisoned", "web",
        {"attack": "syn", "shedding": True, "duration": 6.0,
         "warmup": 2.0, "poison_at": 3.0}, seed=17,
        tags=tags("syn", "poison", "web-smoke")))
    return scenarios


MATRICES = {
    "standard": standard_matrix,
    "smoke": smoke_matrix,
    "chaos": chaos_matrix,
    "web": web_matrix,
    "report-quick": lambda: report_matrix(QUICK),
    "report-full": lambda: report_matrix(FULL),
}


def matrix(name: str) -> list[Scenario]:
    """A named matrix, or ``all`` for every scenario of every matrix
    (deduplicated by name)."""
    if name == "all":
        seen: dict[str, Scenario] = {}
        for factory in MATRICES.values():
            for scenario in factory():
                seen.setdefault(scenario.name, scenario)
        return list(seen.values())
    try:
        return MATRICES[name]()
    except KeyError:
        raise KeyError(f"unknown matrix {name!r}; pick from "
                       f"{sorted(MATRICES) + ['all']}") from None
