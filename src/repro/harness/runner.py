"""The parallel scenario runner.

Scenarios are embarrassingly parallel: every run builds its own
seeded :class:`~repro.net.sim.Simulator` inside its own process, so a
``ProcessPoolExecutor`` fan-out produces records byte-identical to a
serial loop (asserted by the determinism tests and the harness
benchmark).  The runner consults the content-addressed cache before
dispatching, appends completed lines to the store as they finish
(resumable — a killed sweep re-run executes only what is missing), and
reports per-scenario wall times for the benchmark.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..experiments.result import ExperimentResult
from . import registry
from .cache import cache_key
from .scenario import Scenario
from .store import ResultStore


def run_scenario_line(scenario: Scenario) -> dict[str, Any]:
    """Run one scenario and build its store line.  This is the one
    code path shared by serial and parallel execution — the worker
    function simply calls it in another process."""
    t0 = time.perf_counter()
    result = registry.run(scenario)
    elapsed = time.perf_counter() - t0
    return {
        "scenario": scenario.name,
        "experiment": scenario.experiment,
        "seed": scenario.seed,
        "tags": sorted(scenario.tags),
        "cache_key": cache_key(scenario),
        "record": result.record(),
        "volatile": result.volatile(),
        "elapsed_s": round(elapsed, 4),
    }


def _worker(doc: dict[str, Any]) -> dict[str, Any]:
    return run_scenario_line(Scenario.from_dict(doc))


def relabel_line(line: dict[str, Any],
                 scenario: Scenario) -> dict[str, Any]:
    """The line re-identified as ``scenario``.

    ``cache_key()`` deliberately excludes name and tags, so a cache hit
    may carry the labels of whichever same-content scenario ran first
    (``standard/fig6`` satisfying ``full/fig6``).  Consumers key lines
    by name, so a served line must wear the requested identity.
    Returns ``line`` itself when nothing differs.
    """
    tags = sorted(scenario.tags)
    if line["scenario"] == scenario.name and line["tags"] == tags:
        return line
    return {**line, "scenario": scenario.name, "tags": tags,
            "record": {**line["record"], "name": scenario.name}}


@dataclass
class SweepReport:
    """What a sweep did: every line (cached and fresh), and how long."""

    lines: list[dict[str, Any]] = field(default_factory=list)
    ran: list[str] = field(default_factory=list)
    cached: list[str] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1

    def records_by_name(self) -> dict[str, dict[str, Any]]:
        return {line["scenario"]: line["record"] for line in self.lines}

    def summary(self) -> str:
        return (f"{len(self.lines)} scenarios: {len(self.ran)} ran, "
                f"{len(self.cached)} cached "
                f"({self.workers} worker{'s' if self.workers != 1 else ''}"
                f", wall {self.wall_s:.1f}s)")


ProgressFn = Callable[[str, dict[str, Any]], None]


class Runner:
    """Fans a scenario matrix out over worker processes.

    ``workers=1`` runs serially in-process; ``workers=N`` uses a
    process pool.  ``use_cache=False`` forces re-runs (the benchmark
    does this to time real work).  ``progress`` is called with
    ``("cached"|"ran", line)`` as each scenario resolves.
    """

    def __init__(self, store: ResultStore | None = None,
                 workers: int = 1, use_cache: bool = True,
                 progress: ProgressFn | None = None):
        self.store = store
        self.workers = max(1, workers)
        self.use_cache = use_cache
        self.progress = progress

    # -- single scenario --------------------------------------------------------

    def run(self, scenario: Scenario) -> ExperimentResult:
        """Run (or load from cache) one scenario, returning the
        rehydrated result object."""
        cached = self._cached().get(cache_key(scenario))
        if cached is not None:
            return registry.rehydrate(
                self._serve_cached(cached, scenario))
        line = run_scenario_line(scenario)
        self._append(line)
        self._notify("ran", line)
        return registry.rehydrate(line)

    # -- sweeps -----------------------------------------------------------------

    def sweep(self, scenarios: Iterable[Scenario]) -> SweepReport:
        """Run every scenario, skipping cache hits, in parallel when
        ``workers > 1``.  Scenarios with identical cache keys (same
        experiment, params and seed under different names) execute
        once; the duplicates are served from the first completion,
        relabeled.  Lines land in the store (and the report) in
        completion order; records are order-independent."""
        t0 = time.perf_counter()
        todo: list[Scenario] = []
        seen: set[str] = set()
        for scenario in scenarios:
            if scenario.name not in seen:
                seen.add(scenario.name)
                todo.append(scenario)

        report = SweepReport(workers=self.workers)
        cached = self._cached()
        pending: list[Scenario] = []
        # same-key scenarios queued behind the one that actually runs,
        # served (relabeled) when its line completes
        aliases: dict[str, list[Scenario]] = {}
        for scenario in todo:
            key = cache_key(scenario)
            line = cached.get(key)
            if line is not None:
                self._serve_cached(line, scenario, report)
            elif key in aliases:
                aliases[key].append(scenario)
            else:
                aliases[key] = []
                pending.append(scenario)

        if self.workers == 1 or len(pending) <= 1:
            for scenario in pending:
                self._finish(run_scenario_line(scenario), report,
                             aliases)
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {pool.submit(_worker, s.to_dict())
                           for s in pending}
                while futures:
                    done, futures = wait(futures,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        self._finish(future.result(), report, aliases)

        report.wall_s = time.perf_counter() - t0
        return report

    # -- internals --------------------------------------------------------------

    def _finish(self, line: dict[str, Any], report: SweepReport,
                aliases: dict[str, list[Scenario]]) -> None:
        self._append(line)
        report.lines.append(line)
        report.ran.append(line["scenario"])
        self._notify("ran", line)
        for scenario in aliases.get(line["cache_key"], ()):
            self._serve_cached(line, scenario, report)

    def _serve_cached(self, line: dict[str, Any], scenario: Scenario,
                      report: SweepReport | None = None,
                      ) -> dict[str, Any]:
        """Serve a stored (or just-completed same-key) line as a cache
        hit for ``scenario``, relabeled to its identity.  Relabeled
        lines are appended to the store so name-keyed loads
        (``store.by_name()``, ``report --no-run``) find them under the
        requested name too."""
        served = relabel_line(line, scenario)
        if served is not line:
            self._append(served)
        if report is not None:
            report.lines.append(served)
            report.cached.append(scenario.name)
        self._notify("cached", served)
        return served

    def _cached(self) -> dict[str, dict[str, Any]]:
        if not (self.use_cache and self.store):
            return {}
        return self.store.by_cache_key()

    def _append(self, line: dict[str, Any]) -> None:
        if self.store is not None:
            self.store.append(line)

    def _notify(self, kind: str, line: dict[str, Any]) -> None:
        if self.progress is not None:
            self.progress(kind, line)
