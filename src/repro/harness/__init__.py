"""The parallel experiment harness: Scenario → Runner → ResultStore.

The paper's evaluation (figures 3–8) is a matrix of independent
simulator runs.  This package makes that matrix declarative and
parallel:

* :class:`~repro.harness.scenario.Scenario` — one run as pure data
  (experiment name, params, seed, tags);
* :mod:`~repro.harness.registry` — every ``run_*`` entry point behind
  one ``run(scenario) -> ExperimentResult`` interface;
* :class:`~repro.harness.runner.Runner` — fans a matrix out over a
  ``ProcessPoolExecutor``; each worker owns its own seeded simulator,
  so parallel records are byte-identical to serial ones;
* :class:`~repro.harness.store.ResultStore` — the JSONL record store
  under ``results/`` that report generation reads;
* :mod:`~repro.harness.cache` — content-addressed caching keyed on
  (params, seed, code fingerprint), making sweeps resumable;
* :mod:`~repro.harness.matrix` — the standard / smoke / report
  scenario matrices.

CLI: ``python -m repro.tools.runx {list,run,sweep}``.
"""

from ..experiments.result import ExperimentResult
from .cache import cache_key, code_fingerprint
from .matrix import (FULL, MATRICES, QUICK, Scale, chaos_matrix, matrix,
                     report_matrix, smoke_matrix, standard_matrix)
from .registry import get, names, rehydrate, run
from .runner import (Runner, SweepReport, relabel_line,
                     run_scenario_line)
from .scenario import Scenario, filter_scenarios
from .store import ResultStore

__all__ = [
    "FULL",
    "MATRICES",
    "QUICK",
    "ExperimentResult",
    "ResultStore",
    "Runner",
    "Scale",
    "Scenario",
    "SweepReport",
    "cache_key",
    "chaos_matrix",
    "code_fingerprint",
    "filter_scenarios",
    "get",
    "matrix",
    "names",
    "rehydrate",
    "relabel_line",
    "report_matrix",
    "run",
    "run_scenario_line",
    "smoke_matrix",
    "standard_matrix",
]
