"""The :class:`Scenario`: one declarative experiment run.

A scenario is pure data — which registered experiment to run, with
which parameters and seed — so it can be listed, filtered by tag,
hashed for the result cache, shipped to a worker process, and compared
across serial and parallel executions.  The paper's whole evaluation
(figures 3–8) is a matrix of these.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


def canonical_json(value: Any) -> str:
    """Deterministic JSON for hashing: sorted keys, compact separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """One run of one registered experiment.

    ``name`` is the human handle (unique within a matrix, e.g.
    ``fig7/gap-1.5M``); ``experiment`` the registry key; ``params`` the
    keyword arguments for the experiment runner (JSON values only);
    ``tags`` drive ``--filter`` selection.
    """

    name: str
    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    tags: frozenset[str] = frozenset()

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "tags", frozenset(self.tags))

    def key(self) -> str:
        """Content hash of what will run: experiment + params + seed.
        (The name and tags are presentation, not identity.)"""
        payload = canonical_json({"experiment": self.experiment,
                                  "params": self.params,
                                  "seed": self.seed})
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def matches(self, filt: str | None) -> bool:
        """Tag match (exact) or name match (substring)."""
        if not filt:
            return True
        return filt in self.tags or filt in self.name

    # -- worker transport -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "experiment": self.experiment,
                "params": dict(self.params), "seed": self.seed,
                "tags": sorted(self.tags)}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Scenario":
        return cls(name=doc["name"], experiment=doc["experiment"],
                   params=doc.get("params", {}),
                   seed=doc.get("seed", 0),
                   tags=frozenset(doc.get("tags", ())))


def filter_scenarios(scenarios: Iterable[Scenario],
                     filt: str | None) -> list[Scenario]:
    return [s for s in scenarios if s.matches(filt)]
