"""Content-addressed run caching: (code, params, seed) → skip re-runs.

A scenario's cache key combines its own content hash (experiment name,
params, seed — :meth:`Scenario.key`) with a fingerprint of the
``repro`` source tree, so editing any simulator or experiment code
invalidates every cached result while a pure re-run hits.  The store
(:mod:`repro.harness.store`) indexes records by this key; the runner
consults it before dispatching work, which is also what makes partial
sweeps resumable — re-running a half-finished sweep only executes the
missing scenarios.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from .scenario import Scenario

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """sha256 over every ``.py`` file of the installed ``repro``
    package (relative path + content), cached per process."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def cache_key(scenario: Scenario) -> str:
    """The store key: scenario content hash × code fingerprint."""
    return hashlib.sha256(
        f"{scenario.key()}:{code_fingerprint()}".encode()
    ).hexdigest()[:24]
