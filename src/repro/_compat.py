"""Dependency-free signature-compat shims.

Lives at the package root (rather than in :mod:`repro.experiments.compat`,
which re-exports these) so that core modules like :mod:`repro.net.sim`
can use them without importing the experiments package — which itself
imports the net package.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable


def keyword_only(*names: str) -> Callable:
    """Wrap a keyword-only function so legacy positional calls still
    work: positional arguments map onto ``names`` in order, with a
    :class:`DeprecationWarning` telling the caller the keyword form.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if args:
                if len(args) > len(names):
                    raise TypeError(
                        f"{fn.__name__}() takes at most {len(names)} "
                        f"positional arguments ({len(args)} given)")
                mapped = dict(zip(names, args))
                clash = set(mapped) & set(kwargs)
                if clash:
                    raise TypeError(
                        f"{fn.__name__}() got multiple values for "
                        f"{sorted(clash)}")
                warnings.warn(
                    f"positional arguments to {fn.__name__}() are "
                    f"deprecated; pass "
                    f"{', '.join(f'{k}=...' for k in mapped)} as "
                    f"keywords", DeprecationWarning, stacklevel=2)
                kwargs.update(mapped)
            return fn(**kwargs)
        return wrapper
    return decorate


def keyword_only_init(*names: str) -> Callable:
    """:func:`keyword_only` for methods — ``self`` (or ``cls``) passes
    through, remaining positional arguments map onto ``names`` with a
    :class:`DeprecationWarning`.  Used by ``Simulator.__init__`` and
    ``Network.__init__`` so legacy ``Simulator(7)`` calls keep working
    for one release.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if args:
                if len(args) > len(names):
                    raise TypeError(
                        f"{fn.__qualname__}() takes at most {len(names)} "
                        f"positional arguments ({len(args)} given)")
                mapped = dict(zip(names, args))
                clash = set(mapped) & set(kwargs)
                if clash:
                    raise TypeError(
                        f"{fn.__qualname__}() got multiple values for "
                        f"{sorted(clash)}")
                warnings.warn(
                    f"positional arguments to {fn.__qualname__}() are "
                    f"deprecated; pass "
                    f"{', '.join(f'{k}=...' for k in mapped)} as "
                    f"keywords", DeprecationWarning, stacklevel=2)
                kwargs.update(mapped)
            return fn(self, **kwargs)
        return wrapper
    return decorate
