"""The sharded-core scale experiment: a ring of router clusters.

This is the workload behind ``benchmarks/test_scale.py`` and the
``shard_segments`` knob (DESIGN §13): ``n_clusters`` routers form a
ring with ``ring_latency`` propagation delay; each router serves
``hosts_per_cluster - 1`` leaf hosts over fast LAN links.  Hosts send
UDP datagrams mostly to a sibling in their own cluster, with every
``cross_every``-th datagram going to the same-index host in the *next*
cluster around the ring — so partitioning by cluster cuts only ring
links (the lookahead is ``ring_latency``) and cross-segment traffic
exercises the boundary protocol without flooding it.

Routing is installed manually (``finalize(compute_routes=False)``):
all-pairs shortest paths are O(N²) and pointless for a topology this
regular.  Hosts default-route to their cluster router; routers hold
one route per local host and default clockwise around the ring.  No
datagram travels more than one ring hop, so the default TTL is never
at risk.

The same builder serves three execution modes — serial, in-process
sharded (:class:`~repro.net.shard.ShardRunner`), and one process per
segment (:mod:`~repro.net.shard_proc`).  Serial and in-process runs
produce byte-identical records; process runs reproduce the identical
delivery stream and figures but merge a reduced metrics view (see
``shard_proc``), so record-level comparisons should use the in-process
driver.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..net.node import Host, Node
from ..net.topology import Network
from .result import ExperimentResult

#: the UDP port every scale host listens on
SCALE_PORT = 4000


class ScaleResult(ExperimentResult):
    _EXPERIMENT = "scale"
    #: execution-strategy outputs: real, but not part of the record
    #: (a serial run and a sharded run of the same scenario must
    #: produce the same record)
    _VOLATILE_FIGURES = ("segments", "driver", "windows")


@dataclass
class _ScaleState:
    """Per-run harvest attached to the network as ``scale_state``."""

    #: (event key, receiver, src addr, payload) per delivered datagram
    deliveries: list[tuple] = field(default_factory=list)
    sent: int = 0


def _cluster_of(name: str) -> int:
    # node names are "c<cluster>r" / "c<cluster>h<idx>"
    digits = []
    for ch in name[1:]:
        if not ch.isdigit():
            break
        digits.append(ch)
    return int("".join(digits))


def build_scale_net(*, params: dict, seed: int,
                    shard_segments: int = 1) -> Network:
    """Build the ring-of-clusters topology and schedule its traffic.

    Top-level and a pure function of ``(params, seed,
    shard_segments)``, so :func:`repro.net.shard_proc
    .run_sharded_processes` can replicate it in every worker by
    reference (``"repro.experiments.scale:build_scale_net"``).
    """
    n_clusters = int(params.get("n_clusters", 8))
    hosts_per_cluster = int(params.get("hosts_per_cluster", 4))
    packets_per_host = int(params.get("packets_per_host", 6))
    interval = float(params.get("interval", 0.02))
    cross_every = int(params.get("cross_every", 4))
    lan_latency = float(params.get("lan_latency", 0.001))
    ring_latency = float(params.get("ring_latency", 0.01))
    ring_queue = int(params.get("ring_queue", 256))
    bandwidth = float(params.get("bandwidth", 100e6))
    payload_bytes = int(params.get("payload_bytes", 64))
    warmup = float(params.get("warmup", 0.05))
    if n_clusters < 2 or hosts_per_cluster < 2:
        raise ValueError("scale topology needs >= 2 clusters of >= 2 "
                         "hosts (host 0 of each cluster is the router)")
    if shard_segments > n_clusters:
        raise ValueError("cannot shard finer than one cluster per "
                         "segment")

    def shard_of(node: Node) -> int:
        return min(_cluster_of(node.name) * shard_segments // n_clusters,
                   shard_segments - 1)

    net = Network(seed=seed, name="scale",
                  shard_segments=shard_segments,
                  shard_of=shard_of if shard_segments > 1 else None)

    # -- topology: clusters in construction order, so the partition is
    # contiguous clusters and only ring links are cut
    routers = []
    hosts: list[list[Host]] = []
    host_ifaces = {}  # router-side iface per host, for manual routes
    for c in range(n_clusters):
        router = net.add_router(f"c{c}r")
        routers.append(router)
        members = []
        for h in range(hosts_per_cluster - 1):
            host = net.add_host(f"c{c}h{h}")
            link = net.link(router, host, bandwidth=bandwidth,
                            latency=lan_latency)
            host_ifaces[host.name] = next(
                i for i in link.interfaces if i.node is router)
            members.append(host)
        hosts.append(members)
    ring_ifaces = {}  # clockwise iface per router
    for c in range(n_clusters):
        nxt = routers[(c + 1) % n_clusters]
        ring = net.link(routers[c], nxt, bandwidth=bandwidth,
                        latency=ring_latency, queue_limit=ring_queue)
        ring_ifaces[c] = next(
            i for i in ring.interfaces if i.node is routers[c])
    net.finalize(compute_routes=False)

    # -- manual hierarchical routes (see module docstring)
    for members in hosts:
        for host in members:
            host.routes.set_default(host.interfaces[0])
    for c, router in enumerate(routers):
        for host in hosts[c]:
            router.routes.add_route(host.address,
                                    host_ifaces[host.name])
        router.routes.set_default(ring_ifaces[c])

    # -- traffic, harvested through per-host delivery recorders
    state = _ScaleState()
    net.scale_state = state
    for c in range(n_clusters):
        for h, host in enumerate(hosts[c]):
            sock = net.udp(host).bind(SCALE_PORT)

            def on_datagram(payload, src, src_port, *, host=host):
                state.deliveries.append(
                    (host.sim.current_event_key, host.name, str(src),
                     payload))

            sock.on_datagram = on_datagram

            n_local = len(hosts[c])
            for k in range(packets_per_host):
                # stagger which tick is the cross tick by host index,
                # so a cluster's ring uplink is not hit by every host
                # at once
                if cross_every and (k + h) % cross_every == 0:
                    dst = hosts[(c + 1) % n_clusters][h]
                else:
                    dst = hosts[c][(h + 1) % n_local]
                payload = (f"{host.name}:{k}".encode()
                           .ljust(payload_bytes, b"."))

                def send(*, sock=sock, dst_addr=dst.address,
                         payload=payload):
                    sock.sendto(dst_addr, SCALE_PORT, payload)
                    state.sent += 1

                # scheduled on the host's own simulator under the
                # host's context: the event key — and, in process mode,
                # the owning worker — is the host's, whichever segment
                # it lands in
                host.sim.at(warmup + k * interval, send,
                            context=host.ctx)
    return net


def collect_scale(net: Network, owned: set[str]) -> dict[str, Any]:
    """Worker-side harvest for process-sharded runs (referenced as
    ``"repro.experiments.scale:collect_scale"``)."""
    state = net.scale_state
    return {
        "deliveries": [d for d in state.deliveries if d[1] in owned],
        "sent": state.sent,
    }


def scale_until(params: dict) -> float:
    """When the run ends — a pure function of params, so every
    execution mode and every worker agrees."""
    packets = int(params.get("packets_per_host", 6))
    interval = float(params.get("interval", 0.02))
    warmup = float(params.get("warmup", 0.05))
    return warmup + packets * interval + 0.5


def delivery_stream_sha256(deliveries: list[tuple]) -> str:
    """One hash over the key-sorted delivery stream.

    Sorting by event key reproduces the serial observation order
    exactly (the keys are a pure function of topology and seed), so
    equal hashes mean every datagram arrived at the same host at the
    same event, with the same payload, in every execution mode.
    """
    digest = hashlib.sha256()
    for (t, lp, lseq), name, src, payload in sorted(deliveries):
        digest.update(f"{t!r}/{lp}/{lseq} {name} {src} ".encode())
        digest.update(payload)
        digest.update(b"\n")
    return digest.hexdigest()


def run_scale_experiment(*, seed: int = 0, shard_segments: int = 1,
                         driver: str = "inline",
                         **params: Any) -> ScaleResult:
    """Run the scale workload and summarize it.

    ``shard_segments`` / ``driver`` pick the execution strategy:
    ``inline`` runs serially (1 segment) or via the in-process
    :class:`~repro.net.shard.ShardRunner`; ``process`` runs one OS
    process per segment.  The strategy shows up only in the volatile
    figures — the record is identical whichever produced it (process
    mode: identical figures over a reduced metrics view).
    """
    until = scale_until(params)
    if driver == "process" and shard_segments > 1:
        from ..net.shard_proc import run_sharded_processes

        report = run_sharded_processes(
            "repro.experiments.scale:build_scale_net", params=params,
            seed=seed, segments=shard_segments, until=until,
            collect="repro.experiments.scale:collect_scale")
        deliveries = [d for got in report.collected
                      for d in got["deliveries"]]
        sent = sum(got["sent"] for got in report.collected)
        metrics = report.metrics
        windows = report.windows
        nodes = sum(1 for key in metrics if key.startswith("node.")
                    and key.endswith(".delivered"))
    elif driver not in ("inline", "process"):
        raise ValueError(f"unknown scale driver {driver!r}")
    else:
        net = build_scale_net(params=params, seed=seed,
                              shard_segments=shard_segments)
        net.run(until=until)
        state = net.scale_state
        deliveries, sent = state.deliveries, state.sent
        metrics = net.metrics_snapshot()
        windows = net._shard.windows if net._shard is not None else 0
        nodes = len(net.nodes)
    forwarded = sum(value for key, value in metrics.items()
                    if key.startswith("node.")
                    and key.endswith(".forwarded")
                    and isinstance(value, (int, float)))
    return ScaleResult(
        name="scale", seed=seed,
        params={key: params[key] for key in sorted(params)},
        metrics=metrics,
        figures={
            "nodes": nodes,
            "sent": sent,
            "delivered": len(deliveries),
            "forwarded": int(forwarded),
            "events": metrics.get("sim.events_processed"),
            "delivery_sha256": delivery_stream_sha256(deliveries),
            # volatile (execution strategy, not measurement):
            "segments": shard_segments,
            "driver": driver,
            "windows": windows,
        })
