"""The rolling-upgrade drill: wire-compat gating on a 16-node fleet.

A chain of routers forwards live traffic under generation 1.  Two
generation-2 candidates then arrive, exactly as §4's extensibility
story says they will:

* an **incompatible** one — same program shape, but the network
  channel's packet layout changed (``ip*udp*blob`` →
  ``ip*udp*int*blob``).  The lifecycle manager's wire-compatibility
  gate must veto it *before the canary window opens*: no node ever
  installs it, no mixed-generation packet is ever exchanged, and the
  fleet's delivery stream never notices the attempt.
* a **compatible** one — identical wire signature, different body.
  It must sail through canary and promote fleet-wide.

The drill also answers the "is the gate free?" question: with
``attempt_incompatible=False`` the run is byte-identical (delivery
times and payloads, digested) whether ``wire_check`` is on or off —
the gate only reads summaries already derived by the JIT pipeline, so
a compatible rollout pays nothing.

Figures: ``vetoed`` / ``veto_reason`` / ``incompat_installed_anywhere``
(must stay False) / ``promoted`` / ``healthy`` /
``delivery_digest`` (sha256 over the (time, payload) delivery stream,
the byte-identity witness) / ``vetoes`` / ``final_generations``.
"""

from __future__ import annotations

import hashlib

from ..net import Network
from ..net.packet import udp_packet
from ..obs import Observability
from ..runtime.deployment import Deployment
from ..runtime.lifecycle import (LifecycleManager, LifecyclePolicy,
                                 RolloutState)
from .result import LegacyResult

#: Generation 1: the verified pass-through forwarder.
GEN1_ASP = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""

#: Generation 2, compatible: same wire signature, new body.
GEN2_COMPAT_ASP = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 2, ss))
"""

#: Generation 2, incompatible: the packet layout grew an int field —
#: generation-1 nodes would misread (or pass) every packet a mixed
#: fleet carries.  The program itself verifies fine; only the *pair*
#: is broken, which is exactly what the static gate must catch.
GEN2_INCOMPAT_ASP = """\
channel network(ps : int, ss : unit, p : ip*udp*int*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""


class UpgradeResult(LegacyResult):
    """Result of one rolling-upgrade drill.  ``figures`` carries the
    veto/promote verdicts and the delivery-stream digest."""

    _EXPERIMENT = "upgrade"
    _PARAM_FIELDS = ("n_routers", "duration", "wire_check",
                     "attempt_incompatible")

    @property
    def healthy(self) -> bool:
        return bool(self.figures.get("healthy"))


def run_upgrade_experiment(*, seed: int = 5, n_routers: int = 16,
                           duration: float = 8.0,
                           backend: str = "closure",
                           wire_check: bool = True,
                           attempt_incompatible: bool = True,
                           obs: Observability | None = None
                           ) -> UpgradeResult:
    """Run the rolling-upgrade drill; see the module docstring."""
    net = Network(seed=seed, obs=obs)
    src = net.add_host("src")
    routers = [net.add_router(f"r{i}") for i in range(n_routers)]
    dst = net.add_host("dst")
    prev = src
    for router in routers:
        net.link(prev, router, bandwidth=100e6, latency=0.0002)
        prev = router
    net.link(prev, dst, bandwidth=100e6, latency=0.0002)
    net.finalize()

    policy = LifecyclePolicy(canary_fraction=0.25, health_window=0.5,
                             error_budget=3, budget_window=0.5,
                             cooldown=0.3, rollback_after_trips=2,
                             wire_check=wire_check)
    manager = LifecycleManager(net, deployment=Deployment(),
                               policy=policy)
    manager.manage(*routers)

    # Generation 1 fleet-wide (initial install; nothing to compare to).
    manager.rollout(GEN1_ASP, routers, backend=backend,
                    source_name="upgrade-gen1", force=True)

    records: list[tuple[float, bytes]] = []
    dst.delivery_taps.append(lambda p: records.append((net.now,
                                                       p.payload)))

    tick = 0.02
    counter = [0]

    def send() -> None:
        payload = bytes([counter[0] % 256])
        counter[0] += 1
        src.ip_send(udp_packet(src.address, dst.address, 5000, 7000,
                               payload))
        net.sim.schedule(tick, send)

    net.sim.schedule(0.0, send)

    rollouts: dict[str, object] = {}

    # t=2: the incompatible candidate.  The gate must veto it
    # synchronously — before any canary node installs anything.
    def attempt_bad() -> None:
        rollouts["incompat"] = manager.rollout(
            GEN2_INCOMPAT_ASP, routers, backend=backend,
            source_name="upgrade-gen2-incompat")

    # t=3: the compatible candidate; canary opens, health window
    # passes on live traffic, the fleet promotes.
    def attempt_good() -> None:
        rollouts["compat"] = manager.rollout(
            GEN2_COMPAT_ASP, routers, backend=backend,
            source_name="upgrade-gen2-compat")

    if attempt_incompatible:
        net.sim.at(2.0, attempt_bad)
    net.sim.at(3.0, attempt_good)
    net.run(until=duration)

    cache = manager.deployment.cache
    incompat_sha = cache.digest(GEN2_INCOMPAT_ASP)
    compat_sha = cache.digest(GEN2_COMPAT_ASP)
    incompat = rollouts.get("incompat")
    compat = rollouts.get("compat")

    # The veto-before-canary witness: the incompatible generation
    # never touched any node — not installed now, never installed and
    # rolled back either.
    incompat_seen = any(
        incompat_sha in [g.sha for g in nl.generations]
        or incompat_sha in [g.sha for g in nl.rolled_back]
        for nl in manager.nodes.values())

    digest = hashlib.sha256()
    for t, payload in records:
        digest.update(f"{t:.9f}:".encode())
        digest.update(payload)
        digest.update(b"|")

    vetoed = (incompat is not None
              and incompat.state is RolloutState.ABORTED
              and incompat.reason.startswith("wire-incompatible"))
    promoted = (compat is not None
                and compat.state is RolloutState.PROMOTED)
    on_compat = all(nl.current is not None
                    and nl.current.sha == compat_sha
                    for nl in manager.nodes.values())
    final_generations = {
        name: (nl.current.sha[:12] if nl.current is not None else "")
        for name, nl in sorted(manager.nodes.items())}
    figures = {
        "healthy": (promoted and on_compat
                    and not manager.quarantined_nodes()
                    and (vetoed or not attempt_incompatible
                         or not wire_check)
                    and not (wire_check and incompat_seen)),
        "vetoed": vetoed,
        "veto_reason": (incompat.reason
                        if incompat is not None else ""),
        "wire_verdicts": (dict(incompat.wire_verdicts)
                          if incompat is not None else {}),
        "incompat_installed_anywhere": incompat_seen,
        "promoted": promoted,
        "on_compat_at_end": on_compat,
        "vetoes": manager.vetoes,
        "quarantined_at_end": len(manager.quarantined_nodes()),
        "delivered": len(records),
        "delivery_digest": digest.hexdigest(),
        "final_generations": final_generations,
        "lifecycle_events": sum(
            1 for e in net.obs.events.filter()
            if e.kind in ("rollout", "quarantine", "rollback")),
    }
    return UpgradeResult(seed=seed, n_routers=n_routers,
                         duration=duration, wire_check=wire_check,
                         attempt_incompatible=attempt_incompatible,
                         metrics=net.metrics_snapshot(), **figures)
