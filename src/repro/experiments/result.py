"""The unified experiment result: one shape for every experiment.

Every ``run_*`` entry point used to return its own dataclass with its
own field list; the harness (:mod:`repro.harness`) needs one record
shape it can hash, store and compare byte-for-byte.  This module
defines that shape:

* :class:`ExperimentResult` — ``name`` / ``params`` / ``seed`` /
  ``metrics`` / ``figures``, with ``to_json()`` / ``from_json()``
  producing canonical (sorted, compact) JSON;
* per-app shims (``AudioExperimentResult`` & co., defined next to
  their experiments) that subclass it and keep the legacy attribute
  surface working: ``result.silent_periods`` still resolves, routed
  into ``params`` / ``figures``.  The legacy attributes are
  **deprecated** and will be dropped one release after 1.x; new code
  reads ``result.figures[...]``.

Determinism is part of the contract: ``record()`` is byte-identical
for identical (code, params, seed), which is what lets the parallel
runner assert serial/parallel equivalence and lets the cache skip
re-runs.  Two kinds of values are excluded from it:

* **volatile figures** — wall-clock measurements (JIT codegen times,
  microbenchmark elapsed) named in ``_VOLATILE_FIGURES``; they travel
  next to the record (``volatile()``) rather than inside it;
* **nondeterministic metrics** — the ``global.`` process scope (shared
  across runs in one process, reset in another) and the duration
  statistics of ``*_ms`` timer histograms (their ``.count`` is an
  event count and stays); :func:`deterministic_metrics` strips them.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar


#: histogram statistics of a ``*_ms`` timer that hold wall-clock
#: durations (``.count`` is an event count and stays deterministic)
_TIMER_STATS = ("sum", "min", "max", "mean")


def _is_wall_clock(key: str) -> bool:
    """True for wall-clock timer values: a bare ``*_ms`` scalar or a
    ``*_ms`` histogram's duration statistics.  ``*_ms.count`` (how many
    spans ran — an event count) and names that merely contain ``_ms``
    (``dropped_msgs``) are deterministic and kept."""
    if key.endswith("_ms"):
        return True
    prefix, _, stat = key.rpartition(".")
    return stat in _TIMER_STATS and prefix.endswith("_ms")


def _is_batch_telemetry(key: str) -> bool:
    """True for tier-3 batching counters: how packets *grouped* into
    batches is an execution-strategy detail (it depends on the
    batch-size flag, not on what the experiment computed), so these
    keys stay out of the canonical record — that is what keeps records
    byte-identical with batching on vs off."""
    return (key.endswith(".fastpath_batches")
            or key.endswith(".batched_packets")
            or ".batch_size" in key)


def _is_shard_telemetry(key: str) -> bool:
    """True for sharded-execution telemetry: how events *scheduled*
    across segment simulators (per-segment ``sim.<net>.<segment>.*``
    scopes, whose very presence depends on ``shard_segments``) and the
    physical state of each heap's lazy-deletion machinery
    (``heap_size`` / ``cancelled_pending``, which depend on per-queue
    compaction thresholds) are execution-strategy details — excluding
    them is what keeps records byte-identical sharded vs serial, the
    same rule PR 6 applied to batch-grouping telemetry."""
    if key.endswith(".heap_size") or key.endswith(".cancelled_pending"):
        return True
    if not key.startswith("sim"):
        return False
    scope, _, _ = key.rpartition(".")
    # sim.<net>.<segment>.<field> — a per-segment simulator scope
    parts = scope.split(".")
    return len(parts) >= 3 and parts[-1].isdigit()


def deterministic_metrics(metrics: dict[str, Any]) -> dict[str, Any]:
    """The subset of a ``metrics_snapshot()`` that is a pure function
    of (code, params, seed): drops the process-wide ``global.`` scope
    (it accumulates across runs sharing a process), the wall-clock
    values of ``*_ms`` timer histograms (their ``.count`` stays), and
    the tier-3 batch-grouping / sharded-execution telemetry."""
    return {key: value for key, value in sorted(metrics.items())
            if not key.startswith("global.")
            and not _is_wall_clock(key)
            and not _is_batch_telemetry(key)
            and not _is_shard_telemetry(key)}


def jsonify(value: Any) -> Any:
    """Recursively convert a figures payload to plain JSON types.

    Dataclasses become dicts, enums their values, tuples/sets lists,
    non-string dict keys strings, and anything else falls back to
    ``str`` — deterministically, so equal payloads yield equal JSON.
    """
    if isinstance(value, enum.Enum):
        return jsonify(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonify(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class ExperimentResult:
    """One experiment run: what ran (``name``, ``params``, ``seed``),
    what it measured (``figures``), and how the network behaved while
    it did (``metrics``, a full ``metrics_snapshot()``)."""

    name: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    metrics: dict[str, Any] = field(default_factory=dict)
    figures: dict[str, Any] = field(default_factory=dict)

    #: registry key of the experiment that produced this result
    _EXPERIMENT: ClassVar[str] = ""
    #: legacy attributes routed into ``params`` (deprecated surface)
    _PARAM_FIELDS: ClassVar[tuple[str, ...]] = ()
    #: figure keys holding wall-clock values, kept out of ``record()``
    _VOLATILE_FIGURES: ClassVar[tuple[str, ...]] = ()

    # -- legacy attribute shim --------------------------------------------------

    def __getattr__(self, attr: str) -> Any:
        # Deprecated: pre-1.1 result dataclasses exposed their payload
        # as flat attributes.  Route those reads into params/figures so
        # existing callers keep working for one release.  Guard against
        # recursion during unpickling, when __dict__ is not yet set.
        if not attr.startswith("_"):
            d = object.__getattribute__(self, "__dict__")
            figures = d.get("figures")
            if figures is not None and attr in figures:
                return figures[attr]
            params = d.get("params")
            if params is not None and attr in params:
                return params[attr]
        raise AttributeError(
            f"{type(self).__name__} has no attribute {attr!r}")

    # -- canonical serialization ------------------------------------------------

    @property
    def experiment(self) -> str:
        return self._EXPERIMENT or self.name

    def record(self) -> dict[str, Any]:
        """The canonical, deterministic form: byte-identical for equal
        (code, params, seed), whichever worker produced it."""
        return {
            "name": self.name,
            "experiment": self.experiment,
            "params": jsonify(self.params),
            "seed": self.seed,
            "metrics": deterministic_metrics(self.metrics),
            "figures": {key: jsonify(value)
                        for key, value in self.figures.items()
                        if key not in self._VOLATILE_FIGURES},
        }

    def volatile(self) -> dict[str, Any]:
        """Wall-clock figures (codegen times, benchmark elapsed) — real
        measurements, but not comparable across runs, so they ride
        beside the record instead of inside it."""
        return {key: jsonify(self.figures[key])
                for key in self._VOLATILE_FIGURES
                if key in self.figures}

    def to_json(self) -> str:
        return json.dumps(self.record(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_record(cls, record: dict[str, Any],
                    volatile: dict[str, Any] | None = None,
                    ) -> "ExperimentResult":
        """Rebuild a result from its stored form.  Subclasses rehydrate
        their domain objects (samples, rows) so the legacy helper
        methods keep working on loaded results."""
        result = cls.__new__(cls)
        figures = dict(record.get("figures", {}))
        if volatile:
            figures.update(volatile)
        ExperimentResult.__init__(
            result, name=record.get("name", ""),
            params=dict(record.get("params", {})),
            seed=record.get("seed", 0),
            metrics=dict(record.get("metrics", {})),
            figures=figures)
        result._rehydrate()
        return result

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_record(json.loads(text))

    def _rehydrate(self) -> None:
        """Hook for subclasses: convert jsonified figures back to their
        in-memory types after :meth:`from_record`."""


class LegacyResult(ExperimentResult):
    """Base for the per-app shims: construct from the legacy flat
    keyword fields, routing them into ``params`` / ``figures``.

    ``AudioExperimentResult(adaptation=True, duration=45.0, ...)``
    still works; the fields named in ``_PARAM_FIELDS`` land in
    ``params`` and everything else in ``figures``.
    """

    def __init__(self, *, name: str = "", seed: int = 0,
                 metrics: dict[str, Any] | None = None,
                 **fields: Any):
        params = {key: fields.pop(key) for key in self._PARAM_FIELDS
                  if key in fields}
        super().__init__(name=name or self._EXPERIMENT, params=params,
                         seed=seed, metrics=metrics or {},
                         figures=fields)
