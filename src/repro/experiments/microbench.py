"""Execution-engine microbenchmark (paper §2.4's performance claims).

The paper measured a PLAN-P Ethernet bridge against the same program
written in C inside the kernel and found "no overhead"; against Java
(Harissa-compiled) the JIT output was twice as fast.  Here the bridge
workload is a flow-accounting forwarder; we compare per-packet cost of:

* the PLAN-P interpreter (the portable baseline);
* the closure-specialized JIT;
* the source-compiled JIT;
* a hand-written Python function ("built-in C") using the same context
  API.

The reproducible claim is *relative*: the JIT backends should sit within
a small factor of the built-in version, with the interpreter well
behind.
"""

from __future__ import annotations

from ..interp.context import RecordingContext
from ..interp.values import PlanPTable, UNIT
from ..jit.pipeline import make_engine
from ..lang import parse, typecheck
from ..net.addresses import HostAddr
from ..net.packet import IpHeader, TcpHeader
from ..obs import GLOBAL
from ..obs.spans import span
from .compat import keyword_only
from .result import LegacyResult

#: The bridge-class workload: per-flow packet accounting + forwarding.
BRIDGE_ASP = """\
-- A flow-accounting bridge: counts packets per (src, dst) flow and
-- forwards everything (the paper's Ethernet-bridge benchmark class).

channel network(ps : int, ss : (int) hash_table, p : ip*tcp*blob)
initstate mkTable(1024) is
  let
    val iph : ip = #1 p
    val tcp : tcp = #2 p
    val key : host*host = (ipSrc(iph), ipDst(iph))
    val count : int = tableGetDefault(ss, key, 0)
  in
    (tableSet(ss, key, count + 1);
     OnRemote(network, p);
     (ps + 1, ss))
  end
"""


def make_bridge_packets(n_flows: int = 16) -> list[tuple]:
    """Packet values cycling over ``n_flows`` distinct flows."""
    packets = []
    for i in range(n_flows):
        ip = IpHeader(src=HostAddr(0x0A000100 + i),
                      dst=HostAddr(0x0A000200 + (i * 7) % n_flows))
        packets.append((ip, TcpHeader(src_port=40000 + i, dst_port=80),
                        b"x" * 64))
    return packets


def builtin_bridge(ctx, table: PlanPTable, ps: int,
                   packet: tuple) -> int:
    """The hand-written equivalent of BRIDGE_ASP (the 'C' version)."""
    iph = packet[0]
    key = (iph.src, iph.dst)
    count = table.get_default(key, 0)
    table.put(key, count + 1)
    ctx.emit_remote("network", packet)
    return ps + 1


class MicrobenchResult(LegacyResult):
    """Unified result of one engine microbenchmark.  ``params``:
    ``engine``, ``packets``; ``figures``: the wall-clock ``elapsed_s``
    (volatile: excluded from the canonical record).  The legacy
    positional constructor and flat attribute access keep working for
    one release."""

    _EXPERIMENT = "microbench"
    _PARAM_FIELDS = ("engine", "packets")
    _VOLATILE_FIGURES = ("elapsed_s",)

    def __init__(self, engine: str, packets: int, elapsed_s: float,
                 **kwargs):
        super().__init__(engine=engine, packets=packets,
                         elapsed_s=elapsed_s, **kwargs)

    @property
    def us_per_packet(self) -> float:
        return self.elapsed_s / self.packets * 1e6

    @property
    def packets_per_second(self) -> float:
        return self.packets / self.elapsed_s if self.elapsed_s else 0.0


def _process_metrics() -> dict:
    """The microbenchmark has no Network of its own, so its snapshot is
    the process-wide registry — the scope ``Network.metrics_snapshot()``
    reports under the ``global.`` prefix.  Use the same prefix here so
    the determinism filter recognises it as process-scoped."""
    return {f"global.{key}": value
            for key, value in GLOBAL.snapshot().items()}


class _NullContext(RecordingContext):
    """A context that discards emissions (so the benchmark measures the
    engine, not list growth)."""

    def emit_remote(self, channel: str, packet_value: tuple) -> None:
        pass


@keyword_only("engine", "n_packets", "n_flows")
def run_engine_microbench(*, engine: str, n_packets: int = 20_000,
                          n_flows: int = 16,
                          seed: int = 0) -> MicrobenchResult:
    """Time ``n_packets`` channel invocations on one engine.

    ``engine`` is an execution backend name or ``"builtin"``.
    ``seed`` is accepted for the uniform harness signature; the
    workload is deterministic (cycling flows, no RNG), so it does not
    influence the measurement.
    """
    del seed  # seedless workload; accepted for signature uniformity
    engine_name = engine
    packets = make_bridge_packets(n_flows)
    ctx = _NullContext()
    if engine_name == "builtin":
        table = PlanPTable(1024)
        ps = 0
        with span("microbench.builtin_ms") as timer:
            for i in range(n_packets):
                ps = builtin_bridge(ctx, table, ps, packets[i % n_flows])
        return MicrobenchResult("builtin", n_packets, timer.elapsed_s,
                                metrics=_process_metrics())

    info = typecheck(parse(BRIDGE_ASP))
    engine = make_engine(info, engine_name, ctx)
    decl = info.channels["network"][0]
    ps: object = 0
    ss = engine.initial_channel_state(decl, ctx)
    with span(f"microbench.{engine_name}_ms") as timer:
        for i in range(n_packets):
            ps, ss = engine.run_channel(decl, ps, ss,
                                        packets[i % n_flows], ctx)
    return MicrobenchResult(engine_name, n_packets, timer.elapsed_s,
                            metrics=_process_metrics())


ENGINES = ("interpreter", "closure", "source", "builtin")


def main(argv: list[str] | None = None) -> int:
    """CLI: run the engine comparison, optionally dumping JSON.

    ``--smoke`` shrinks the packet count so CI can run the instrumented
    benchmark in seconds; ``--json PATH`` writes per-engine results plus
    the process-wide metrics snapshot (the CI artifact).
    """
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.microbench",
        description="PLAN-P execution-engine microbenchmark")
    parser.add_argument("--engines", nargs="*", default=list(ENGINES),
                        choices=ENGINES, metavar="ENGINE")
    parser.add_argument("--packets", type=int, default=20_000)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run (2000 packets) for CI")
    parser.add_argument("--json", metavar="PATH",
                        help="write results + metrics snapshot as JSON")
    args = parser.parse_args(argv)
    n_packets = 2_000 if args.smoke else args.packets

    results = [run_engine_microbench(engine=name, n_packets=n_packets)
               for name in args.engines]
    for r in results:
        print(f"{r.engine:>12s}  {r.us_per_packet:8.2f} us/packet  "
              f"({r.packets} packets)")
    if args.json:
        doc = {"smoke": args.smoke,
               "results": [{"engine": r.engine, "packets": r.packets,
                            "elapsed_s": r.elapsed_s,
                            "us_per_packet": r.us_per_packet}
                           for r in results],
               "metrics": GLOBAL.snapshot()}
        with open(args.json, "w") as fp:
            json.dump(doc, fp, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
