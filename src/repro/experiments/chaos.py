"""Chaos drills: the lifecycle manager and the apps under scripted faults.

Three profiles, all deterministic under the scenario seed:

* ``drill`` — the poisoned-ASP drill of the lifecycle manager: a
  16-router chain runs a good forwarding ASP (generation 1), a
  known-bad ASP (raises on every packet whose leading payload byte is
  divisible by 5) is rolled out twice — once through the canary health
  gate (which must abort it) and once force-promoted (which the
  per-node circuit breakers must quarantine and automatically roll
  back) — and delivery throughput must recover to within 5% of the
  pre-deploy baseline.
* ``audio`` — the figure 5/6 audio experiment under a scripted
  link-flap timeline (the source uplink fails twice, mid-run).
* ``http`` — a figure 8 HTTP configuration with one backend's link
  flapping mid-run.

The app profiles assert *operational* properties — the run completes,
every fault heals, routing reconverges — while the drill asserts the
full rollout → quarantine → rollback state machine.  All three emit
their verdict in ``figures`` (``healthy``, ``quarantined_at_end``,
``faults_injected``) so the chaos matrix and CI can gate on them.
"""

from __future__ import annotations

from ..net import Network
from ..net.packet import udp_packet
from ..obs import Observability
from ..runtime.deployment import Deployment
from ..runtime.lifecycle import (LifecycleManager, LifecyclePolicy,
                                 RolloutState)
from .result import LegacyResult

#: Generation 1: a verified pass-through forwarder.
GOOD_ASP = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""

#: The known-bad ASP: divides by zero whenever the leading payload byte
#: is divisible by 5 — a deterministic ~20% runtime-error rate against
#: the drill's rotating-byte traffic.  It cannot pass verification (the
#: delivery analysis sees the possible DivideByZero), so the drill
#: installs it with ``verify=False``: the paper's
#: authenticated-privileged path, exactly the case the lifecycle
#: manager exists to contain.
BAD_ASP = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val body : blob = #3 p
    val seq : int = blobByte(body, 0)
    val poison : int = 1 / (seq mod 5)
  in
    (OnRemote(network, p); (ps + poison - poison + 1, ss))
  end
"""


class ChaosResult(LegacyResult):
    """Unified result of one chaos drill.  ``params``: ``profile`` and
    the topology/timing knobs; ``figures``: the drill verdict
    (``healthy``, ``canary_aborted``, ``trips``, ``rollbacks``,
    ``quarantined_at_end``, ``recovery_ratio``, ...)."""

    _EXPERIMENT = "chaos"
    _PARAM_FIELDS = ("profile", "n_routers", "duration")

    @property
    def healthy(self) -> bool:
        return bool(self.figures.get("healthy"))


def run_chaos_experiment(*, profile: str = "drill", seed: int = 5,
                         n_routers: int = 16, duration: float = 12.0,
                         backend: str = "closure",
                         obs: Observability | None = None) -> ChaosResult:
    """Run one chaos profile; see the module docstring."""
    if profile == "drill":
        return _run_drill(seed=seed, n_routers=n_routers,
                          duration=duration, backend=backend, obs=obs)
    if profile == "audio":
        return _run_audio_faults(seed=seed, duration=duration, obs=obs)
    if profile == "http":
        return _run_http_faults(seed=seed, duration=duration, obs=obs)
    raise ValueError(f"unknown chaos profile {profile!r}; "
                     f"pick from ('drill', 'audio', 'http')")


# ---------------------------------------------------------------------------
# drill: poisoned-ASP rollout / quarantine / rollback
# ---------------------------------------------------------------------------


def _run_drill(*, seed: int, n_routers: int, duration: float,
               backend: str, obs: Observability | None) -> ChaosResult:
    net = Network(seed=seed, obs=obs)
    src = net.add_host("src")
    routers = [net.add_router(f"r{i}") for i in range(n_routers)]
    dst = net.add_host("dst")
    prev = src
    for router in routers:
        net.link(prev, router, bandwidth=100e6, latency=0.0002)
        prev = router
    net.link(prev, dst, bandwidth=100e6, latency=0.0002)
    net.finalize()

    policy = LifecyclePolicy(canary_fraction=0.25, health_window=0.5,
                             error_budget=3, budget_window=0.5,
                             cooldown=0.3, rollback_after_trips=2)
    manager = LifecycleManager(net, deployment=Deployment(),
                               policy=policy)
    manager.manage(*routers)

    # Generation 1: the good forwarder, fleet-wide (initial install —
    # there is nothing to canary against yet).
    manager.rollout(GOOD_ASP, routers, backend=backend,
                    source_name="chaos-good", force=True)

    delivered: list[float] = []
    dst.delivery_taps.append(lambda p: delivered.append(net.now))

    tick = 0.02
    counter = [0]

    def send() -> None:
        payload = bytes([counter[0] % 256])
        counter[0] += 1
        src.ip_send(udp_packet(src.address, dst.address, 5000, 7000,
                               payload))
        net.sim.schedule(tick, send)

    net.sim.schedule(0.0, send)

    # t=2: canary rollout of the bad ASP — the health gate must abort.
    bad_rollouts: list = []

    def canary_bad() -> None:
        bad_rollouts.append(manager.rollout(
            BAD_ASP, routers, backend=backend, verify=False,
            source_name="chaos-bad"))

    # t=4: an impatient operator force-promotes the same bad ASP —
    # the breakers must quarantine it and roll the fleet back.
    def force_bad() -> None:
        bad_rollouts.append(manager.rollout(
            BAD_ASP, routers, backend=backend, verify=False,
            source_name="chaos-bad", force=True))

    net.sim.at(2.0, canary_bad)
    net.sim.at(4.0, force_bad)
    net.run(until=duration)

    in_window = lambda lo, hi: sum(1 for t in delivered  # noqa: E731
                                   if lo <= t < hi)
    # Baseline: generation 1 at steady state; recovery: the last full
    # second of the run, well after the automatic rollback.
    baseline = in_window(1.0, 2.0)
    recovered = in_window(duration - 1.5, duration - 0.5)
    good_sha = manager.deployment.cache.digest(GOOD_ASP)
    final_generations = {
        name: (nl.current.sha[:12] if nl.current is not None else "")
        for name, nl in sorted(manager.nodes.items())}
    canary, forced = (bad_rollouts + [None, None])[:2]
    figures = {
        "healthy": (not manager.quarantined_nodes()
                    and manager.rollbacks >= 1
                    and all(nl.current is not None
                            and nl.current.sha == good_sha
                            for nl in manager.nodes.values())),
        "canary_aborted": (canary is not None
                           and canary.state is RolloutState.ABORTED),
        "abort_reason": canary.reason if canary is not None else "",
        "force_promoted": (forced is not None
                           and forced.state is RolloutState.PROMOTED),
        "trips": manager.trips,
        "quarantines": manager.quarantines,
        "half_opens": manager.half_opens,
        "rollbacks": manager.rollbacks,
        "quarantined_at_end": len(manager.quarantined_nodes()),
        "baseline_delivered": baseline,
        "recovered_delivered": recovered,
        "recovery_ratio": (recovered / baseline) if baseline else 0.0,
        "final_generations": final_generations,
        "lifecycle_events": sum(
            1 for e in net.obs.events.filter()
            if e.kind in ("rollout", "quarantine", "rollback")),
    }
    return ChaosResult(seed=seed, profile="drill", n_routers=n_routers,
                       duration=duration,
                       metrics=net.metrics_snapshot(), **figures)


# ---------------------------------------------------------------------------
# audio / http: the real experiments under scripted link faults
# ---------------------------------------------------------------------------


def _flap_timeline(net: Network, medium_name: str,
                   flaps: list[tuple[float, float]]) -> None:
    """Schedule ``(down_at, up_at)`` flaps of the named medium."""
    medium = next(m for m in net.media if m.name == medium_name)
    faults = net.faults
    for down_at, up_at in flaps:
        faults.at(down_at, faults.link_down, medium)
        faults.at(up_at, faults.link_up, medium)


def _fault_figures(net: Network) -> dict:
    faults = net.faults
    return {
        "healthy": all(m.up for m in net.media)
        and all(node.up for node in net.nodes),
        "quarantined_at_end": 0,
        "faults_injected": len(faults.log),
        "reconvergences": faults.reconvergences,
    }


def _run_audio_faults(*, seed: int, duration: float,
                      obs: Observability | None) -> ChaosResult:
    from ..apps.audio.experiment import run_audio_experiment

    nets: list[Network] = []

    def tracer(net: Network) -> None:
        nets.append(net)
        # The source uplink fails twice, briefly, mid-run.
        _flap_timeline(net, "audio-source--router",
                       [(duration * 0.3, duration * 0.35),
                        (duration * 0.6, duration * 0.65)])

    result = run_audio_experiment(adaptation=True, duration=duration,
                                  seed=seed, obs=obs, tracer=tracer)
    net = nets[0]
    figures = _fault_figures(net)
    figures["frames_sent"] = result.figures.get("frames_sent", 0)
    figures["frames_received"] = result.figures.get("frames_received", 0)
    figures["silent_periods"] = result.figures.get("silent_periods", 0)
    return ChaosResult(seed=seed, profile="audio", n_routers=1,
                       duration=duration,
                       metrics=net.metrics_snapshot(), **figures)


def _run_http_faults(*, seed: int, duration: float,
                     obs: Observability | None) -> ChaosResult:
    from ..apps.http.experiment import run_http_experiment

    nets: list[Network] = []

    def tracer(net: Network) -> None:
        nets.append(net)
        # One backend's link flaps mid-run; the gateway must keep
        # serving from the survivor and pick the backend up again.
        _flap_timeline(net, "server1--gateway",
                       [(duration * 0.4, duration * 0.55)])

    result = run_http_experiment(mode="asp", n_clients=4,
                                 duration=duration, warmup=2.0,
                                 seed=seed, obs=obs, tracer=tracer)
    net = nets[0]
    figures = _fault_figures(net)
    figures["completed"] = result.figures.get("completed", 0)
    figures["failures"] = result.figures.get("failures", 0)
    return ChaosResult(seed=seed, profile="http", n_routers=1,
                       duration=duration,
                       metrics=net.metrics_snapshot(), **figures)
