"""Figure 3: code-generation time for the five experiment ASPs.

The paper's table reports, per program, its size in lines and the time
the Tempo-generated JIT needs to produce machine code for it.  We report
the same rows for our two JIT backends (closure specialization and
Python-source generation), measured on the program actually shipped by
:mod:`repro.asps`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..asps import (audio_client_asp, audio_router_asp, http_gateway_asp,
                    mpeg_client_asp, mpeg_monitor_asp)
from ..interp.context import RecordingContext
from ..jit.pipeline import count_source_lines, make_engine
from ..lang import parse, typecheck
from ..obs.spans import span
from .result import LegacyResult

#: name -> (source, paper lines, paper codegen ms), for side-by-side
#: reporting.  Paper values are from Figure 3.
PAPER_PROGRAMS: dict[str, tuple[str, int, float]] = {
    "Audio Broadcasting (router)": (audio_router_asp(), 68, 11.0),
    "Audio Broadcasting (client)": (audio_client_asp(), 28, 6.2),
    "Extensible Web Server": (
        http_gateway_asp("10.0.1.2", ["10.0.2.2", "10.0.3.2"]), 91, 15.3),
    "MPEG (monitor)": (mpeg_monitor_asp(), 161, 33.9),
    "MPEG (client)": (mpeg_client_asp(), 53, 6.1),
}


@dataclass
class Fig3Row:
    name: str
    lines: int
    paper_lines: int
    paper_codegen_ms: float
    codegen_ms: dict[str, float]  # backend -> measured ms (median)


class Fig3Result(LegacyResult):
    """Unified result of the figure 3 table.  ``figures["rows"]`` holds
    the :class:`Fig3Row` list — wall-clock codegen timings, so the
    whole payload is volatile (excluded from the canonical record)."""

    _EXPERIMENT = "fig3"
    _VOLATILE_FIGURES = ("rows",)

    def _rehydrate(self) -> None:
        rows = self.figures.get("rows")
        if rows and isinstance(rows[0], dict):
            self.figures["rows"] = [Fig3Row(**row) for row in rows]


def _measure_codegen(source: str, backend: str, repeats: int) -> float:
    program = parse(source)
    info = typecheck(program)
    times = []
    for _ in range(repeats):
        ctx = RecordingContext()
        with span(f"fig3.codegen_{backend}_ms") as timer:
            make_engine(info, backend, ctx)
        times.append(timer.elapsed_ms)
    return statistics.median(times)


def fig3_codegen_table(backends: tuple[str, ...] = ("closure", "source"),
                       repeats: int = 5) -> list[Fig3Row]:
    """Measure the Figure 3 table for the shipped ASPs."""
    rows = []
    for name, (source, paper_lines, paper_ms) in PAPER_PROGRAMS.items():
        measured = {backend: _measure_codegen(source, backend, repeats)
                    for backend in backends}
        rows.append(Fig3Row(name=name,
                            lines=count_source_lines(source),
                            paper_lines=paper_lines,
                            paper_codegen_ms=paper_ms,
                            codegen_ms=measured))
    return rows


def format_fig3_table(rows: list[Fig3Row]) -> str:
    backends = list(rows[0].codegen_ms) if rows else []
    header = (f"{'program':34s} {'lines':>5s} {'paper-lines':>11s} "
              f"{'paper-ms':>8s}"
              + "".join(f" {b + '-ms':>10s}" for b in backends))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:34s} {row.lines:5d} {row.paper_lines:11d} "
            f"{row.paper_codegen_ms:8.1f}"
            + "".join(f" {row.codegen_ms[b]:10.2f}" for b in backends))
    return "\n".join(lines)
