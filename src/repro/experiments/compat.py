"""Signature-compat shims for the 1.x → harness transition.

Every experiment entry point is now keyword-only with one naming
convention (see DESIGN.md §12): ``seed`` everywhere, ``n_clients`` for
a client count, ``client_counts`` for a sweep over client counts,
``load_levels_bps`` for a sweep over offered loads, ``duration`` in
simulated seconds, plus the uniform instrumentation pair ``obs`` (an
:class:`~repro.obs.Observability` scope to measure into) and ``tracer``
(a hook called with the finalized :class:`~repro.net.topology.Network`
before traffic starts).  The pre-1.1 positional call forms still work
for one release, via :func:`keyword_only`, but emit a
``DeprecationWarning`` naming the keyword to use.

The implementations live in :mod:`repro._compat` (dependency-free, so
core modules can use them without importing this package); this module
re-exports them under their historical home.
"""

from __future__ import annotations

from .._compat import keyword_only, keyword_only_init

__all__ = ["keyword_only", "keyword_only_init"]
