"""Signature-compat shims for the 1.x → harness transition.

Every experiment entry point is now keyword-only with one naming
convention (see DESIGN.md §12): ``seed`` everywhere, ``n_clients`` for
a client count, ``client_counts`` for a sweep over client counts,
``load_levels_bps`` for a sweep over offered loads, ``duration`` in
simulated seconds, plus the uniform instrumentation pair ``obs`` (an
:class:`~repro.obs.Observability` scope to measure into) and ``tracer``
(a hook called with the finalized :class:`~repro.net.topology.Network`
before traffic starts).  The pre-1.1 positional call forms still work
for one release, via :func:`keyword_only`, but emit a
``DeprecationWarning`` naming the keyword to use.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable


def keyword_only(*names: str) -> Callable:
    """Wrap a keyword-only function so legacy positional calls still
    work: positional arguments map onto ``names`` in order, with a
    :class:`DeprecationWarning` telling the caller the keyword form.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if args:
                if len(args) > len(names):
                    raise TypeError(
                        f"{fn.__name__}() takes at most {len(names)} "
                        f"positional arguments ({len(args)} given)")
                mapped = dict(zip(names, args))
                clash = set(mapped) & set(kwargs)
                if clash:
                    raise TypeError(
                        f"{fn.__name__}() got multiple values for "
                        f"{sorted(clash)}")
                warnings.warn(
                    f"positional arguments to {fn.__name__}() are "
                    f"deprecated; pass "
                    f"{', '.join(f'{k}=...' for k in mapped)} as "
                    f"keywords", DeprecationWarning, stacklevel=2)
                kwargs.update(mapped)
            return fn(**kwargs)
        return wrapper
    return decorate
