"""One-command regeneration of the EXPERIMENTS.md measurements.

    python -m repro.experiments.report            # full scale
    python -m repro.experiments.report --quick    # smoke scale
    python -m repro.experiments.report --workers 4

Report generation is **O(read)**: the tables are formatted from the
JSONL result store (``results/`` by default), not from fresh
simulations.  Scenarios whose records are missing are run first —
through the harness, in parallel with ``--workers``, landing in the
store — so the command still works from a cold start, and a second
invocation formats purely from cache.  ``--no-run`` disables that
fallback and fails if records are missing (pair it with
``python -m repro.tools.runx sweep --matrix report-full``).
"""

from __future__ import annotations

import argparse
import sys

from ..harness.cache import cache_key
from ..harness.matrix import (ENGINES, FULL, GAP_SWEEP_LOADS, QUICK, Scale,
                              report_matrix)
from ..harness.registry import rehydrate
from ..harness.runner import Runner, relabel_line
from ..harness.store import ResultStore
from .result import ExperimentResult

__all__ = ["FULL", "QUICK", "Scale", "generate", "main"]


def md_table(headers: list[str], rows: list[list[object]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


# -- metrics appendix ----------------------------------------------------------
#
# Each experiment section stashes a curated slice of its stored record
# metrics here; ``generate`` renders them as a closing appendix.  The
# store keeps only deterministic metrics (no wall-clock timers, no
# process-global scope), so the appendix is diffable across runs.

_METRICS: dict[str, dict[str, object]] = {}

_APPENDIX_PREFIXES = (
    "drops_total", "faults_total", "http.errors_total",
    "images.errors_total", "events.", "sim.",
)


def _stash_metrics(section: str, metrics: dict[str, object]) -> None:
    curated = {key: value for key, value in sorted(metrics.items())
               if key.startswith(_APPENDIX_PREFIXES)}
    if curated:
        _METRICS[section] = curated


def _fmt_metric(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def section_metrics_appendix() -> str:
    parts = ["## Appendix — metrics snapshots\n",
             "Selected counters from each experiment's stored record "
             "(the deterministic slice of its `metrics_snapshot()`)."]
    for section, metrics in _METRICS.items():
        rows = [[key, _fmt_metric(value)]
                for key, value in metrics.items()]
        parts.append(f"### {section}\n\n"
                     + md_table(["metric", "value"], rows))
    return "\n\n".join(parts)


# -- section formatters --------------------------------------------------------
#
# Each takes rehydrated results (looked up by scenario name) and the
# scale, and returns markdown.  No formatter runs a simulation.

Results = dict[str, ExperimentResult]


def section_fig3(results: Results, scale: Scale) -> str:
    rows_data = results[f"{scale.name}/fig3"].figures["rows"]
    rows = [[r.name, r.paper_lines, r.lines,
             f"{r.paper_codegen_ms:.1f}",
             f"{r.codegen_ms['closure']:.2f}",
             f"{r.codegen_ms['source']:.2f}"]
            for r in rows_data]
    return ("## Figure 3 — code generation time\n\n"
            + md_table(["program", "paper lines", "our lines",
                        "paper ms", "closure ms", "source ms"], rows))


def section_fig6(results: Results, scale: Scale) -> str:
    from ..apps.audio.codec import FORMAT_NAMES

    result = results[f"{scale.name}/fig6"]
    _stash_metrics("fig6 (audio)", result.metrics)
    d = scale.audio_duration
    windows = [("no load", 0.02 * d, 0.2 * d, "176"),
               ("large load", 0.27 * d, 0.47 * d, "44"),
               ("medium load", 0.53 * d, 0.73 * d, "44..88 (osc)"),
               ("small load", 0.8 * d, 0.98 * d, "88")]
    rows = []
    for name, a, b, paper in windows:
        rows.append([name, paper,
                     f"{result.mean_kbps_between(a, b):.1f}",
                     FORMAT_NAMES[result.dominant_quality_between(a, b)]])
    return (f"## Figure 6 — audio adaptation "
            f"(scaled to {d:.0f} s)\n\n"
            + md_table(["phase", "paper kbit/s", "measured kbit/s",
                        "dominant quality"], rows))


def section_fig7(results: Results, scale: Scale) -> str:
    sweep = results[f"{scale.name}/fig7"]
    rows = []
    for load in GAP_SWEEP_LOADS:
        level = sweep.level(load)
        rows.append([f"{load / 1e6:.1f} Mbit/s",
                     level["without_adaptation"],
                     level["with_adaptation"],
                     level["without_frames"],
                     level["with_frames"]])
    return ("## Figure 7 — silent periods\n\n"
            + md_table(["offered load", "gaps (no ASP)", "gaps (ASP)",
                        "frames (no ASP)", "frames (ASP)"], rows))


def section_fig8(results: Results, scale: Scale) -> str:
    modes = ("single", "asp", "builtin", "disjoint")
    by_mode = {mode: results[f"{scale.name}/fig8/{mode}"]
               for mode in modes}
    _stash_metrics("fig8 (http, asp mode)", by_mode["asp"].metrics)
    rows = [[mode, f"{r.throughput_rps:.1f}",
             f"{r.mean_latency_s * 1000:.1f}",
             f"{r.balance_ratio:.2f}"]
            for mode, r in by_mode.items()]
    asp = by_mode["asp"].throughput_rps
    footer = (f"\nASP/single = "
              f"{asp / by_mode['single'].throughput_rps:.2f} "
              f"(paper 1.75); ASP/disjoint = "
              f"{asp / by_mode['disjoint'].throughput_rps:.2f} "
              f"(paper ~0.85); ASP/builtin = "
              f"{asp / by_mode['builtin'].throughput_rps:.2f} "
              f"(paper: no difference)")
    return ("## Figure 8 — HTTP cluster throughput\n\n"
            + md_table(["configuration", "req/s", "latency ms",
                        "balance"], rows) + footer)


def section_mpeg(results: Results, scale: Scale) -> str:
    with_asps = results[f"{scale.name}/mpeg/asps"]
    without = results[f"{scale.name}/mpeg/plain"]
    _stash_metrics("mpeg (with ASPs)", with_asps.metrics)
    rows = []
    for r in (without, with_asps):
        rows.append(["ASPs" if r.use_asps else "plain",
                     r.server_sessions,
                     f"{r.uplink_bytes / 1e6:.2f} MB",
                     ", ".join(f"{x:.1f}" for x in r.per_client_rate)])
    return ("## Section 3.3 — MPEG multipoint (3 viewers)\n\n"
            + md_table(["config", "server sessions", "uplink",
                        "client fps"], rows))


def section_microbench(results: Results, scale: Scale) -> str:
    by_engine = {engine: results[f"{scale.name}/microbench/{engine}"]
                 for engine in ENGINES}
    builtin = by_engine["builtin"].us_per_packet
    rows = [[name, f"{r.us_per_packet:.2f}",
             f"{r.us_per_packet / builtin:.2f}x"]
            for name, r in by_engine.items()]
    return ("## Section 2.4 — engine microbenchmark\n\n"
            + md_table(["engine", "us/packet", "vs builtin"], rows))


SECTIONS = {
    "fig3": section_fig3,
    "fig6": section_fig6,
    "fig7": section_fig7,
    "fig8": section_fig8,
    "mpeg": section_mpeg,
    "microbench": section_microbench,
}

#: scenario-name suffixes each section reads (under ``<scale>/``)
_SECTION_SCENARIOS = {
    "fig3": ("fig3",),
    "fig6": ("fig6",),
    "fig7": ("fig7",),
    "fig8": tuple(f"fig8/{m}"
                  for m in ("single", "asp", "builtin", "disjoint")),
    "mpeg": ("mpeg/asps", "mpeg/plain"),
    "microbench": tuple(f"microbench/{e}" for e in ENGINES),
}


def _load_results(scale: Scale, sections: list[str],
                  store: ResultStore | None, workers: int,
                  run_missing: bool) -> Results:
    """Rehydrated results for every scenario the sections read.

    With a store, existing records are read (O(read)); missing ones
    are run through the harness (parallel for ``workers > 1``) unless
    ``run_missing`` is false, in which case missing records raise.
    """
    wanted = {f"{scale.name}/{suffix}" for section in sections
              for suffix in _SECTION_SCENARIOS[section]}
    scenarios = [s for s in report_matrix(scale) if s.name in wanted]
    if not run_missing:
        # Look up by content (cache key), not name: a record produced
        # under another matrix's name (e.g. a standard/ sweep) with the
        # same params satisfies the report scenario — relabel it.
        lines = store.by_cache_key() if store is not None else {}
        results: Results = {}
        missing: list[str] = []
        for scenario in scenarios:
            line = lines.get(cache_key(scenario))
            if line is None:
                missing.append(scenario.name)
            else:
                results[scenario.name] = rehydrate(
                    relabel_line(line, scenario))
        if missing:
            raise RuntimeError(
                f"no stored records for {sorted(missing)}; run `python "
                f"-m repro.tools.runx sweep --matrix "
                f"report-{scale.name}` or drop --no-run")
        return results
    report = Runner(store, workers=workers).sweep(scenarios)
    return {line["scenario"]: rehydrate(line) for line in report.lines}


def generate(scale: Scale, only: list[str] | None = None,
             store: ResultStore | None = None, workers: int = 1,
             run_missing: bool = True) -> str:
    sections = [name for name in SECTIONS if not only or name in only]
    results = _load_results(scale, sections, store, workers,
                            run_missing)
    parts = ["# Reproduced results (generated by "
             "`python -m repro.experiments.report`)"]
    _METRICS.clear()
    for name in sections:
        parts.append(SECTIONS[name](results, scale))
    if _METRICS:
        parts.append(section_metrics_appendix())
    return "\n\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments.report")
    parser.add_argument("--quick", action="store_true",
                        help="small-scale smoke run")
    parser.add_argument("--only", nargs="*", choices=sorted(SECTIONS),
                        help="limit to specific sections")
    parser.add_argument("--results", default="results", metavar="DIR",
                        help="JSONL result store (default: results)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="workers for missing scenarios")
    parser.add_argument("--no-run", action="store_true",
                        help="fail on missing records instead of "
                             "running them")
    args = parser.parse_args(argv)
    scale = QUICK if args.quick else FULL
    sys.stdout.write(generate(scale, only=args.only,
                              store=ResultStore(args.results),
                              workers=args.workers,
                              run_missing=not args.no_run))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
