"""One-command regeneration of the EXPERIMENTS.md measurements.

    python -m repro.experiments.report            # full scale
    python -m repro.experiments.report --quick    # smoke scale

Runs every reproduced experiment and emits the paper-vs-measured tables
as markdown on stdout.  The benchmark suite asserts the same shapes;
this module is for humans refreshing the documentation.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass


@dataclass
class Scale:
    audio_duration: float
    gap_duration: float
    http_duration: float
    http_clients: int
    mpeg_duration: float
    microbench_packets: int


FULL = Scale(audio_duration=45.0, gap_duration=25.0, http_duration=12.0,
             http_clients=8, mpeg_duration=15.0,
             microbench_packets=20_000)
QUICK = Scale(audio_duration=18.0, gap_duration=8.0, http_duration=6.0,
              http_clients=4, mpeg_duration=8.0,
              microbench_packets=2_000)


def md_table(headers: list[str], rows: list[list[object]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


# -- metrics appendix ----------------------------------------------------------
#
# Each experiment section stashes a curated slice of its
# ``metrics_snapshot()`` here; ``generate`` renders them as a closing
# appendix.  Per-node / per-link keys are dropped — the appendix shows
# network-wide and process-wide health, not the full snapshot.

_METRICS: dict[str, dict[str, object]] = {}

_APPENDIX_PREFIXES = (
    "drops_total", "faults_total", "http.errors_total",
    "images.errors_total", "events.", "sim.",
    "asp.process_ms.count", "asp.process_ms.mean",
    "global.jit.", "global.verify.", "global.program_cache.",
    "global.interp.", "global.microbench.",
    "jit.", "verify.", "program_cache.", "interp.", "microbench.",
)


def _stash_metrics(section: str, metrics: dict[str, object]) -> None:
    curated = {key: value for key, value in sorted(metrics.items())
               if key.startswith(_APPENDIX_PREFIXES)}
    if curated:
        _METRICS[section] = curated


def _fmt_metric(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def section_metrics_appendix() -> str:
    parts = ["## Appendix — metrics snapshots\n",
             "Selected counters from each experiment's "
             "`metrics_snapshot()` (`global.*` keys are process-wide: "
             "JIT pipeline, verifier, program cache)."]
    for section, metrics in _METRICS.items():
        rows = [[key, _fmt_metric(value)]
                for key, value in metrics.items()]
        parts.append(f"### {section}\n\n"
                     + md_table(["metric", "value"], rows))
    return "\n\n".join(parts)


def section_fig3() -> str:
    from .fig3 import fig3_codegen_table

    rows = [[r.name, r.paper_lines, r.lines,
             f"{r.paper_codegen_ms:.1f}",
             f"{r.codegen_ms['closure']:.2f}",
             f"{r.codegen_ms['source']:.2f}"]
            for r in fig3_codegen_table(repeats=5)]
    return ("## Figure 3 — code generation time\n\n"
            + md_table(["program", "paper lines", "our lines",
                        "paper ms", "closure ms", "source ms"], rows))


def section_fig6(scale: Scale) -> str:
    from ..apps.audio import run_audio_experiment
    from ..apps.audio.codec import FORMAT_NAMES

    result = run_audio_experiment(duration=scale.audio_duration)
    _stash_metrics("fig6 (audio)", result.metrics)
    d = scale.audio_duration
    windows = [("no load", 0.02 * d, 0.2 * d, "176"),
               ("large load", 0.27 * d, 0.47 * d, "44"),
               ("medium load", 0.53 * d, 0.73 * d, "44..88 (osc)"),
               ("small load", 0.8 * d, 0.98 * d, "88")]
    rows = []
    for name, a, b, paper in windows:
        rows.append([name, paper,
                     f"{result.mean_kbps_between(a, b):.1f}",
                     FORMAT_NAMES[result.dominant_quality_between(a, b)]])
    return (f"## Figure 6 — audio adaptation "
            f"(scaled to {d:.0f} s)\n\n"
            + md_table(["phase", "paper kbit/s", "measured kbit/s",
                        "dominant quality"], rows))


def section_fig7(scale: Scale) -> str:
    from ..apps.audio import run_gap_sweep

    loads = [800_000, 1_500_000, 1_900_000]
    sweep = run_gap_sweep(loads, duration=scale.gap_duration)
    rows = [[f"{load / 1e6:.1f} Mbit/s",
             sweep[load]["without_adaptation"],
             sweep[load]["with_adaptation"],
             sweep[load]["without_frames"],
             sweep[load]["with_frames"]] for load in loads]
    return ("## Figure 7 — silent periods\n\n"
            + md_table(["offered load", "gaps (no ASP)", "gaps (ASP)",
                        "frames (no ASP)", "frames (ASP)"], rows))


def section_fig8(scale: Scale) -> str:
    from ..apps.http import generate_trace, run_http_experiment

    trace = generate_trace(4000, seed=11)
    results = {mode: run_http_experiment(
        mode, scale.http_clients, duration=scale.http_duration,
        warmup=scale.http_duration / 4, trace=trace)
        for mode in ("single", "asp", "builtin", "disjoint")}
    _stash_metrics("fig8 (http, asp mode)", results["asp"].metrics)
    rows = [[mode, f"{r.throughput_rps:.1f}",
             f"{r.mean_latency_s * 1000:.1f}",
             f"{r.balance_ratio:.2f}"]
            for mode, r in results.items()]
    asp = results["asp"].throughput_rps
    footer = (f"\nASP/single = "
              f"{asp / results['single'].throughput_rps:.2f} "
              f"(paper 1.75); ASP/disjoint = "
              f"{asp / results['disjoint'].throughput_rps:.2f} "
              f"(paper ~0.85); ASP/builtin = "
              f"{asp / results['builtin'].throughput_rps:.2f} "
              f"(paper: no difference)")
    return ("## Figure 8 — HTTP cluster throughput\n\n"
            + md_table(["configuration", "req/s", "latency ms",
                        "balance"], rows) + footer)


def section_mpeg(scale: Scale) -> str:
    from ..apps.mpeg import run_mpeg_experiment

    with_asps = run_mpeg_experiment(use_asps=True, n_clients=3,
                                    duration=scale.mpeg_duration)
    without = run_mpeg_experiment(use_asps=False, n_clients=3,
                                  duration=scale.mpeg_duration)
    _stash_metrics("mpeg (with ASPs)", with_asps.metrics)
    rows = []
    for r in (without, with_asps):
        rows.append(["ASPs" if r.use_asps else "plain",
                     r.server_sessions,
                     f"{r.uplink_bytes / 1e6:.2f} MB",
                     ", ".join(f"{x:.1f}" for x in r.per_client_rate)])
    return ("## Section 3.3 — MPEG multipoint (3 viewers)\n\n"
            + md_table(["config", "server sessions", "uplink",
                        "client fps"], rows))


def section_microbench(scale: Scale) -> str:
    from .microbench import run_engine_microbench

    results = {name: run_engine_microbench(
        name, n_packets=scale.microbench_packets)
        for name in ("interpreter", "closure", "source", "builtin")}
    _stash_metrics("microbench (process-wide)",
                   results["builtin"].metrics)
    builtin = results["builtin"].us_per_packet
    rows = [[name, f"{r.us_per_packet:.2f}",
             f"{r.us_per_packet / builtin:.2f}x"]
            for name, r in results.items()]
    return ("## Section 2.4 — engine microbenchmark\n\n"
            + md_table(["engine", "us/packet", "vs builtin"], rows))


SECTIONS = {
    "fig3": lambda scale: section_fig3(),
    "fig6": section_fig6,
    "fig7": section_fig7,
    "fig8": section_fig8,
    "mpeg": section_mpeg,
    "microbench": section_microbench,
}


def generate(scale: Scale, only: list[str] | None = None) -> str:
    parts = ["# Reproduced results (generated by "
             "`python -m repro.experiments.report`)"]
    _METRICS.clear()
    for name, fn in SECTIONS.items():
        if only and name not in only:
            continue
        parts.append(fn(scale))
    if _METRICS:
        parts.append(section_metrics_appendix())
    return "\n\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments.report")
    parser.add_argument("--quick", action="store_true",
                        help="small-scale smoke run")
    parser.add_argument("--only", nargs="*", choices=sorted(SECTIONS),
                        help="limit to specific sections")
    args = parser.parse_args(argv)
    scale = QUICK if args.quick else FULL
    sys.stdout.write(generate(scale, only=args.only))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
