"""Experiment harness helpers shared by benchmarks and examples."""

from .fig3 import Fig3Row, fig3_codegen_table, format_fig3_table
from .microbench import (BRIDGE_ASP, MicrobenchResult, make_bridge_packets,
                         run_engine_microbench)

__all__ = [
    "BRIDGE_ASP",
    "Fig3Row",
    "MicrobenchResult",
    "fig3_codegen_table",
    "format_fig3_table",
    "make_bridge_packets",
    "run_engine_microbench",
]
