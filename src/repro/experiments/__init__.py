"""Experiment harness helpers shared by benchmarks and examples."""

from .fig3 import Fig3Result, Fig3Row, fig3_codegen_table, format_fig3_table
from .microbench import (BRIDGE_ASP, MicrobenchResult, make_bridge_packets,
                         run_engine_microbench)
from .result import (ExperimentResult, LegacyResult, deterministic_metrics,
                     jsonify)
from .upgrade import UpgradeResult, run_upgrade_experiment
from .web import ATTACKS, WebResult, run_web_experiment

__all__ = [
    "ATTACKS",
    "BRIDGE_ASP",
    "ExperimentResult",
    "Fig3Result",
    "Fig3Row",
    "LegacyResult",
    "MicrobenchResult",
    "UpgradeResult",
    "WebResult",
    "deterministic_metrics",
    "fig3_codegen_table",
    "format_fig3_table",
    "jsonify",
    "make_bridge_packets",
    "run_engine_microbench",
    "run_upgrade_experiment",
    "run_web_experiment",
]
