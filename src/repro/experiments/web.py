"""The web overload drill: flash crowds and DDoS against the cluster.

The scenario matrix crosses an attack shape with the overload defense
(DESIGN §14):

* ``attack``: ``none`` (diurnal good traffic only), ``flash`` (an
  open-loop crowd spikes onto one hot document), ``syn`` (hosts
  without TCP stacks flood the victim's listen queue with SYNs that
  never complete a handshake), ``elephant`` (closed-loop clients pull
  a huge document through the bottleneck, monopolizing the server's
  serial CPU);
* ``shedding``: off — the historical stack, unbounded backlog, no
  in-network defense — or on: the gateway router runs the combined
  :func:`~repro.asps.overload.shedding_asp` under lifecycle-manager
  protection, and the endpoint degrades gracefully (bounded backlog,
  deadline-aware 503s, AIMD admission control).

The headline figure is **goodput**: completed requests per second of
the well-behaved clients during the attack window.  The benchmark
gates on goodput *retention* versus the no-attack baseline — with
shedding on the goods must keep >= 70% of their baseline through a
10x attack; with shedding off the same attack must collapse them
below 30% (the control that proves the attack is real).

Topology (fixed across every cell so the records compare): a gateway
router fronts one server host on a fast LAN; good clients, attackers
and crowd hosts hang off the gateway on access links.  Partitioning
for ``shard_segments=2`` cuts only the access links (2 ms lookahead):
segment 0 owns the service side, segment 1 the clients — serial and
sharded runs produce byte-identical records.
"""

from __future__ import annotations

from typing import Any

from ..apps.http.client import HttpClientWorker, OpenLoopClient
from ..apps.http.server import HttpServer
from ..apps.http.trace import (Trace, TraceEntry, flood_times,
                               generate_trace, open_loop_arrivals)
from ..asps.overload import shedding_asp
from ..net.node import Node
from ..net.overload import AdmissionController
from ..net.packet import tcp_packet
from ..net.topology import Network
from ..obs import Observability
from ..runtime.deployment import Deployment
from ..runtime.lifecycle import LifecycleManager, LifecyclePolicy
from .result import LegacyResult

ATTACKS = ("none", "flash", "syn", "elephant")

#: the elephant document: big enough that every response overruns the
#: shedder's per-destination byte budget, and each request costs the
#: server ~0.15 s of its serial CPU
ELEPHANT_PATH = "/elephant"
ELEPHANT_SIZE = 750_000

#: SYNs per second per flooding host
SYN_FLOOD_RATE = 150.0

#: the victim's listen-queue bound (a property of the server stack, so
#: it applies with shedding on AND off — the defense is in front of
#: it, not instead of it)
SYN_BACKLOG = 64


class WebResult(LegacyResult):
    """Unified result of one web overload cell.  ``params``: the
    scenario coordinates; ``figures``: goodput, shed/retry/abandon
    accounting, defense counters and the lifecycle verdict."""

    _EXPERIMENT = "web"
    _PARAM_FIELDS = ("attack", "shedding", "n_good", "n_attackers",
                     "duration", "warmup")
    #: execution strategy, not measurement
    _VOLATILE_FIGURES = ("segments",)

    @property
    def goodput(self) -> float:
        return float(self.figures.get("goodput_rps", 0.0))


def run_web_experiment(*, attack: str = "none", shedding: bool = False,
                       n_good: int = 4, n_attackers: int = 4,
                       duration: float = 10.0, warmup: float = 2.5,
                       seed: int = 17, shard_segments: int = 1,
                       backend: str = "closure",
                       obs: Observability | None = None,
                       poison_at: float | None = None) -> WebResult:
    """Run one cell of the overload matrix.

    ``poison_at`` arms the chaos drill: at that time the gateway's
    shedding ASP is poisoned (every invocation raises), which must trip
    the circuit breaker and degrade the router to standard IP without
    killing the run.  Only meaningful with ``shedding=True``.
    """
    if attack not in ATTACKS:
        raise ValueError(f"unknown attack {attack!r}; "
                         f"pick from {ATTACKS}")
    if warmup >= duration:
        raise ValueError("need warmup < duration")

    trace = generate_trace(4000, seed=seed)
    sizes = dict(trace.sizes)
    sizes[ELEPHANT_PATH] = ELEPHANT_SIZE

    def shard_of(node: Node) -> int:
        # service side (gateway + server) vs everything client-side;
        # only 2 ms access links cross the cut
        return 0 if node.name in ("gw", "srv") else 1

    net = Network(seed=seed, name="web", obs=obs,
                  shard_segments=shard_segments,
                  shard_of=shard_of if shard_segments > 1 else None)
    gw = net.add_router("gw")
    srv = net.add_host("srv")
    net.link(srv, gw, bandwidth=100e6, latency=0.0002)

    good_hosts = []
    for i in range(n_good):
        host = net.add_host(f"good{i}")
        net.link(host, gw, bandwidth=10e6, latency=0.002)
        good_hosts.append(host)

    attacker_hosts = []
    if attack != "none":
        prefix = {"flash": "crowd", "syn": "syn",
                  "elephant": "eleph"}[attack]
        for i in range(n_attackers):
            host = net.add_host(f"{prefix}{i}")
            net.link(host, gw, bandwidth=10e6, latency=0.002)
            attacker_hosts.append(host)

    net.finalize()

    # -- the endpoint: graceful degradation only with shedding on ------
    admission = AdmissionController(
        rate=400.0, floor=20.0, ceiling=2000.0, increase=5.0,
        decrease=0.5, burst=50.0) if shedding else None
    server = HttpServer(net, srv, sizes,
                        max_backlog=64 if shedding else None,
                        request_deadline=2.0 if shedding else None,
                        admission=admission, syn_backlog=SYN_BACKLOG)

    # -- the network defense: the shedding ASP at the gateway ----------
    manager = None
    if shedding:
        policy = LifecyclePolicy(error_budget=5, budget_window=0.5,
                                 cooldown=0.4, rollback_after_trips=3)
        manager = LifecycleManager(net, deployment=Deployment(),
                                   policy=policy)
        manager.manage(gw)
        # Drop-capable programs rightly fail delivery verification;
        # this is the authenticated-privileged path, protected by the
        # lifecycle manager's circuit breaker instead.
        manager.rollout(shedding_asp(), [gw], backend=backend,
                        verify=False, force=True,
                        source_name="web-shedder")
    if poison_at is not None:
        net.faults.at(poison_at, net.faults.poison_asp, gw, 1)

    # -- good clients: closed loop with backoff/abandonment ------------
    goods: list[HttpClientWorker] = []
    for i, host in enumerate(good_hosts):
        worker = HttpClientWorker(net, host, srv.address, trace,
                                  trace_offset=i * 97)
        worker.start(at=0.01 + 0.003 * i)
        goods.append(worker)

    # -- the attack ----------------------------------------------------
    flood_sent = [0]
    attackers: list[HttpClientWorker] = []
    crowds: list[OpenLoopClient] = []
    if attack == "syn":
        # Raw SYNs from hosts with no TCP stack: the SYN-ACKs die
        # unanswered (no RST frees the victim's half-open slot), each
        # one pinning a listen-queue entry for the full retransmit
        # schedule — the classic resource-exhaustion flood.
        for host in attacker_hosts:
            times = flood_times(
                start=warmup, duration=duration - warmup,
                rate=SYN_FLOOD_RATE,
                entropy=host.sim.entropy(f"flood:{host.name}"))
            for k, t in enumerate(times):
                def fire(*, host=host, k=k) -> None:
                    host.ip_send(tcp_packet(
                        host.address, srv.address,
                        10_000 + k % 50_000, server.port,
                        syn=True, seq=k))
                    flood_sent[0] += 1

                host.sim.at(t, fire, context=host.ctx)
    elif attack == "elephant":
        elephant_trace = Trace(
            entries=[TraceEntry(ELEPHANT_PATH, ELEPHANT_SIZE)],
            sizes=sizes)
        for i, host in enumerate(attacker_hosts):
            worker = HttpClientWorker(net, host, srv.address,
                                      elephant_trace, max_retries=2)
            worker.start(at=warmup + 0.02 * i)
            attackers.append(worker)
    elif attack == "flash":
        for host in attacker_hosts:
            arrivals = open_loop_arrivals(
                trace, start=warmup, duration=duration - warmup,
                base_rate=15.0, spike_start=warmup + 1.0,
                spike_end=duration - 1.0, spike_multiplier=10.0,
                hot_fraction=0.8,
                entropy=host.sim.entropy(f"crowd:{host.name}"))
            crowd = OpenLoopClient(net, host, srv.address, arrivals)
            crowd.start()
            crowds.append(crowd)

    # -- observability: the overload.* scope ---------------------------
    def overload_metrics() -> dict[str, Any]:
        snap: dict[str, Any] = {
            "server": {"shed": server.shed, "expired": server.expired,
                       "served": server.requests_served},
            "syn_backlog_drops": net.tcp(srv).syn_backlog_drops,
            "good": {
                "completed": sum(len(w.completed) for w in goods),
                "retries": sum(w.retries for w in goods),
                "abandoned": sum(w.abandoned for w in goods),
            },
        }
        if admission is not None:
            snap["admission"] = admission.stats_dict()
        if gw.planp is not None:
            snap["gateway_dropped"] = gw.planp.stats.packets_dropped
        return snap

    net.obs.metrics.register("overload", overload_metrics)

    net.run(until=duration)

    # -- harvest: the goodput window is the attack span ----------------
    span = duration - warmup
    good_completed = sum(
        sum(1 for r in w.completed if warmup <= r.completed < duration)
        for w in goods)
    latencies = [r.latency for w in goods for r in w.completed
                 if warmup <= r.completed < duration]
    gateway_dropped = (gw.planp.stats.packets_dropped
                       if gw.planp is not None else 0)
    quarantined = len(manager.quarantined_nodes()) if manager else 0
    figures: dict[str, Any] = {
        "goodput_rps": good_completed / span,
        "good_completed": good_completed,
        "good_failures": sum(w.failures for w in goods),
        "good_retries": sum(w.retries for w in goods),
        "good_abandoned": sum(w.abandoned for w in goods),
        "good_shed_responses": sum(w.shed_responses for w in goods),
        "good_mean_latency_s": (sum(latencies) / len(latencies)
                                if latencies else 0.0),
        "server_served": server.requests_served,
        "server_shed": server.shed,
        "server_expired": server.expired,
        "syn_backlog_drops": net.tcp(srv).syn_backlog_drops,
        "gateway_dropped": gateway_dropped,
        "admission_refused": admission.refused if admission else 0,
        "flood_sent": flood_sent[0],
        "attacker_completed": sum(len(w.completed) for w in attackers),
        "attacker_abandoned": sum(w.abandoned for w in attackers),
        "crowd_completed": sum(len(c.completed) for c in crowds),
        "crowd_shed": sum(c.shed_responses for c in crowds),
        "crowd_failures": sum(c.failures for c in crowds),
        "trips": manager.trips if manager else 0,
        "quarantines": manager.quarantines if manager else 0,
        "rollbacks": manager.rollbacks if manager else 0,
        "quarantined_at_end": quarantined,
        "healthy": (all(m.up for m in net.media)
                    and all(node.up for node in net.nodes)
                    and quarantined == 0),
        "segments": shard_segments,
    }
    return WebResult(seed=seed, attack=attack, shedding=shedding,
                     n_good=n_good, n_attackers=n_attackers,
                     duration=duration, warmup=warmup,
                     metrics=net.metrics_snapshot(), **figures)
