"""JIT compilation for PLAN-P, generated from the interpreter.

Two backends reproduce the paper's Tempo-generated JIT:

* :class:`repro.jit.specializer.ClosureEngine` — closure specialization
  (the first Futamura projection, staged by hand);
* :class:`repro.jit.codegen.CompiledSourceEngine` — Python source
  emission compiled with ``compile()`` (the machine-code-template
  analogue).
"""

from .codegen import CompiledSourceEngine
from .pipeline import (BACKENDS, Engine, LoadedProgram, count_source_lines,
                       load_program, make_engine)
from .specializer import ClosureEngine

__all__ = [
    "BACKENDS",
    "ClosureEngine",
    "CompiledSourceEngine",
    "Engine",
    "LoadedProgram",
    "count_source_lines",
    "load_program",
    "make_engine",
]
