"""JIT compilation for PLAN-P, generated from the interpreter.

Two backends reproduce the paper's Tempo-generated JIT:

* :class:`repro.jit.specializer.ClosureEngine` — closure specialization
  (the first Futamura projection, staged by hand);
* :class:`repro.jit.codegen.CompiledSourceEngine` — Python source
  emission compiled with ``compile()`` (the machine-code-template
  analogue).
"""

from .codegen import CompiledSourceEngine, SourceArtifact
from .pipeline import (BACKENDS, PROGRAM_CACHE, CacheStats, Engine,
                       LoadedProgram, ProgramCache, count_source_lines,
                       load_program, make_engine)
from .specializer import ClosureEngine

__all__ = [
    "BACKENDS",
    "PROGRAM_CACHE",
    "CacheStats",
    "ClosureEngine",
    "CompiledSourceEngine",
    "Engine",
    "LoadedProgram",
    "ProgramCache",
    "SourceArtifact",
    "count_source_lines",
    "load_program",
    "make_engine",
]
