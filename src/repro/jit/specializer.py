"""The PLAN-P JIT, backend 1: closure specialization.

The paper derives its JIT from the interpreter by partial evaluation
(Tempo): specialising the interpreter to a fixed program removes the AST
dispatch, environment lookup by name, and primitive resolution, leaving
straight-line code.  The Python analogue of that transformation is
*closure generation* (staging): each interpreter case below returns a
Python closure with every static decision already taken —

* AST dispatch happens once, at compile time;
* variable references become indexed loads from a flat frame (the
  name→slot map is compile-time data);
* primitive and user-function bindings are resolved to direct callables;
* top-level ``val`` globals are evaluated at compile time and embedded as
  constants (run-time specialization: compilation happens at program
  download, per node, exactly as in the paper).

The module mirrors :mod:`repro.interp.interpreter` case-for-case;
``tests/jit/test_coverage.py`` fails if a new AST node is handled by one
and not the other.
"""

from __future__ import annotations

from typing import Callable

from ..lang import ast
from ..lang.errors import PlanPRuntimeError
from ..lang.typechecker import ProgramInfo
from ..interp.context import ExecutionContext
from ..interp.env import Env
from ..interp.interpreter import Interpreter, _sml_div
from ..interp.primitives import PRIMITIVES
from ..interp.values import UNIT, default_value, values_equal
from ..net.addresses import HostAddr

#: A compiled expression: (frame, ctx) -> value.
Compiled = Callable[[list, ExecutionContext], object]


class _Scope:
    """Compile-time map from names to frame slots or global constants."""

    def __init__(self):
        self.slots: dict[str, int] = {}
        self.constants: dict[str, object] = {}
        self.n_slots = 0

    def clone(self) -> "_Scope":
        copy = _Scope()
        copy.slots = dict(self.slots)
        copy.constants = dict(self.constants)
        copy.n_slots = self.n_slots
        return copy

    def add_slot(self, name: str) -> int:
        idx = self.n_slots
        self.slots[name] = idx
        self.constants.pop(name, None)
        self.n_slots += 1
        return idx


class ClosureEngine:
    """A program compiled to a tree of Python closures.

    Construction *is* code generation: it evaluates the globals, then
    specializes every function and channel body.  Construction time is
    what the Figure 3 benchmark reports for this backend.
    """

    backend_name = "closure"

    def __init__(self, info: ProgramInfo, ctx: ExecutionContext):
        self._info = info
        self._globals: dict[str, object] = {}
        self._funs: dict[str, tuple[Callable, int, list[str]]] = {}
        self._channel_code: dict[int, tuple[Compiled, int]] = {}
        self._init_code: dict[int, tuple[Compiled, int]] = {}
        self._compile_program(ctx)

    # -- compilation ---------------------------------------------------------

    def _compile_program(self, ctx: ExecutionContext) -> None:
        # Globals are evaluated once with the interpreter (they run once,
        # so interpreting them is what the paper's run-time system does
        # before specialising the packet path).
        interp = Interpreter(self._info)
        genv = Env()
        for decl in self._info.program.vals:
            value = interp.eval(decl.value, genv, ctx)
            genv.bind(decl.name, value)
            self._globals[decl.name] = value

        for name, fun in self._info.funs.items():
            self._compile_fun(name, fun.decl)

        for decl in self._info.all_channels():
            scope = self._base_scope()
            for param in decl.params:
                scope.add_slot(param.name)
            body = self._compile(decl.body, scope)
            self._channel_code[id(decl)] = (body, scope.n_slots)
            if decl.initstate is not None:
                iscope = self._base_scope()
                init = self._compile(decl.initstate, iscope)
                self._init_code[id(decl)] = (init, iscope.n_slots)

    def _base_scope(self) -> _Scope:
        scope = _Scope()
        scope.constants.update(self._globals)
        return scope

    def _compile_fun(self, name: str, decl: ast.FunDecl) -> None:
        scope = self._base_scope()
        for param in decl.params:
            scope.add_slot(param.name)
        body = self._compile(decl.body, scope)
        self._funs[name] = (body, scope.n_slots,
                            [p.name for p in decl.params])

    # -- engine interface (same as Interpreter) --------------------------------

    def initial_channel_state(self, decl: ast.ChannelDecl,
                              ctx: ExecutionContext) -> object:
        entry = self._init_code.get(id(decl))
        if entry is None:
            return default_value(decl.channel_state_type)
        code, n_slots = entry
        return code([None] * n_slots, ctx)

    def run_channel(self, decl: ast.ChannelDecl, protocol_state: object,
                    channel_state: object, packet_value: tuple,
                    ctx: ExecutionContext) -> tuple[object, object]:
        code, n_slots = self._channel_code[id(decl)]
        frame = [None] * n_slots
        frame[0] = protocol_state
        frame[1] = channel_state
        frame[2] = packet_value
        result = code(frame, ctx)
        return result[0], result[1]  # type: ignore[index]

    def run_channel_batch(self, decl: ast.ChannelDecl,
                          protocol_state: object, channel_state: object,
                          batch, ctx: ExecutionContext) -> tuple[object,
                                                                 object]:
        """Tier-3 entry point: fold the specialized closure over a whole
        :class:`~repro.runtime.codec.PacketBatch` in one call.  AST
        dispatch, frame layout, and decode setup are all hoisted; rows
        share the batch's lazily-materialized columns.  Per-row failures
        follow the :class:`~repro.jit.batching.BatchFault` contract."""
        from .batching import BatchFault

        code, n_slots = self._channel_code[id(decl)]
        rows = batch.rows()
        i = 0
        try:
            for value in rows:
                ctx._row = i
                frame = [None] * n_slots
                frame[0] = protocol_state
                frame[1] = channel_state
                frame[2] = value
                result = code(frame, ctx)
                protocol_state = result[0]  # type: ignore[index]
                channel_state = result[1]  # type: ignore[index]
                i += 1
        except BatchFault:
            raise
        except Exception as err:
            raise BatchFault(i, protocol_state, channel_state, err) from err
        return protocol_state, channel_state

    # -- the specializer: one case per interpreter case --------------------------

    def _compile(self, expr: ast.Expr, scope: _Scope) -> Compiled:
        kind = type(expr)

        if kind in (ast.IntLit, ast.BoolLit, ast.StringLit, ast.CharLit):
            value = expr.value  # type: ignore[attr-defined]
            return lambda frame, ctx: value
        if kind is ast.UnitLit:
            return lambda frame, ctx: UNIT
        if kind is ast.HostLit:
            host = HostAddr.parse(expr.value)  # type: ignore[attr-defined]
            return lambda frame, ctx: host
        if kind is ast.Var:
            name = expr.name  # type: ignore[attr-defined]
            if name in scope.slots:
                idx = scope.slots[name]
                return lambda frame, ctx: frame[idx]
            # A global: its value is compile-time data (this is the
            # constant propagation partial evaluation buys).
            value = scope.constants[name]
            return lambda frame, ctx: value
        if kind is ast.BinOp:
            return self._compile_binop(expr, scope)  # type: ignore[arg-type]
        if kind is ast.UnOp:
            operand = self._compile(expr.operand, scope)  # type: ignore[attr-defined]
            if expr.op == "not":  # type: ignore[attr-defined]
                return lambda frame, ctx: not operand(frame, ctx)
            return lambda frame, ctx: -operand(frame, ctx)  # type: ignore[operator]
        if kind is ast.If:
            cond = self._compile(expr.cond, scope)  # type: ignore[attr-defined]
            then = self._compile(expr.then, scope)  # type: ignore[attr-defined]
            orelse = self._compile(expr.orelse, scope)  # type: ignore[attr-defined]
            return lambda frame, ctx: (then(frame, ctx) if cond(frame, ctx)
                                       else orelse(frame, ctx))
        if kind is ast.Let:
            return self._compile_let(expr, scope)  # type: ignore[arg-type]
        if kind is ast.Seq:
            parts = [self._compile(e, scope)
                     for e in expr.exprs]  # type: ignore[attr-defined]
            if len(parts) == 2:
                first, second = parts
                return lambda frame, ctx: (first(frame, ctx),
                                           second(frame, ctx))[1]

            def run_seq(frame: list, ctx: ExecutionContext) -> object:
                result: object = UNIT
                for part in parts:
                    result = part(frame, ctx)
                return result

            return run_seq
        if kind is ast.TupleExpr:
            return self._compile_tuple(expr, scope)  # type: ignore[arg-type]
        if kind is ast.Proj:
            target = self._compile(expr.tuple_expr, scope)  # type: ignore[attr-defined]
            idx = expr.index - 1  # type: ignore[attr-defined]
            return lambda frame, ctx: target(frame, ctx)[idx]  # type: ignore[index]
        if kind is ast.Call:
            return self._compile_call(expr, scope)  # type: ignore[arg-type]
        if kind is ast.Try:
            body = self._compile(expr.body, scope)  # type: ignore[attr-defined]
            handler = self._compile(expr.handler, scope)  # type: ignore[attr-defined]
            exn = expr.exn  # type: ignore[attr-defined]

            def run_try(frame: list, ctx: ExecutionContext) -> object:
                try:
                    return body(frame, ctx)
                except PlanPRuntimeError as err:
                    if exn in ("_", err.exception_name):
                        return handler(frame, ctx)
                    raise

            return run_try
        if kind is ast.Raise:
            exn = expr.exn  # type: ignore[attr-defined]
            pos = expr.pos

            def run_raise(frame: list, ctx: ExecutionContext) -> object:
                raise PlanPRuntimeError(f"exception {exn}", pos,
                                        exception_name=exn)

            return run_raise
        raise TypeError(f"specializer cannot compile {kind.__name__}")

    def _compile_binop(self, expr: ast.BinOp, scope: _Scope) -> Compiled:
        op = expr.op
        left = self._compile(expr.left, scope)
        right = self._compile(expr.right, scope)
        if op == "andalso":
            return lambda f, c: left(f, c) and right(f, c)
        if op == "orelse":
            return lambda f, c: left(f, c) or right(f, c)
        if op == "+":
            return lambda f, c: left(f, c) + right(f, c)  # type: ignore[operator]
        if op == "-":
            return lambda f, c: left(f, c) - right(f, c)  # type: ignore[operator]
        if op == "*":
            return lambda f, c: left(f, c) * right(f, c)  # type: ignore[operator]
        if op in ("/", "mod"):
            pos = expr.pos

            def run_div(f: list, c: ExecutionContext) -> object:
                divisor = right(f, c)
                if divisor == 0:
                    raise PlanPRuntimeError(
                        "division by zero", pos,
                        exception_name="DivideByZero")
                if op == "/":
                    return _sml_div(left(f, c), divisor)  # type: ignore[arg-type]
                return left(f, c) % divisor  # type: ignore[operator]

            return run_div
        if op == "^":
            return lambda f, c: left(f, c) + right(f, c)  # type: ignore[operator]
        if op == "=":
            return lambda f, c: values_equal(left(f, c), right(f, c))
        if op == "<>":
            return lambda f, c: not values_equal(left(f, c), right(f, c))
        if op == "<":
            return lambda f, c: left(f, c) < right(f, c)  # type: ignore[operator]
        if op == ">":
            return lambda f, c: left(f, c) > right(f, c)  # type: ignore[operator]
        if op == "<=":
            return lambda f, c: left(f, c) <= right(f, c)  # type: ignore[operator]
        if op == ">=":
            return lambda f, c: left(f, c) >= right(f, c)  # type: ignore[operator]
        if op == "::":
            return lambda f, c: right(f, c).cons(left(f, c))  # type: ignore[union-attr]
        raise TypeError(f"unknown operator {op!r}")

    def _compile_let(self, expr: ast.Let, scope: _Scope) -> Compiled:
        inner = scope.clone()
        steps: list[tuple[int, Compiled]] = []
        for binding in expr.bindings:
            code = self._compile(binding.value, inner)
            slot = inner.add_slot(binding.name)
            steps.append((slot, code))
        body = self._compile(expr.body, inner)
        # Propagate the enlarged frame size to the enclosing allocation.
        scope.n_slots = max(scope.n_slots, inner.n_slots)

        if len(steps) == 1:
            slot0, code0 = steps[0]

            def run_let1(frame: list, ctx: ExecutionContext) -> object:
                frame[slot0] = code0(frame, ctx)
                return body(frame, ctx)

            return run_let1

        def run_let(frame: list, ctx: ExecutionContext) -> object:
            for slot, code in steps:
                frame[slot] = code(frame, ctx)
            return body(frame, ctx)

        return run_let

    def _compile_tuple(self, expr: ast.TupleExpr, scope: _Scope) -> Compiled:
        parts = [self._compile(e, scope) for e in expr.elems]
        if len(parts) == 2:
            e1, e2 = parts
            return lambda f, c: (e1(f, c), e2(f, c))
        if len(parts) == 3:
            e1, e2, e3 = parts
            return lambda f, c: (e1(f, c), e2(f, c), e3(f, c))
        if len(parts) == 4:
            e1, e2, e3, e4 = parts
            return lambda f, c: (e1(f, c), e2(f, c), e3(f, c), e4(f, c))
        return lambda f, c: tuple(part(f, c) for part in parts)

    def _compile_call(self, expr: ast.Call, scope: _Scope) -> Compiled:
        name = expr.func
        if name == "OnRemote":
            chan = expr.args[0].name  # type: ignore[union-attr]
            packet = self._compile(expr.args[1], scope)

            def run_remote(f: list, c: ExecutionContext) -> object:
                c.emit_remote(chan, packet(f, c))  # type: ignore[arg-type]
                return UNIT

            return run_remote
        if name == "OnNeighbor":
            chan = expr.args[0].name  # type: ignore[union-attr]
            packet = self._compile(expr.args[1], scope)
            neighbor = self._compile(expr.args[2], scope)

            def run_neighbor(f: list, c: ExecutionContext) -> object:
                c.emit_neighbor(chan, packet(f, c),  # type: ignore[arg-type]
                                neighbor(f, c))  # type: ignore[arg-type]
                return UNIT

            return run_neighbor
        if name in self._funs:
            args = [self._compile(a, scope) for a in expr.args]
            # self._funs is read at call time so mutually-independent
            # compile order doesn't matter; resolution is still static.
            body, n_slots, _params = self._funs[name]
            n_args = len(args)

            def run_fun(f: list, c: ExecutionContext) -> object:
                frame = [None] * n_slots
                for i in range(n_args):
                    frame[i] = args[i](f, c)
                return body(frame, c)

            return run_fun
        impl = PRIMITIVES[name].impl
        args = [self._compile(a, scope) for a in expr.args]
        if len(args) == 0:
            return lambda f, c: impl(c, ())  # type: ignore[arg-type]
        if len(args) == 1:
            a1 = args[0]
            return lambda f, c: impl(c, (a1(f, c),))  # type: ignore[arg-type]
        if len(args) == 2:
            a1, a2 = args
            return lambda f, c: impl(c, (a1(f, c), a2(f, c)))  # type: ignore[arg-type]
        if len(args) == 3:
            a1, a2, a3 = args
            return lambda f, c: impl(
                c, (a1(f, c), a2(f, c), a3(f, c)))  # type: ignore[arg-type]
        return lambda f, c: impl(
            c, tuple(a(f, c) for a in args))  # type: ignore[arg-type]
