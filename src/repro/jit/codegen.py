"""The PLAN-P JIT, backend 2: Python source generation.

Tempo's run-time specializer assembles and patches machine-code
*templates* that were produced by a standard C compiler at build time.
The CPython analogue is to emit Python source for each channel and
``fun``, then hand it to the built-in ``compile()`` — the host compiler
plays gcc's role and CPython bytecode plays the role of the machine-code
templates.  Like the closure backend, code generation happens at program
download time, per node, and embeds resolved primitive references.

The translation is statement-based A-normal form: every PLAN-P
expression becomes a Python expression where possible, with ``if``/
``let``/``try`` lowered to statements assigning a fresh temporary.

Emission and bytecode compilation depend only on the checked program,
not on the downloading node, so they are split out as a
:class:`SourceArtifact` that the content-addressed program cache
(:mod:`repro.jit.pipeline`) shares across nodes; only global-``val``
evaluation and the final ``exec`` happen per node.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from types import CodeType
from typing import Callable

from ..lang import ast
from ..lang.errors import PlanPRuntimeError
from ..lang.typechecker import ProgramInfo
from ..interp.context import ExecutionContext
from ..interp.env import Env
from ..interp.interpreter import Interpreter, _sml_div
from ..interp.primitives import PRIMITIVES
from ..interp.values import UNIT, default_value, values_equal
from ..net.addresses import HostAddr
from .batching import BatchFault, run_rows

#: Bumped whenever the shape of the generated code changes (new entry
#: points, different lowering), so the content-addressed program cache
#: never serves artifacts emitted by an older generator.
CODEGEN_REV = 3

_SIMPLE_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "<": "<",
    ">": ">",
    "<=": "<=",
    ">=": ">=",
    "^": "+",
}


def _planp_raise(exn: str, message: str) -> PlanPRuntimeError:
    raise PlanPRuntimeError(message, exception_name=exn)


def _mangle(name: str) -> str:
    """PLAN-P identifiers may contain primes; Python's cannot."""
    return name.replace("'", "_prime_")


def _channel_fn_name(decl: ast.ChannelDecl, index: int) -> str:
    return f"C_{decl.name}_{index}"


def _init_fn_name(decl: ast.ChannelDecl, index: int) -> str:
    return f"I_{decl.name}_{index}"


def _batch_fn_name(decl: ast.ChannelDecl, index: int) -> str:
    return f"B_{decl.name}_{index}"


def _packet_projections(expr: ast.Expr, pname: str) -> set[int] | None:
    """The set of 1-based components projected from the packet parameter
    if it is *only* ever used as a direct ``#k p`` projection (and never
    shadowed by a ``let``); ``None`` demands whole-row mode.

    This is the verifier-informed guard hoist for the batch loop: when
    it returns a set, the generated loop reads pre-converted columns by
    index and the packet-value tuple is never materialized per row.
    """
    out: set[int] = set()
    return out if _scan_projections(expr, pname, out) else None


def _scan_projections(expr: ast.Expr, pname: str, out: set[int]) -> bool:
    kind = type(expr)
    if kind is ast.Var:
        return expr.name != pname
    if kind is ast.Proj:
        target = expr.tuple_expr
        if type(target) is ast.Var and target.name == pname:
            out.add(expr.index)
            return True
        return _scan_projections(target, pname, out)
    if kind is ast.Let:
        for binding in expr.bindings:
            if not _scan_projections(binding.value, pname, out):
                return False
            if binding.name == pname:
                return False  # shadowed: stay conservative
        return _scan_projections(expr.body, pname, out)
    if kind is ast.BinOp:
        return (_scan_projections(expr.left, pname, out)
                and _scan_projections(expr.right, pname, out))
    if kind is ast.UnOp:
        return _scan_projections(expr.operand, pname, out)
    if kind is ast.If:
        return (_scan_projections(expr.cond, pname, out)
                and _scan_projections(expr.then, pname, out)
                and _scan_projections(expr.orelse, pname, out))
    if kind is ast.Seq:
        return all(_scan_projections(e, pname, out) for e in expr.exprs)
    if kind is ast.TupleExpr:
        return all(_scan_projections(e, pname, out) for e in expr.elems)
    if kind is ast.Call:
        return all(_scan_projections(a, pname, out) for a in expr.args)
    if kind is ast.Try:
        return (_scan_projections(expr.body, pname, out)
                and _scan_projections(expr.handler, pname, out))
    return True  # literals / Raise


def _let_bound_names(expr: ast.Expr, out: set[str]) -> set[str]:
    """Every (mangled) name bound by a ``let`` anywhere in ``expr``.

    ``let`` lowers to a plain Python assignment, so these locals can be
    *reassigned* mid-function when two lets reuse a name; any other
    ``L_*`` name (a parameter never shadowed by a let) is written
    exactly once."""
    kind = type(expr)
    if kind is ast.Let:
        for binding in expr.bindings:
            out.add(_mangle(binding.name))
            _let_bound_names(binding.value, out)
        _let_bound_names(expr.body, out)
    elif kind is ast.BinOp:
        _let_bound_names(expr.left, out)
        _let_bound_names(expr.right, out)
    elif kind is ast.UnOp:
        _let_bound_names(expr.operand, out)
    elif kind is ast.If:
        _let_bound_names(expr.cond, out)
        _let_bound_names(expr.then, out)
        _let_bound_names(expr.orelse, out)
    elif kind is ast.Seq:
        for e in expr.exprs:
            _let_bound_names(e, out)
    elif kind is ast.TupleExpr:
        for e in expr.elems:
            _let_bound_names(e, out)
    elif kind is ast.Proj:
        _let_bound_names(expr.tuple_expr, out)
    elif kind is ast.Call:
        for a in expr.args:
            _let_bound_names(a, out)
    elif kind is ast.Try:
        _let_bound_names(expr.body, out)
        _let_bound_names(expr.handler, out)
    return out


class _Emitter:
    """Accumulates generated Python source with indentation."""

    def __init__(self):
        self.lines: list[str] = []
        self._indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self._indent + line)

    def push(self) -> None:
        self._indent += 1

    def pop(self) -> None:
        self._indent -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


@dataclass
class SourceArtifact:
    """The node-independent output of code generation.

    Channel/init function names are derived deterministically from the
    program's channel order, so any engine built over the same checked
    program can bind them after ``exec``-ing ``code``.
    """

    generated_source: str
    code: CodeType
    host_constants: dict[str, HostAddr]


def generate_source_artifact(info: ProgramInfo) -> SourceArtifact:
    """Emit and bytecode-compile a checked program (no node context)."""
    return _CodeGenerator(info).build()


class _CodeGenerator:
    """Translates a checked program to Python source (pure function of
    the program: global ``val`` references become ``G_*`` names resolved
    from the module namespace at run time)."""

    def __init__(self, info: ProgramInfo):
        self._info = info
        self._temp = 0
        self._global_names = {decl.name for decl in info.program.vals}
        self._host_constants: dict[str, HostAddr] = {}
        self._batch_pname: str | None = None
        self._rebindable: set[str] = set()

    def build(self) -> SourceArtifact:
        emitter = _Emitter()
        for name, fun in self._info.funs.items():
            self._emit_function(
                emitter, f"F_{_mangle(name)}",
                ["ctx"] + [f"L_{_mangle(p.name)}" for p in fun.decl.params],
                fun.decl.body)

        for i, decl in enumerate(self._info.all_channels()):
            self._emit_function(
                emitter, _channel_fn_name(decl, i),
                ["ctx"] + [f"L_{_mangle(p.name)}" for p in decl.params],
                decl.body)
            self._emit_batch_channel(emitter, decl, i)
            if decl.initstate is not None:
                self._emit_function(emitter, _init_fn_name(decl, i),
                                    ["ctx"], decl.initstate)

        source = emitter.source()
        code = compile(source, f"<planp-jit "
                       f"{self._info.program.source_name}>", "exec")
        return SourceArtifact(generated_source=source, code=code,
                              host_constants=dict(self._host_constants))

    def _emit_function(self, emitter: _Emitter, fn_name: str,
                       params: list[str], body: ast.Expr) -> None:
        emitter.emit(f"def {fn_name}({', '.join(params)}):")
        emitter.push()
        self._rebindable = _let_bound_names(body, set())
        result = self._expr(emitter, body)
        emitter.emit(f"return {result}")
        emitter.pop()
        emitter.emit("")

    def _emit_batch_channel(self, emitter: _Emitter,
                            decl: ast.ChannelDecl, index: int) -> None:
        """Emit ``B_<name>_<i>(ctx, _bps, _bss, _batch)``: the tier-3
        per-channel batch loop.  Guards (classification, decode setup,
        projection conversion) are hoisted out of the loop; per-row
        failures are re-raised as :class:`BatchFault` carrying the exact
        pre-row states so the caller can contain and resume."""
        if len(decl.params) != 3:
            return  # non-standard channel shape: per-packet fallback
        ps_p, ss_p, pk_p = decl.params
        projs = _packet_projections(decl.body, pk_p.name)
        emitter.emit(f"def {_batch_fn_name(decl, index)}"
                     "(ctx, _bps, _bss, _batch):")
        emitter.push()
        if projs is not None:
            # Column mode: the body only projects fixed components, so
            # convert exactly those columns once and index them per row
            # — the row tuple is never built.
            for k in sorted(projs):
                emitter.emit(f"_c{k} = _batch.column({k - 1})")
            emitter.emit("_n = len(_batch.packets)")
            emitter.emit("_i = 0")
            emitter.emit("try:")
            emitter.push()
            emitter.emit("while _i < _n:")
        else:
            emitter.emit("_rows = _batch.rows()")
            emitter.emit("_i = 0")
            emitter.emit("try:")
            emitter.push()
            emitter.emit(f"for L_{_mangle(pk_p.name)} in _rows:")
        emitter.push()
        emitter.emit("ctx._row = _i")
        emitter.emit(f"L_{_mangle(ps_p.name)} = _bps")
        emitter.emit(f"L_{_mangle(ss_p.name)} = _bss")
        self._batch_pname = pk_p.name if projs is not None else None
        self._rebindable = _let_bound_names(decl.body, set())
        try:
            result = self._expr(emitter, decl.body)
        finally:
            self._batch_pname = None
        emitter.emit(f"_res = {result}")
        emitter.emit("_bps = _res[0]")
        emitter.emit("_bss = _res[1]")
        emitter.emit("_i = _i + 1")
        emitter.pop()
        emitter.pop()
        emitter.emit("except BatchFault:")
        emitter.push()
        emitter.emit("raise")
        emitter.pop()
        emitter.emit("except Exception as _err:")
        emitter.push()
        emitter.emit("raise BatchFault(_i, _bps, _bss, _err)")
        emitter.pop()
        emitter.emit("return (_bps, _bss)")
        emitter.pop()
        emitter.emit("")

    def _fresh(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    _ATOMIC = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$|^-?[0-9]+$|^'[^\\']*'$")

    def _pinned(self, em: _Emitter, expr: ast.Expr) -> str:
        """Translate ``expr`` and pin the result to a temporary unless it
        is already atomic.  Pinning forces every operand's value to be
        computed at the point its statements were emitted, so generated
        statement order equals PLAN-P evaluation order even when a later
        sibling operand lowers to statements."""
        text = self._expr(em, expr)
        if self._ATOMIC.match(text) and not (
                text.startswith("L_") and text[2:] in self._rebindable):
            # A let-rebindable local is *not* a safe pin result: a later
            # sibling's ``L_x = ...`` would clobber it before use.
            return text
        tmp = self._fresh()
        em.emit(f"{tmp} = {text}")
        return tmp

    # -- expression translation ------------------------------------------------
    #
    # _expr returns a Python *expression string*; statement-shaped PLAN-P
    # constructs emit statements into ``em`` and return a temporary name.

    def _expr(self, em: _Emitter, expr: ast.Expr) -> str:
        kind = type(expr)
        if kind is ast.IntLit:
            return repr(expr.value)
        if kind is ast.BoolLit:
            return "True" if expr.value else "False"
        if kind is ast.StringLit:
            return repr(expr.value)
        if kind is ast.CharLit:
            return repr(expr.value)
        if kind is ast.UnitLit:
            return "UNIT"
        if kind is ast.HostLit:
            # Host literals are hoisted to named constants in the module
            # namespace (parsed once, at code-generation time).
            key = "H_" + expr.value.replace(".", "_")
            self._host_constants[key] = HostAddr.parse(expr.value)
            return key
        if kind is ast.Var:
            if expr.name in self._global_names:
                return f"G_{_mangle(expr.name)}"
            return f"L_{_mangle(expr.name)}"
        if kind is ast.BinOp:
            return self._binop(em, expr)
        if kind is ast.UnOp:
            operand = self._pinned(em, expr.operand)
            if expr.op == "not":
                return f"(not {operand})"
            return f"(-{operand})"
        if kind is ast.If:
            cond = self._expr(em, expr.cond)
            out = self._fresh()
            em.emit(f"if {cond}:")
            em.push()
            then = self._expr(em, expr.then)
            em.emit(f"{out} = {then}")
            em.pop()
            em.emit("else:")
            em.push()
            orelse = self._expr(em, expr.orelse)
            em.emit(f"{out} = {orelse}")
            em.pop()
            return out
        if kind is ast.Let:
            for binding in expr.bindings:
                value = self._expr(em, binding.value)
                em.emit(f"L_{_mangle(binding.name)} = {value}")
            return self._expr(em, expr.body)
        if kind is ast.Seq:
            result = "UNIT"
            for e in expr.exprs:
                result = self._pinned(em, e)
            return result
        if kind is ast.TupleExpr:
            elems = [self._pinned(em, e) for e in expr.elems]
            return "(" + ", ".join(elems) + ")"
        if kind is ast.Proj:
            inner = expr.tuple_expr
            if (self._batch_pname is not None and type(inner) is ast.Var
                    and inner.name == self._batch_pname):
                # Batch column mode: project straight out of the lazily
                # converted column instead of a per-row value tuple.
                return f"_c{expr.index}[_i]"
            target = self._pinned(em, inner)
            return f"{target}[{expr.index - 1}]"
        if kind is ast.Call:
            return self._call(em, expr)
        if kind is ast.Try:
            out = self._fresh()
            em.emit("try:")
            em.push()
            body = self._expr(em, expr.body)
            em.emit(f"{out} = {body}")
            em.pop()
            em.emit("except PlanPRuntimeError as _err:")
            em.push()
            if expr.exn != "_":
                em.emit(f"if _err.exception_name != {expr.exn!r}:")
                em.push()
                em.emit("raise")
                em.pop()
            handler = self._expr(em, expr.handler)
            em.emit(f"{out} = {handler}")
            em.pop()
            return out
        if kind is ast.Raise:
            tmp = self._fresh()
            em.emit(f"{tmp} = planp_raise({expr.exn!r}, "
                    f"'exception {expr.exn}')")
            return tmp
        raise TypeError(f"codegen cannot compile {kind.__name__}")

    def _binop(self, em: _Emitter, expr: ast.BinOp) -> str:
        op = expr.op
        if op in ("andalso", "orelse"):
            # Short-circuit via statements so the right operand's emitted
            # statements (if any) only run when required.
            out = self._fresh()
            left = self._expr(em, expr.left)
            em.emit(f"{out} = {left}")
            if op == "andalso":
                em.emit(f"if {out}:")
            else:
                em.emit(f"if not {out}:")
            em.push()
            right = self._expr(em, expr.right)
            em.emit(f"{out} = {right}")
            em.pop()
            return out
        left = self._pinned(em, expr.left)
        right = self._pinned(em, expr.right)
        if op in _SIMPLE_BINOPS:
            return f"({left} {_SIMPLE_BINOPS[op]} {right})"
        if op == "=":
            return f"values_equal({left}, {right})"
        if op == "<>":
            return f"(not values_equal({left}, {right}))"
        if op in ("/", "mod"):
            message = ("division by zero" if op == "/" else "mod by zero")
            em.emit(f"if {right} == 0:")
            em.push()
            em.emit(f"planp_raise('DivideByZero', {message!r})")
            em.pop()
            if op == "/":
                return f"sml_div({left}, {right})"
            return f"({left} % {right})"
        if op == "::":
            return f"{right}.cons({left})"
        raise TypeError(f"unknown operator {op!r}")

    def _call(self, em: _Emitter, expr: ast.Call) -> str:
        name = expr.func
        if name == "OnRemote":
            chan = expr.args[0].name  # type: ignore[union-attr]
            packet = self._pinned(em, expr.args[1])
            tmp = self._fresh()
            em.emit(f"ctx.emit_remote({chan!r}, {packet})")
            em.emit(f"{tmp} = UNIT")
            return tmp
        if name == "OnNeighbor":
            chan = expr.args[0].name  # type: ignore[union-attr]
            packet = self._pinned(em, expr.args[1])
            neighbor = self._pinned(em, expr.args[2])
            tmp = self._fresh()
            em.emit(f"ctx.emit_neighbor({chan!r}, {packet}, {neighbor})")
            em.emit(f"{tmp} = UNIT")
            return tmp
        args = [self._pinned(em, a) for a in expr.args]
        if name in self._info.funs:
            fn = f"F_{_mangle(name)}"
            return f"{fn}(ctx, {', '.join(args)})" if args else f"{fn}(ctx)"
        return f"P_{name}(ctx, ({', '.join(args)}{',' if args else ''}))"


class CompiledSourceEngine:
    """A program compiled to Python source, then to CPython bytecode.

    When ``artifact`` is supplied (by the program cache), instantiation
    skips emission and bytecode compilation entirely: it evaluates this
    node's globals and ``exec``-binds the shared code object.
    """

    backend_name = "source"

    def __init__(self, info: ProgramInfo, ctx: ExecutionContext,
                 artifact: SourceArtifact | None = None):
        self._info = info
        if artifact is None:
            artifact = generate_source_artifact(info)
        self.artifact = artifact
        self.generated_source = artifact.generated_source
        self._globals: dict[str, object] = {}
        self._channel_fns: dict[int, Callable] = {}
        self._init_fns: dict[int, Callable] = {}
        self._batch_fns: dict[int, Callable] = {}
        self._instantiate(ctx)

    # -- engine interface ----------------------------------------------------

    def initial_channel_state(self, decl: ast.ChannelDecl,
                              ctx: ExecutionContext) -> object:
        fn = self._init_fns.get(id(decl))
        if fn is None:
            return default_value(decl.channel_state_type)
        return fn(ctx)

    def run_channel(self, decl: ast.ChannelDecl, protocol_state: object,
                    channel_state: object, packet_value: tuple,
                    ctx: ExecutionContext) -> tuple[object, object]:
        result = self._channel_fns[id(decl)](
            ctx, protocol_state, channel_state, packet_value)
        return result[0], result[1]

    def run_channel_batch(self, decl: ast.ChannelDecl,
                          protocol_state: object, channel_state: object,
                          batch, ctx: ExecutionContext) -> tuple[object,
                                                                 object]:
        """Fold a whole :class:`~repro.runtime.codec.PacketBatch` through
        the channel's generated batch loop (see :class:`BatchFault` for
        the containment contract)."""
        fn = self._batch_fns.get(id(decl))
        if fn is None:
            return run_rows(self.run_channel, decl, protocol_state,
                            channel_state, batch, ctx)
        return fn(ctx, protocol_state, channel_state, batch)

    # -- per-node instantiation --------------------------------------------------

    def _instantiate(self, ctx: ExecutionContext) -> None:
        # Globals are evaluated once with the interpreter (they run once,
        # so interpreting them is what the paper's run-time system does
        # before specialising the packet path) — per node, because they
        # may read node state.
        interp = Interpreter(self._info)
        genv = Env()
        for decl in self._info.program.vals:
            value = interp.eval(decl.value, genv, ctx)
            genv.bind(decl.name, value)
            self._globals[decl.name] = value

        namespace = self._runtime_namespace()
        exec(self.artifact.code, namespace)

        for i, decl in enumerate(self._info.all_channels()):
            self._channel_fns[id(decl)] = namespace[_channel_fn_name(decl, i)]
            batch_fn = namespace.get(_batch_fn_name(decl, i))
            if batch_fn is not None:
                self._batch_fns[id(decl)] = batch_fn
            if decl.initstate is not None:
                self._init_fns[id(decl)] = namespace[_init_fn_name(decl, i)]

    def _runtime_namespace(self) -> dict[str, object]:
        """Names visible to the generated module: resolved primitives,
        global constants and the small run-time support surface."""
        namespace: dict[str, object] = {
            "UNIT": UNIT,
            "values_equal": values_equal,
            "sml_div": _sml_div,
            "planp_raise": _planp_raise,
            "PlanPRuntimeError": PlanPRuntimeError,
            "BatchFault": BatchFault,
        }
        for name, prim in PRIMITIVES.items():
            namespace[f"P_{name}"] = prim.impl
        for name, value in self._globals.items():
            namespace[f"G_{_mangle(name)}"] = value
        namespace.update(self.artifact.host_constants)
        return namespace
