"""Shared protocol for the tier-3 batch execution path.

An engine's ``run_channel_batch(decl, ps, ss, batch, ctx)`` folds a
channel over every row of a :class:`~repro.runtime.codec.PacketBatch`
in one call.  The containment contract between engines and
:class:`~repro.runtime.planp_layer.PlanPLayer` is carried by
:class:`BatchFault`:

* if row ``i`` raises, the engine re-raises it as ``BatchFault(i, ps,
  ss, err)`` where ``ps``/``ss`` are the states *entering* row ``i`` —
  rows ``0..i-1`` committed, row ``i`` did not;
* any *other* exception escaping ``run_channel_batch`` therefore means
  setup or decode failed before the first row executed, so the caller
  may safely re-run the whole batch packet-by-packet.
"""

from __future__ import annotations


class BatchFault(Exception):
    """Row ``index`` of a batch raised ``err``; ``ps``/``ss`` are the
    protocol/channel states as of entering that row."""

    def __init__(self, index: int, ps, ss, err: BaseException):
        super().__init__(index, err)
        self.index = index
        self.ps = ps
        self.ss = ss
        self.err = err


def run_rows(run_channel, decl, ps, ss, batch, ctx):
    """Generic batch loop for engines without a specialized entry point
    (the interpreter): fold ``run_channel`` over the decoded rows under
    the :class:`BatchFault` contract.  ``rows()`` is forced before the
    loop so decode errors surface with zero rows executed."""
    rows = batch.rows()
    i = 0
    try:
        for value in rows:
            ctx._row = i
            ps, ss = run_channel(decl, ps, ss, value, ctx)
            i += 1
    except BatchFault:
        raise
    except Exception as err:
        raise BatchFault(i, ps, ss, err) from err
    return ps, ss
