"""End-to-end compilation pipeline and engine selection.

An *engine* executes channel invocations; all three share one interface
(duck-typed; see :class:`Engine`):

* ``"interpreter"`` — the portable AST walker (debugging, new primitives);
* ``"closure"``     — JIT backend 1, closure specialization;
* ``"source"``      — JIT backend 2, Python source + ``compile()``.

``load_program`` runs the full paper pipeline: parse → type check →
verify (the four safety analyses) → code generation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

from ..lang import ast, parse
from ..lang.typechecker import ProgramInfo, typecheck
from ..interp.context import ExecutionContext, RecordingContext
from ..interp.interpreter import Interpreter
from .codegen import CompiledSourceEngine
from .specializer import ClosureEngine

BACKENDS = ("interpreter", "closure", "source")


class Engine(Protocol):
    """What a node needs to run a downloaded program."""

    def initial_channel_state(self, decl: ast.ChannelDecl,
                              ctx: ExecutionContext) -> object: ...

    def run_channel(self, decl: ast.ChannelDecl, protocol_state: object,
                    channel_state: object, packet_value: tuple,
                    ctx: ExecutionContext) -> tuple[object, object]: ...


def make_engine(info: ProgramInfo, backend: str,
                ctx: ExecutionContext | None = None) -> Engine:
    """Instantiate an execution engine for a checked program.

    ``ctx`` is the node context used to evaluate top-level globals at
    install time; a :class:`RecordingContext` is used when omitted.
    """
    if ctx is None:
        ctx = RecordingContext()
    if backend == "interpreter":
        return Interpreter(info)
    if backend == "closure":
        return ClosureEngine(info, ctx)
    if backend == "source":
        return CompiledSourceEngine(info, ctx)
    raise ValueError(f"unknown backend {backend!r}; pick from {BACKENDS}")


@dataclass
class LoadedProgram:
    """A verified, compiled program plus its compile-time metrics."""

    info: ProgramInfo
    engine: Engine
    backend: str
    codegen_ms: float
    source_lines: int


def count_source_lines(source: str) -> int:
    """Non-blank, non-comment-only lines — the unit of Figure 3."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            count += 1
    return count


def load_program(source: str, *, backend: str = "closure",
                 verify: bool = True,
                 ctx: ExecutionContext | None = None,
                 source_name: str = "<planp>") -> LoadedProgram:
    """The full download path of the paper's run-time system.

    Raises :class:`repro.lang.errors.VerificationError` if any of the four
    safety analyses rejects the program (late checking, §2.1), unless
    ``verify=False`` (the authenticated-privileged-user escape hatch).
    """
    program = parse(source, source_name)
    info = typecheck(program)
    if verify:
        from ..analysis.verifier import verify_program

        verify_program(info)
    start = time.perf_counter()
    engine = make_engine(info, backend, ctx)
    codegen_ms = (time.perf_counter() - start) * 1000.0
    return LoadedProgram(info=info, engine=engine, backend=backend,
                         codegen_ms=codegen_ms,
                         source_lines=count_source_lines(source))
