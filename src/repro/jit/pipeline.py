"""End-to-end compilation pipeline, engine selection, and the
network-wide content-addressed program cache.

An *engine* executes channel invocations; all three share one interface
(duck-typed; see :class:`Engine`):

* ``"interpreter"`` — the portable AST walker (debugging, new primitives);
* ``"closure"``     — JIT backend 1, closure specialization;
* ``"source"``      — JIT backend 2, Python source + ``compile()``.

``load_program`` runs the full paper pipeline: parse → type check →
verify (the four safety analyses) → code generation.

The paper pays the front half of that pipeline once per *download*; a
deployment that pushes one ASP to N nodes therefore re-parses,
re-checks, re-verifies and partly re-compiles identical source N times.
:class:`ProgramCache` removes the redundancy: keyed by
``sha256(source)`` it shares the checked :class:`ProgramInfo` and the
verification verdict across nodes, and per ``(sha256, backend)`` it
shares whatever code-generation output is node-independent (the
``source`` backend's emitted module + bytecode; the whole ``closure``
engine when the program has no node-dependent globals).  Per-node work
shrinks to evaluating globals and instantiating engine state.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from ..lang import ast, parse
from ..lang.errors import VerificationError
from ..lang.typechecker import ProgramInfo, typecheck
from ..interp.context import ExecutionContext, RecordingContext
from ..interp.interpreter import Interpreter
from ..obs import GLOBAL
from .codegen import CODEGEN_REV, CompiledSourceEngine, SourceArtifact, \
    generate_source_artifact
from .specializer import ClosureEngine

if TYPE_CHECKING:
    from ..analysis.verifier import VerificationReport
    from ..analysis.wire import WireSummary

BACKENDS = ("interpreter", "closure", "source")


class Engine(Protocol):
    """What a node needs to run a downloaded program."""

    def initial_channel_state(self, decl: ast.ChannelDecl,
                              ctx: ExecutionContext) -> object: ...

    def run_channel(self, decl: ast.ChannelDecl, protocol_state: object,
                    channel_state: object, packet_value: tuple,
                    ctx: ExecutionContext) -> tuple[object, object]: ...


def make_engine(info: ProgramInfo, backend: str,
                ctx: ExecutionContext | None = None,
                artifact: object | None = None) -> Engine:
    """Instantiate an execution engine for a checked program.

    ``ctx`` is the node context used to evaluate top-level globals at
    install time; a :class:`RecordingContext` is used when omitted.
    ``artifact`` is an optional cached code-generation product from
    :meth:`ProgramCache.engine_artifact` for the same ``(info,
    backend)`` pair.
    """
    if ctx is None:
        ctx = RecordingContext()
    if backend == "interpreter":
        return Interpreter(info)
    if backend == "closure":
        if isinstance(artifact, ClosureEngine):
            # Node-independent program: the compiled engine is immutable
            # after construction and shareable as-is.
            return artifact
        return ClosureEngine(info, ctx)
    if backend == "source":
        src_artifact = artifact if isinstance(artifact, SourceArtifact) \
            else None
        return CompiledSourceEngine(info, ctx, artifact=src_artifact)
    raise ValueError(f"unknown backend {backend!r}; pick from {BACKENDS}")


@dataclass
class CacheStats:
    """Hit/miss counters for each cached pipeline stage, plus the number
    of per-node engine instantiations performed through the cache."""

    frontend_hits: int = 0
    frontend_misses: int = 0
    verify_hits: int = 0
    verify_misses: int = 0
    engine_hits: int = 0
    engine_misses: int = 0
    wire_hits: int = 0
    wire_misses: int = 0
    loads: int = 0

    @property
    def total_hits(self) -> int:
        return self.frontend_hits + self.verify_hits + self.engine_hits \
            + self.wire_hits

    @property
    def total_misses(self) -> int:
        return self.frontend_misses + self.verify_misses \
            + self.engine_misses + self.wire_misses

    def snapshot(self) -> "CacheStats":
        return dataclasses.replace(self)


class ProgramCache:
    """Content-addressed cache over the program-download pipeline.

    Entries are keyed by the SHA-256 of the source text, so identical
    programs shipped under different names or to different nodes share
    one front-end pass; diagnostics on shared entries carry the source
    name of the first download.  ``max_entries`` bounds each internal
    map (FIFO eviction); ``max_entries=0`` disables caching entirely,
    which is how benchmarks measure the uncached baseline.
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._frontend: dict[str, ProgramInfo] = {}
        self._reports: dict[str, "VerificationReport"] = {}
        self._artifacts: dict[tuple[str, str], object] = {}
        self._wire: dict[tuple[str, int], "WireSummary"] = {}

    @staticmethod
    def digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def clear(self) -> None:
        self._frontend.clear()
        self._reports.clear()
        self._artifacts.clear()
        self._wire.clear()
        self.stats = CacheStats()

    def _put(self, table: dict, key, value) -> None:
        if self.max_entries <= 0:
            return
        if key not in table and len(table) >= self.max_entries:
            table.pop(next(iter(table)))
        table[key] = value

    # -- cached stages ------------------------------------------------------------

    def frontend(self, source: str,
                 source_name: str = "<planp>") -> tuple[str, ProgramInfo]:
        """Parse + type check, memoized by content digest."""
        key = self.digest(source)
        info = self._frontend.get(key)
        if info is not None:
            self.stats.frontend_hits += 1
            return key, info
        self.stats.frontend_misses += 1
        with GLOBAL.metrics.span("jit.parse_ms"):
            program = parse(source, source_name)
        with GLOBAL.metrics.span("jit.typecheck_ms"):
            info = typecheck(program)
        self._put(self._frontend, key, info)
        return key, info

    def verification(self, key: str,
                     info: ProgramInfo) -> "VerificationReport":
        """The four-analysis report for a checked program, memoized.

        Verification is a property of the source alone, so both verdicts
        (pass and fail) are cached: a program rejected once is rejected
        everywhere without re-running the analyses.
        """
        report = self._reports.get(key)
        if report is not None:
            self.stats.verify_hits += 1
            return report
        self.stats.verify_misses += 1
        from ..analysis.verifier import verify_report

        with GLOBAL.metrics.span("jit.verify_ms"):
            report = verify_report(info)
        self._put(self._reports, key, report)
        return report

    def check_verified(self, key: str, info: ProgramInfo) -> None:
        """Raise :class:`VerificationError` unless the program passes all
        four analyses (the install-time gate, cached)."""
        report = self.verification(key, info)
        if not report.passed:
            failure = report.failures[0]
            raise VerificationError(
                f"{info.program.source_name} rejected by {failure.name}: "
                f"{failure.detail}", analysis=failure.name)

    def wire(self, key: str, info: ProgramInfo) -> "WireSummary":
        """The program's per-channel wire summary, memoized.

        Like verification it is a property of the source alone; the
        entry is keyed with ``WIRE_REV`` so summaries derived by an
        older revision of the checker are keyed out.
        """
        from ..analysis.wire import WIRE_REV, wire_summary

        wkey = (key, WIRE_REV)
        summary = self._wire.get(wkey)
        if summary is not None:
            self.stats.wire_hits += 1
            return summary
        self.stats.wire_misses += 1
        with GLOBAL.metrics.span("jit.wire_ms"):
            summary = wire_summary(info)
        self._put(self._wire, wkey, summary)
        return summary

    def engine_artifact(self, key: str, info: ProgramInfo,
                        backend: str) -> object | None:
        """The shareable part of code generation for ``backend``.

        Returns ``None`` (and counts nothing) for backends with no
        node-independent product: the interpreter compiles nothing, and
        a ``closure`` program with top-level ``val``s embeds node state
        as constants, so it must be re-specialized per node.
        """
        if backend == "source":
            build = lambda: generate_source_artifact(info)  # noqa: E731
        elif backend == "closure" and not info.program.vals:
            build = lambda: ClosureEngine(info, RecordingContext())  # noqa: E731
        else:
            return None
        # CODEGEN_REV keys out artifacts emitted by an older generator
        # (e.g. ones without the tier-3 batch entry points).
        akey = (key, backend, CODEGEN_REV)
        artifact = self._artifacts.get(akey)
        if artifact is not None:
            self.stats.engine_hits += 1
            return artifact
        self.stats.engine_misses += 1
        artifact = build()
        self._put(self._artifacts, akey, artifact)
        return artifact


#: The process-wide cache every download path goes through.  Replaceable
#: (e.g. with ``ProgramCache(max_entries=0)``) to disable caching.
PROGRAM_CACHE = ProgramCache()


def _cache_stats() -> dict[str, int]:
    # Looked up at call time, so benchmarks that rebind PROGRAM_CACHE
    # are snapshotted correctly.
    return dataclasses.asdict(PROGRAM_CACHE.stats)


GLOBAL.metrics.register("program_cache", _cache_stats)


@dataclass
class LoadedProgram:
    """A verified, compiled program plus its compile-time metrics."""

    info: ProgramInfo
    engine: Engine
    backend: str
    codegen_ms: float
    source_lines: int
    #: content digest of the source (the program cache key)
    source_sha: str = ""
    #: did this load reuse any cached pipeline stage?
    cache_hit: bool = False
    #: the program text itself — kept so the lifecycle manager can
    #: re-install any generation on any node (rollback, half-open
    #: retrial) without a side channel back to the original pusher
    source: str = ""
    #: did this load run the four safety analyses?
    verified: bool = True
    #: does the engine expose the tier-3 ``run_channel_batch`` entry
    #: point (batched execution with the BatchFault containment
    #: contract)?
    batch_capable: bool = False
    #: the per-channel wire-protocol summary (packet shapes + emission
    #: topology) the lifecycle manager compares across generations
    #: before opening a canary window
    wire: "WireSummary | None" = None


def count_source_lines(source: str) -> int:
    """Non-blank, non-comment-only lines — the unit of Figure 3."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            count += 1
    return count


def load_program(source: str, *, backend: str = "closure",
                 verify: bool = True,
                 ctx: ExecutionContext | None = None,
                 source_name: str = "<planp>",
                 cache: ProgramCache | None = None) -> LoadedProgram:
    """The full download path of the paper's run-time system.

    Raises :class:`repro.lang.errors.VerificationError` if any of the four
    safety analyses rejects the program (late checking, §2.1), unless
    ``verify=False`` (the authenticated-privileged-user escape hatch).

    Downloads are content-addressed: identical source already seen by
    ``cache`` (default: the process-wide :data:`PROGRAM_CACHE`) skips
    parsing, type checking, verification, and the node-independent part
    of code generation; only per-node engine instantiation remains.
    """
    cache = PROGRAM_CACHE if cache is None else cache
    before = cache.stats.total_hits
    key, info = cache.frontend(source, source_name)
    if verify:
        cache.check_verified(key, info)
    with GLOBAL.metrics.span("jit.codegen_ms") as timer:
        artifact = cache.engine_artifact(key, info, backend)
        engine = make_engine(info, backend, ctx, artifact=artifact)
    wire = cache.wire(key, info)
    cache.stats.loads += 1
    hit = cache.stats.total_hits > before
    GLOBAL.events.emit("jit", sha=key[:12], backend=backend,
                       codegen_ms=round(timer.elapsed_ms, 3),
                       cache_hit=hit, verified=verify)
    return LoadedProgram(info=info, engine=engine, backend=backend,
                         codegen_ms=timer.elapsed_ms,
                         source_lines=count_source_lines(source),
                         source_sha=key,
                         cache_hit=hit,
                         source=source,
                         verified=verify,
                         batch_capable=hasattr(engine,
                                               "run_channel_batch"),
                         wire=wire)
