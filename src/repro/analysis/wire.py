"""Mixed-generation wire-compatibility summaries (rolling upgrades).

During a staged rollout, canary nodes run generation N+1 while the rest
of the fleet still runs generation N; packets emitted under one
generation traverse nodes running the other.  The lifecycle manager's
health gate only notices the resulting decode errors *after* mixed
traffic has flowed — by which time the protocol's invariants may
already be broken at a subset of hops.

This module derives a static per-channel **wire summary** from a
checked :class:`~repro.lang.typechecker.ProgramInfo`:

* every channel's overload **shapes** — the byte-level layout dispatch
  actually keys on (transport-header class, payload view sequence,
  fixed size, tail-ness), reusing :func:`repro.runtime.codec
  .packet_views` / ``dispatch_plan`` so the summary can never drift
  from the decoder; and
* the **emission topology** — which channels each channel (or a helper
  function it calls) sends to via ``OnRemote``/``OnNeighbor``, and
  whether it ``deliver``\\ s — the same syntactic walk the delivery
  analysis performs, made total (no path budgets, no raising).

:func:`check_compatible` compares two summaries and returns a verdict
on a three-point lattice::

    COMPATIBLE  <  DEGRADED  <  INCOMPATIBLE

with one structured :class:`Reason` per defect.  ``INCOMPATIBLE`` means
some wire packet can be misrouted or misread by a mixed-generation
fleet — any admission-set or layout asymmetry qualifies, in either
direction, because during a canary window both packet flows exist.
``DEGRADED`` is reserved for deltas no wire packet can ever witness
(a declared-but-never-emitted tagged channel appearing or vanishing) —
worth surfacing, not worth a veto.

Derivation is **total** over every type-checked program: a malformed
packet layout (which ``dispatch_plan`` maps to "never matches") is
recorded as an unmatchable shape, not raised.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from ..lang import ast
from ..lang.typechecker import ProgramInfo
from ..runtime.codec import CodecError, packet_views, _FIXED_SIZES
from ..lang import types as T

#: Bump when the summary derivation or comparison semantics change, so
#: cached summaries from an older revision are keyed out (the
#: ``CODEGEN_REV`` idiom of ``jit.pipeline``).
WIRE_REV = 1

_EMIT_FUNCS = ("OnRemote", "OnNeighbor")


# ---------------------------------------------------------------------------
# Summary derivation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadShape:
    """The dispatch-relevant byte layout of one channel overload.

    ``matchable=False`` marks a malformed packet type — the runtime's
    ``dispatch_plan`` returns ``None`` for it and the overload never
    admits a packet, so it cannot cause wire traffic by itself.
    """

    #: "tcp" | "udp" | "raw"
    transport: str
    #: payload view names in order, e.g. ("int", "int", "blob")
    views: tuple[str, ...]
    #: total bytes of the fixed-size views
    fixed: int
    #: does the final view consume the residue (blob/string)?
    has_tail: bool
    matchable: bool = True

    def admits(self, payload_len: int) -> bool:
        if not self.matchable:
            return False
        if self.has_tail:
            return payload_len >= self.fixed
        return payload_len == self.fixed

    def admission_overlaps(self, other: "OverloadShape") -> bool:
        """Is there a wire packet both shapes admit?"""
        if not (self.matchable and other.matchable):
            return False
        if self.transport != other.transport:
            return False
        if self.has_tail and other.has_tail:
            return True
        if self.has_tail:
            return other.fixed >= self.fixed
        if other.has_tail:
            return self.fixed >= other.fixed
        return self.fixed == other.fixed

    def describe(self) -> str:
        body = "*".join(self.views) if self.views else "<empty>"
        note = "" if self.matchable else " (malformed, never matches)"
        return f"{self.transport}:{body}{note}"


@dataclass(frozen=True)
class ChannelSummary:
    """One channel's contribution to the wire protocol."""

    name: str
    #: dispatch tag: ``None`` for the overloadable ``network`` channel
    #: (untagged wire traffic), the channel name otherwise
    tag: str | None
    shapes: tuple[OverloadShape, ...]
    #: channel names this channel's body (helper funs included) sends to
    emits: tuple[str, ...]
    delivers: bool


@dataclass(frozen=True)
class WireSummary:
    """The per-channel wire protocol of one program generation."""

    channels: tuple[ChannelSummary, ...]
    digest: str = ""

    def channel(self, name: str) -> ChannelSummary | None:
        for ch in self.channels:
            if ch.name == name:
                return ch
        return None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(ch.name for ch in self.channels)

    def emitted_to(self) -> set[str]:
        """Channel names some channel of this program sends to."""
        out: set[str] = set()
        for ch in self.channels:
            out.update(ch.emits)
        return out


def _shape_of(packet_type: T.TupleType) -> OverloadShape:
    try:
        transport, views = packet_views(packet_type)
    except CodecError:
        return OverloadShape(transport="raw", views=(), fixed=0,
                             has_tail=False, matchable=False)
    name = "raw" if transport is None else str(transport)
    fixed = sum(_FIXED_SIZES.get(v, 0) for v in views)
    has_tail = bool(views) and views[-1] in (T.BLOB, T.STRING)
    return OverloadShape(transport=name,
                         views=tuple(str(v) for v in views),
                         fixed=fixed, has_tail=has_tail)


class _EmissionWalk:
    """Syntactic send/deliver topology with helper-fun inlining.

    Unlike ``analysis.paths.channel_paths`` this never raises: it is a
    plain transitive call walk (memoized per function), total over any
    type-checked program — which is what a summary consulted on the
    rollout path needs.
    """

    def __init__(self, info: ProgramInfo):
        self._info = info
        self._fun_cache: dict[str, tuple[set[str], bool]] = {}

    def of(self, expr: ast.Expr) -> tuple[set[str], bool]:
        targets: set[str] = set()
        delivers = False
        for call in ast.calls_in(expr):
            if call.func in _EMIT_FUNCS:
                if call.args and isinstance(call.args[0], ast.Var):
                    targets.add(call.args[0].name)
            elif call.func == "deliver":
                delivers = True
            elif call.func in self._info.funs:
                sub_targets, sub_delivers = self._of_fun(call.func)
                targets |= sub_targets
                delivers = delivers or sub_delivers
        return targets, delivers

    def _of_fun(self, name: str) -> tuple[set[str], bool]:
        cached = self._fun_cache.get(name)
        if cached is not None:
            return cached
        # Pre-seed to terminate on (ill-typed but conceivable) cycles.
        self._fun_cache[name] = (set(), False)
        result = self.of(self._info.funs[name].decl.body)
        self._fun_cache[name] = result
        return result


def wire_summary(info: ProgramInfo) -> WireSummary:
    """Derive the wire summary of a checked program.  Total: never
    raises for any program the type checker accepts."""
    walk = _EmissionWalk(info)
    channels: list[ChannelSummary] = []
    for name in sorted(info.channels):
        decls = info.channel_overloads(name)
        shapes = tuple(_shape_of(d.packet_type) for d in decls)
        targets: set[str] = set()
        delivers = False
        for d in decls:
            t, dv = walk.of(d.body)
            targets |= t
            delivers = delivers or dv
            if d.initstate is not None:
                t, dv = walk.of(d.initstate)
                targets |= t
                delivers = delivers or dv
        channels.append(ChannelSummary(
            name=name,
            tag=None if name == "network" else name,
            shapes=shapes,
            emits=tuple(sorted(targets)),
            delivers=delivers))
    summary = WireSummary(channels=tuple(channels))
    return WireSummary(channels=summary.channels,
                       digest=_digest(summary))


def _digest(summary: WireSummary) -> str:
    h = hashlib.sha256()
    for ch in summary.channels:
        h.update(repr((ch.name, ch.tag, ch.shapes, ch.emits,
                       ch.delivers)).encode("utf-8"))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Compatibility verdicts
# ---------------------------------------------------------------------------


class Verdict(enum.IntEnum):
    """Three-point severity lattice; ``max`` of reasons wins."""

    COMPATIBLE = 0
    DEGRADED = 1
    INCOMPATIBLE = 2

    def __str__(self) -> str:
        return self.name.lower()


#: Reason kinds, in the vocabulary of the rollout operator.  An
#: overload *added* by the new generation surfaces as a narrowing in
#: the ``new->old`` direction — both directions always run, so the
#: vocabulary stays small.
CHANNEL_REMOVED = "channel-removed"
OVERLOAD_NARROWED = "overload-narrowed"
FIELD_LAYOUT_CHANGED = "field-layout-changed"
TAIL_CHANGED = "tail-changed"
EMISSION_TARGET_DROPPED = "emission-target-dropped"


@dataclass(frozen=True)
class Reason:
    """One structured defect found by :func:`check_compatible`."""

    kind: str
    severity: Verdict
    channel: str
    #: which generation's packets are at risk: "old->new" means packets
    #: produced/handled under ``old`` hit a ``new`` node that disagrees
    direction: str
    detail: str

    def describe(self) -> str:
        return (f"[{self.kind}] channel {self.channel!r} "
                f"({self.direction}): {self.detail}")


@dataclass
class CompatReport:
    """The verdict of comparing two generations' wire summaries."""

    verdict: Verdict = Verdict.COMPATIBLE
    reasons: list[Reason] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict is not Verdict.INCOMPATIBLE

    def describe(self) -> str:
        if not self.reasons:
            return "compatible"
        worst = [r for r in self.reasons if r.severity == self.verdict]
        extra = len(self.reasons) - len(worst)
        head = "; ".join(r.describe() for r in worst[:3])
        if len(worst) > 3:
            extra += len(worst) - 3
        tail = f" (+{extra} more)" if extra else ""
        return f"{self.verdict}: {head}{tail}"

    def to_dict(self) -> dict:
        return {
            "verdict": str(self.verdict),
            "reasons": [{
                "kind": r.kind,
                "severity": str(r.severity),
                "channel": r.channel,
                "direction": r.direction,
                "detail": r.detail,
            } for r in self.reasons],
        }


def _check_shapes(a: ChannelSummary, b: ChannelSummary, direction: str,
                  live: bool, reasons: list[Reason]) -> None:
    """Every packet an ``a``-shape admits must decode identically on
    ``b``; report narrowing/relayout per ``a`` overload.

    ``live`` says whether packets for this channel can actually exist
    on the wire (untagged traffic always can; tagged traffic only if
    some generation emits to the channel).  Dead-channel deltas cannot
    be witnessed by any packet, so they degrade instead of vetoing.
    """
    severity = Verdict.INCOMPATIBLE if live else Verdict.DEGRADED
    for sa in a.shapes:
        if not sa.matchable:
            continue
        overlapping = [sb for sb in b.shapes
                       if sa.admission_overlaps(sb)]
        if not overlapping:
            reasons.append(Reason(
                kind=OVERLOAD_NARROWED, severity=severity,
                channel=a.name, direction=direction,
                detail=f"overload {sa.describe()} has no admissible "
                       f"counterpart; its packets fall back to "
                       f"standard IP on the other generation"))
            continue
        for sb in overlapping:
            if sb.views == sa.views:
                continue
            if sb.views[:-1] == sa.views or sa.views[:-1] == sb.views:
                kind, what = TAIL_CHANGED, "tail-ness"
            elif (sa.has_tail != sb.has_tail
                  and sa.views[:len(sa.views) - sa.has_tail]
                  == sb.views[:len(sb.views) - sb.has_tail]):
                kind, what = TAIL_CHANGED, "tail-ness"
            else:
                kind, what = FIELD_LAYOUT_CHANGED, "field layout"
            reasons.append(Reason(
                kind=kind, severity=severity,
                channel=a.name, direction=direction,
                detail=f"{what} changed on overlapping admission: "
                       f"{sa.describe()} vs {sb.describe()}"))


def _check_direction(a: WireSummary, b: WireSummary,
                     direction: str, reasons: list[Reason]) -> None:
    """Can every wire packet generation ``a`` produces or claims be
    handled equivalently by generation ``b``?"""
    a_emits = a.emitted_to()
    live_tags = a_emits | b.emitted_to()
    for ch in a.channels:
        other = b.channel(ch.name)
        if other is None:
            if ch.name in a_emits:
                emitters = sorted(c.name for c in a.channels
                                  if ch.name in c.emits)
                reasons.append(Reason(
                    kind=EMISSION_TARGET_DROPPED,
                    severity=Verdict.INCOMPATIBLE,
                    channel=ch.name, direction=direction,
                    detail=f"still emitted to by "
                           f"{', '.join(emitters)} but absent from "
                           f"the other generation; tagged packets "
                           f"fall back to standard IP"))
            elif ch.tag is None:
                # Untagged coverage vanished wholesale.
                reasons.append(Reason(
                    kind=CHANNEL_REMOVED, severity=Verdict.INCOMPATIBLE,
                    channel=ch.name, direction=direction,
                    detail="network channel absent from the other "
                           "generation; untagged traffic it handles "
                           "falls back to standard IP"))
            else:
                reasons.append(Reason(
                    kind=CHANNEL_REMOVED, severity=Verdict.DEGRADED,
                    channel=ch.name, direction=direction,
                    detail="channel absent from the other generation "
                           "(no emitter on this side; dead on the "
                           "wire)"))
            continue
        live = ch.tag is None or ch.name in live_tags
        _check_shapes(ch, other, direction, live, reasons)


def check_compatible(old: WireSummary, new: WireSummary) -> CompatReport:
    """Can a mixed fleet of ``old``- and ``new``-generation nodes
    exchange wire packets without misrouting or misreading them?

    Checked in both directions (old packets across new nodes, and new
    packets across old nodes — during a canary window both flows
    exist).  The verdict is the worst reason's severity; an empty
    reason list means the summaries describe the same wire protocol.
    """
    report = CompatReport()
    if old.digest and old.digest == new.digest:
        return report
    _check_direction(old, new, "old->new", report.reasons)
    _check_direction(new, old, "new->old", report.reasons)
    # The reverse direction re-reports widenings the forward direction
    # saw as narrowings (and vice versa); drop the duplicates, keeping
    # the most severe phrasing of each (kind, channel) defect.
    seen: dict[tuple[str, str, str], Reason] = {}
    for r in report.reasons:
        k = (r.kind, r.channel, r.detail)
        prev = seen.get(k)
        if prev is None or r.severity > prev.severity:
            seen[k] = r
    report.reasons = sorted(
        seen.values(),
        key=lambda r: (-r.severity, r.channel, r.kind, r.direction))
    if report.reasons:
        report.verdict = max(r.severity for r in report.reasons)
    return report
