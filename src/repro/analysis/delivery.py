"""Guaranteed packet delivery (paper §2.1).

Assuming a reliable underlying network and the global-termination result,
a program guarantees delivery if

1. it cannot terminate on an unhandled exception (every primitive that
   may raise, every ``raise``, and every partial operator is enclosed in
   a matching handler);
2. every execution path forwards or delivers the packet — the program
   never "intentionally drops packets" (so any reachable ``drop`` call,
   and any path that completes without an emission, fails the check).

Both facts are computed by structural recursion, conservatively (no
path-feasibility reasoning is needed for soundness: an infeasible
non-delivering path only makes the analysis stricter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..lang import ast
from ..lang.errors import VerificationError
from ..lang.typechecker import ProgramInfo
from ..interp.primitives import PRIMITIVES

#: Operators that can raise at run time.
_PARTIAL_OPS = {"/": "DivideByZero", "mod": "DivideByZero"}


@dataclass
class DeliveryReport:
    channels_checked: int = 0
    exits_verified: int = 0


class DeliveryAnalysis:
    """Checks one program.  Entry point: :func:`check_delivery`."""

    def __init__(self, info: ProgramInfo):
        self._info = info
        self._fun_exits: dict[str, bool] = {}

    # -- escaping exceptions ----------------------------------------------------

    def escaping(self, expr: ast.Expr) -> set[str]:
        """Exception names that may propagate out of ``expr``."""
        kind = type(expr)
        if kind is ast.Raise:
            return {expr.exn}
        if kind is ast.Try:
            body = self.escaping(expr.body)
            caught = body if expr.exn == "_" else (body & {expr.exn})
            return (body - caught) | self.escaping(expr.handler)
        out: set[str] = set()
        if kind is ast.BinOp and expr.op in _PARTIAL_OPS:
            # A literal non-zero divisor cannot raise.
            divisor = expr.right
            if not (isinstance(divisor, ast.IntLit) and divisor.value != 0):
                out.add(_PARTIAL_OPS[expr.op])
        if kind is ast.Call:
            prim = PRIMITIVES.get(expr.func)
            if prim is not None:
                out.update(prim.may_raise)
            fun = self._info.funs.get(expr.func)
            if fun is not None:
                out.update(self.escaping(fun.decl.body))
        for child in ast.children(expr):
            out.update(self.escaping(child))
        return out

    # -- every-path-exits ----------------------------------------------------------

    def always_exits(self, expr: ast.Expr) -> bool:
        """True if every normal completion of ``expr`` performed at least
        one emission (OnRemote/OnNeighbor/deliver)."""
        kind = type(expr)
        if kind is ast.Call:
            if expr.func in ("OnRemote", "OnNeighbor", "deliver"):
                return True
            if expr.func in self._info.funs:
                if any(self.always_exits(a) for a in expr.args):
                    return True
                return self._fun_always_exits(expr.func)
            return any(self.always_exits(a) for a in expr.args)
        if kind is ast.If:
            return (self.always_exits(expr.cond)
                    or (self.always_exits(expr.then)
                        and self.always_exits(expr.orelse)))
        if kind is ast.Let:
            return (any(self.always_exits(b.value) for b in expr.bindings)
                    or self.always_exits(expr.body))
        if kind is ast.Seq:
            return any(self.always_exits(e) for e in expr.exprs)
        if kind is ast.TupleExpr:
            return any(self.always_exits(e) for e in expr.elems)
        if kind is ast.Proj:
            return self.always_exits(expr.tuple_expr)
        if kind is ast.UnOp:
            return self.always_exits(expr.operand)
        if kind is ast.BinOp:
            if expr.op in ("andalso", "orelse"):
                # The right operand may not run.
                return self.always_exits(expr.left)
            return (self.always_exits(expr.left)
                    or self.always_exits(expr.right))
        if kind is ast.Try:
            # An exception may preempt the body's emission, so both the
            # body and the handler must exit.
            return (self.always_exits(expr.body)
                    and self.always_exits(expr.handler))
        if kind is ast.Raise:
            return True  # vacuous: a raise never completes normally
        return False

    def _fun_always_exits(self, name: str) -> bool:
        if name not in self._fun_exits:
            self._fun_exits[name] = self.always_exits(
                self._info.funs[name].decl.body)
        return self._fun_exits[name]

    # -- drops -----------------------------------------------------------------------

    def drop_sites(self, expr: ast.Expr) -> list[ast.Call]:
        sites = [c for c in ast.calls_in(expr) if c.func == "drop"]
        for call in ast.calls_in(expr):
            fun = self._info.funs.get(call.func)
            if fun is not None:
                sites.extend(self.drop_sites(fun.decl.body))
        return sites


def check_delivery(info: ProgramInfo) -> DeliveryReport:
    """Raises :class:`VerificationError` unless every channel provably
    delivers/forwards every packet on every path."""
    analysis = DeliveryAnalysis(info)
    report = DeliveryReport()
    for decl in info.all_channels():
        report.channels_checked += 1

        escapes = analysis.escaping(decl.body)
        if decl.initstate is not None:
            escapes |= analysis.escaping(decl.initstate)
        if escapes:
            names = ", ".join(sorted(escapes))
            raise VerificationError(
                f"channel {decl.name!r} may terminate on unhandled "
                f"exception(s): {names}; delivery cannot be guaranteed",
                decl.pos, analysis="delivery")

        drops = analysis.drop_sites(decl.body)
        if drops:
            raise VerificationError(
                f"channel {decl.name!r} intentionally drops packets "
                f"(line {drops[0].pos.line}); delivery cannot be "
                f"guaranteed", decl.pos, analysis="delivery")

        if not analysis.always_exits(decl.body):
            raise VerificationError(
                f"channel {decl.name!r} has an execution path that "
                f"neither forwards nor delivers the packet", decl.pos,
                analysis="delivery")
        report.exits_verified += 1
    return report
