"""The late-checking verifier embedded in the run-time system.

When a program is downloaded into a node's PLAN-P layer, the four safety
analyses of paper §2.1 run against the source before installation:

1. local termination (structural restrictions),
2. global termination (abstract state exploration),
3. guaranteed packet delivery,
4. safe (linear) packet duplication.

``verify_program`` raises :class:`VerificationError` on the first failed
analysis; ``verify_report`` runs all of them and returns a structured
report, which the deployment tooling prints to operators.

The paper notes that some legitimate protocols cannot be proven (e.g.
multicast-style duplication); the run-time accepts those only from
authenticated privileged users — modelled by ``Deployment.install(...,
verify=False)`` in :mod:`repro.runtime.deployment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.errors import VerificationError
from ..lang.typechecker import ProgramInfo
from ..obs.spans import span
from .delivery import DeliveryReport, check_delivery
from .duplication import DuplicationReport, check_duplication
from .termination import (GlobalTerminationReport, check_global_termination,
                          check_local_termination)

#: The order analyses run in (cheapest first).
ANALYSES = ("local-termination", "global-termination", "delivery",
            "duplication")


@dataclass
class AnalysisResult:
    name: str
    passed: bool
    elapsed_ms: float
    detail: str = ""


@dataclass
class VerificationReport:
    """All four analyses' outcomes for one program."""

    results: list[AnalysisResult] = field(default_factory=list)
    global_termination: GlobalTerminationReport | None = None
    delivery: DeliveryReport | None = None
    duplication: DuplicationReport | None = None

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[AnalysisResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        lines = []
        for r in self.results:
            status = "PASS" if r.passed else "FAIL"
            detail = f" — {r.detail}" if r.detail else ""
            lines.append(f"{status} {r.name} ({r.elapsed_ms:.2f} ms)"
                         f"{detail}")
        return "\n".join(lines)


def verify_report(info: ProgramInfo) -> VerificationReport:
    """Run all four analyses, collecting outcomes (never raises)."""
    report = VerificationReport()

    def run(name: str, fn) -> None:
        # Each pass times into its own process-wide histogram
        # (``verify.<name>_ms``); the per-run elapsed still lands in
        # the report for operator output.
        try:
            with span(f"verify.{name}_ms") as timer:
                value = fn(info)
            report.results.append(
                AnalysisResult(name, True, timer.elapsed_ms))
            if isinstance(value, GlobalTerminationReport):
                report.global_termination = value
            elif isinstance(value, DeliveryReport):
                report.delivery = value
            elif isinstance(value, DuplicationReport):
                report.duplication = value
        except VerificationError as err:
            report.results.append(
                AnalysisResult(name, False, timer.elapsed_ms,
                               detail=err.message))

    run("local-termination", check_local_termination)
    run("global-termination", check_global_termination)
    run("delivery", check_delivery)
    run("duplication", check_duplication)
    return report


def verify_program(info: ProgramInfo) -> VerificationReport:
    """Run all four analyses; raise on the first failure.

    This is the install-time gate of the run-time system."""
    check_local_termination(info)
    report = VerificationReport()
    report.global_termination = check_global_termination(info)
    report.delivery = check_delivery(info)
    report.duplication = check_duplication(info)
    return report
