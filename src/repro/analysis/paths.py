"""Symbolic path enumeration over channel bodies.

The global-termination and safe-duplication analyses (paper §2.1) both
need to know, for every execution path of a channel, which packets the
path can emit and under which conditions.  This module walks a channel
body abstractly and produces one :class:`PathSummary` per path:

* the *emissions* performed (target channel, abstract destination,
  abstract transport destination port);
* the *constraints* the path places on the incoming packet's transport
  destination port (from guards such as ``tcpDst(tcp) = 80``).

The abstraction tracks exactly what the paper's analysis needs: "for most
protocols, the only two IP addresses available to the program are the
source and destination address of the IP header" — so destinations
abstract to {original dst, original src, this host, literal, unknown} and
ports to {original, literal, unknown}.

Paths multiply across branches and sequential composition; bodies are
small (the paper's largest ASP is 161 lines) so the walker simply
enumerates, with a budget that rejects pathological programs
conservatively.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from ..lang import ast
from ..lang.errors import VerificationError
from ..lang.typechecker import ProgramInfo
from ..net.addresses import HostAddr

#: Maximum number of paths enumerated per channel before the analysis
#: gives up (conservative rejection, the safe direction).
PATH_BUDGET = 20_000

#: Maximum fun-call inlining depth (funs cannot recurse, so this only
#: guards against deeply nested helper chains).
INLINE_DEPTH = 32


class DstKind(enum.Enum):
    """Abstract IP destination of a packet."""

    ORIG = "orig"      # unchanged: the incoming packet's destination
    SRC = "src"        # rewritten to the incoming packet's source
    THIS = "this"      # rewritten to the executing host
    LIT = "lit"        # rewritten to a program literal
    TOP = "top"        # statically unknown


@dataclass(frozen=True)
class Dst:
    kind: DstKind
    literal: HostAddr | None = None

    def __str__(self) -> str:
        if self.kind is DstKind.LIT:
            return f"lit({self.literal})"
        return self.kind.value


DST_ORIG = Dst(DstKind.ORIG)
DST_SRC = Dst(DstKind.SRC)
DST_THIS = Dst(DstKind.THIS)
DST_TOP = Dst(DstKind.TOP)


class PortKind(enum.Enum):
    """Abstract transport destination port of a packet."""

    ORIG = "orig"
    LIT = "lit"
    TOP = "top"
    NONE = "none"      # packet has no transport header


@dataclass(frozen=True)
class Port:
    kind: PortKind
    literal: int | None = None

    def __str__(self) -> str:
        if self.kind is PortKind.LIT:
            return f"lit({self.literal})"
        return self.kind.value


PORT_ORIG = Port(PortKind.ORIG)
PORT_TOP = Port(PortKind.TOP)
PORT_NONE = Port(PortKind.NONE)


# -- abstract values ----------------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """Base abstract value."""


@dataclass(frozen=True)
class AbsTop(AbsVal):
    pass


@dataclass(frozen=True)
class AbsIp(AbsVal):
    """An ip header; we track only where its destination points."""

    dst: Dst


@dataclass(frozen=True)
class AbsTrans(AbsVal):
    """A tcp/udp header; we track only its destination port."""

    dst_port: Port


@dataclass(frozen=True)
class AbsHost(AbsVal):
    """A host value, classified relative to the incoming packet."""

    dst: Dst


@dataclass(frozen=True)
class AbsInt(AbsVal):
    value: int | None  # None = unknown int


@dataclass(frozen=True)
class AbsTuple(AbsVal):
    elems: tuple[AbsVal, ...]


TOP = AbsTop()


# -- path state ---------------------------------------------------------------


@dataclass(frozen=True)
class PortConstraint:
    """Accumulated equalities/disequalities along one path on the incoming
    packet's transport destination port and IP destination (from guards
    such as ``tcpDst(tcp) = 80`` and ``ipDst(iph) = 131.254.60.81``)."""

    eq: int | None = None
    neq: frozenset[int] = frozenset()
    dst_eq: HostAddr | None = None
    dst_neq: frozenset[HostAddr] = frozenset()

    def with_eq(self, value: int) -> "PortConstraint | None":
        """None means the path is infeasible."""
        if self.eq is not None and self.eq != value:
            return None
        if value in self.neq:
            return None
        return replace(self, eq=value)

    def with_neq(self, value: int) -> "PortConstraint | None":
        if self.eq is not None and self.eq == value:
            return None
        return replace(self, neq=self.neq | {value})

    def with_dst_eq(self, value: HostAddr) -> "PortConstraint | None":
        if self.dst_eq is not None and self.dst_eq != value:
            return None
        if value in self.dst_neq:
            return None
        return replace(self, dst_eq=value)

    def with_dst_neq(self, value: HostAddr) -> "PortConstraint | None":
        if self.dst_eq is not None and self.dst_eq == value:
            return None
        return replace(self, dst_neq=self.dst_neq | {value})

    def admits(self, port: Port, dst: Dst | None = None) -> bool:
        """Could a packet with abstract port ``port`` (and, if given,
        abstract destination ``dst``) take this path?"""
        if port.kind is PortKind.LIT:
            if self.eq is not None and self.eq != port.literal:
                return False
            if port.literal in self.neq:
                return False
        if dst is not None and dst.kind is DstKind.LIT:
            if self.dst_eq is not None and self.dst_eq != dst.literal:
                return False
            if dst.literal in self.dst_neq:
                return False
        # ORIG/TOP: statically unconstrained.
        return True


@dataclass(frozen=True)
class _PortGuard:
    value: int

    def apply(self, c: PortConstraint) -> PortConstraint | None:
        return c.with_eq(self.value)

    def apply_negated(self, c: PortConstraint) -> PortConstraint | None:
        return c.with_neq(self.value)


@dataclass(frozen=True)
class _DstGuard:
    value: HostAddr

    def apply(self, c: PortConstraint) -> PortConstraint | None:
        return c.with_dst_eq(self.value)

    def apply_negated(self, c: PortConstraint) -> PortConstraint | None:
        return c.with_dst_neq(self.value)


_Guard = _PortGuard | _DstGuard


@dataclass(frozen=True)
class Emission:
    """One OnRemote/OnNeighbor performed along a path."""

    target: str                 # channel name
    dst: Dst
    port: Port
    neighbor_bound: bool        # True for OnNeighbor (single hop)
    line: int = 0


@dataclass
class PathSummary:
    """One execution path through a channel body."""

    constraint: PortConstraint = field(default_factory=PortConstraint)
    emissions: tuple[Emission, ...] = ()
    delivers: bool = False
    drops: bool = False


# -- the walker -------------------------------------------------------------------


class _Budget:
    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self, n: int = 1) -> None:
        self.remaining -= n
        if self.remaining < 0:
            raise VerificationError(
                f"path enumeration budget exceeded ({PATH_BUDGET} paths); "
                f"program rejected conservatively", analysis="paths")


@dataclass(frozen=True)
class _State:
    """Immutable per-path walker state."""

    constraint: PortConstraint
    emissions: tuple[Emission, ...]
    delivers: bool = False
    drops: bool = False


class PathWalker:
    """Enumerates paths of one channel declaration."""

    def __init__(self, info: ProgramInfo, decl: ast.ChannelDecl,
                 budget: int = PATH_BUDGET):
        self._info = info
        self._decl = decl
        self._budget = _Budget(budget)
        self._packet_name = decl.params[2].name
        self._global_env = self._abstract_globals()

    def _abstract_globals(self) -> dict[str, AbsVal]:
        """Abstract values of top-level ``val`` bindings — host and int
        constants must stay visible to guards and emissions."""
        env: dict[str, AbsVal] = {}
        for decl in self._info.program.vals:
            env[decl.name] = self._abstract_of(decl.value, env)
        return env

    def paths(self) -> list[PathSummary]:
        env = self._initial_env()
        init = _State(PortConstraint(), ())
        results: list[PathSummary] = []
        for value, state in self._walk(self._decl.body, env, init, 0):
            results.append(PathSummary(constraint=state.constraint,
                                       emissions=state.emissions,
                                       delivers=state.delivers,
                                       drops=state.drops))
        return results

    def _initial_env(self) -> dict[str, AbsVal]:
        env = dict(self._global_env)
        env[self._decl.params[0].name] = TOP
        env[self._decl.params[1].name] = TOP
        env[self._packet_name] = self._abstract_packet()
        return env

    def _abstract_packet(self) -> AbsVal:
        from ..lang import types as T

        pkt_type = self._decl.packet_type
        if not isinstance(pkt_type, T.TupleType):
            return TOP
        elems: list[AbsVal] = []
        for i, t in enumerate(pkt_type.elems):
            if t == T.IP:
                elems.append(AbsIp(DST_ORIG))
            elif t in (T.TCP, T.UDP):
                elems.append(AbsTrans(PORT_ORIG))
            else:
                elems.append(TOP)
        return AbsTuple(tuple(elems))

    # The walker yields (abstract value, state) pairs, one per path.

    def _walk(self, expr: ast.Expr, env: dict[str, AbsVal], state: _State,
              depth: int):
        self._budget.spend()
        kind = type(expr)

        if kind is ast.IntLit:
            yield AbsInt(expr.value), state
            return
        if kind is ast.HostLit:
            yield AbsHost(Dst(DstKind.LIT,
                              HostAddr.parse(expr.value))), state
            return
        if kind in (ast.BoolLit, ast.StringLit, ast.CharLit, ast.UnitLit,
                    ast.Raise):
            # Raise aborts the path; for emission analyses treating it as
            # a terminal with no further emissions is sound.
            yield TOP, state
            return
        if kind is ast.Var:
            yield env.get(expr.name, TOP), state
            return
        if kind is ast.UnOp:
            for _val, st in self._walk(expr.operand, env, state, depth):
                yield TOP, st
            return
        if kind is ast.BinOp:
            yield from self._walk_binop(expr, env, state, depth)
            return
        if kind is ast.If:
            yield from self._walk_if(expr, env, state, depth)
            return
        if kind is ast.Let:
            yield from self._walk_let(expr, 0, env, state, depth)
            return
        if kind is ast.Seq:
            yield from self._walk_seq(expr.exprs, 0, env, state, depth)
            return
        if kind is ast.TupleExpr:
            yield from self._walk_tuple(expr.elems, (), env, state, depth)
            return
        if kind is ast.Proj:
            for val, st in self._walk(expr.tuple_expr, env, state, depth):
                if isinstance(val, AbsTuple) and \
                        1 <= expr.index <= len(val.elems):
                    yield val.elems[expr.index - 1], st
                else:
                    yield TOP, st
            return
        if kind is ast.Call:
            yield from self._walk_call(expr, env, state, depth)
            return
        if kind is ast.Try:
            # Both the normal and the handler continuation are feasible.
            yield from self._walk(expr.body, env, state, depth)
            yield from self._walk(expr.handler, env, state, depth)
            return
        raise TypeError(f"path walker cannot handle {kind.__name__}")

    def _walk_binop(self, expr: ast.BinOp, env: dict[str, AbsVal],
                    state: _State, depth: int):
        for lval, st1 in self._walk(expr.left, env, state, depth):
            for rval, st2 in self._walk(expr.right, env, st1, depth):
                yield self._binop_value(expr.op, lval, rval), st2

    @staticmethod
    def _binop_value(op: str, lval: AbsVal, rval: AbsVal) -> AbsVal:
        if op in ("+", "-", "*", "/", "mod"):
            if (isinstance(lval, AbsInt) and isinstance(rval, AbsInt)
                    and lval.value is not None and rval.value is not None):
                try:
                    if op == "+":
                        return AbsInt(lval.value + rval.value)
                    if op == "-":
                        return AbsInt(lval.value - rval.value)
                    if op == "*":
                        return AbsInt(lval.value * rval.value)
                except OverflowError:  # pragma: no cover
                    return AbsInt(None)
            return AbsInt(None)
        return TOP

    def _walk_if(self, expr: ast.If, env: dict[str, AbsVal], state: _State,
                 depth: int):
        # Evaluate the condition for its effects, then refine the
        # constraints from recognised guards.
        for _cond_val, st in self._walk(expr.cond, env, state, depth):
            guards, negatable = self._guards(expr.cond, env)
            then_constraint = st.constraint
            for guard in guards:
                if then_constraint is None:
                    break
                then_constraint = guard.apply(then_constraint)
            else_constraint = st.constraint
            if negatable and len(guards) == 1:
                else_constraint = guards[0].apply_negated(else_constraint)
            if then_constraint is not None:
                yield from self._walk(
                    expr.then, env,
                    replace(st, constraint=then_constraint), depth)
            if else_constraint is not None:
                yield from self._walk(
                    expr.orelse, env,
                    replace(st, constraint=else_constraint), depth)

    def _guards(self, cond: ast.Expr, env: dict[str, AbsVal]) -> \
            tuple[list["_Guard"], bool]:
        """Extract guards from a condition.

        Returns (guards, negatable): ``guards`` hold in the then-branch;
        the else-branch may assume the negation only when the condition
        is a single atomic guard (``negatable``)."""
        if isinstance(cond, ast.BinOp) and cond.op == "andalso":
            left, _ = self._guards(cond.left, env)
            right, _ = self._guards(cond.right, env)
            return left + right, False
        guard = self._atomic_guard(cond, env)
        if guard is None:
            return [], False
        return [guard], True

    def _atomic_guard(self, cond: ast.Expr, env: dict[str, AbsVal]) -> \
            "_Guard | None":
        """Recognise ``tcpDst(x) = N`` / ``udpDst(x) = N`` /
        ``ipDst(x) = A.B.C.D`` guards on the incoming packet's headers
        (either operand order)."""
        if not (isinstance(cond, ast.BinOp) and cond.op == "="):
            return None
        for fn_side, lit_side in ((cond.left, cond.right),
                                  (cond.right, cond.left)):
            if not (isinstance(fn_side, ast.Call)
                    and len(fn_side.args) == 1):
                continue
            if fn_side.func in ("tcpDst", "udpDst"):
                port_val = self._abstract_of(lit_side, env)
                header = self._abstract_of(fn_side.args[0], env)
                if (isinstance(header, AbsTrans)
                        and header.dst_port.kind is PortKind.ORIG
                        and isinstance(port_val, AbsInt)
                        and port_val.value is not None):
                    return _PortGuard(port_val.value)
            if fn_side.func == "ipDst":
                dst_val = self._abstract_of(lit_side, env)
                header = self._abstract_of(fn_side.args[0], env)
                if (isinstance(header, AbsIp)
                        and header.dst.kind is DstKind.ORIG
                        and isinstance(dst_val, AbsHost)
                        and dst_val.dst.kind is DstKind.LIT):
                    return _DstGuard(dst_val.dst.literal)
        return None

    def _abstract_of(self, expr: ast.Expr,
                     env: dict[str, AbsVal]) -> AbsVal:
        """Effect-free abstraction of an expression (used inside guards,
        where channel bodies never place effects)."""
        if isinstance(expr, ast.Var):
            return env.get(expr.name, TOP)
        if isinstance(expr, ast.Proj):
            inner = self._abstract_of(expr.tuple_expr, env)
            if isinstance(inner, AbsTuple) and \
                    1 <= expr.index <= len(inner.elems):
                return inner.elems[expr.index - 1]
            return TOP
        if isinstance(expr, ast.IntLit):
            return AbsInt(expr.value)
        if isinstance(expr, ast.HostLit):
            return AbsHost(Dst(DstKind.LIT, HostAddr.parse(expr.value)))
        if isinstance(expr, ast.Call):
            vals = [self._abstract_of(a, env) for a in expr.args]
            return self._prim_abstract(expr.func, vals)
        return TOP

    def _walk_let(self, expr: ast.Let, index: int, env: dict[str, AbsVal],
                  state: _State, depth: int):
        if index == len(expr.bindings):
            yield from self._walk(expr.body, env, state, depth)
            return
        binding = expr.bindings[index]
        for val, st in self._walk(binding.value, env, state, depth):
            inner = dict(env)
            inner[binding.name] = val
            yield from self._walk_let(expr, index + 1, inner, st, depth)

    def _walk_seq(self, exprs: list[ast.Expr], index: int,
                  env: dict[str, AbsVal], state: _State, depth: int):
        if index == len(exprs) - 1:
            yield from self._walk(exprs[index], env, state, depth)
            return
        for _val, st in self._walk(exprs[index], env, state, depth):
            yield from self._walk_seq(exprs, index + 1, env, st, depth)

    def _walk_tuple(self, elems: list[ast.Expr], acc: tuple[AbsVal, ...],
                    env: dict[str, AbsVal], state: _State, depth: int):
        if len(acc) == len(elems):
            yield AbsTuple(acc), state
            return
        for val, st in self._walk(elems[len(acc)], env, state, depth):
            yield from self._walk_tuple(elems, acc + (val,), env, st, depth)

    def _walk_call(self, expr: ast.Call, env: dict[str, AbsVal],
                   state: _State, depth: int):
        name = expr.func
        if name in ("OnRemote", "OnNeighbor"):
            target = expr.args[0].name  # type: ignore[union-attr]
            for pkt_val, st in self._walk(expr.args[1], env, state, depth):
                dst, port = self._packet_abstraction(pkt_val)
                emission = Emission(target=target, dst=dst, port=port,
                                    neighbor_bound=(name == "OnNeighbor"),
                                    line=expr.pos.line)
                if name == "OnNeighbor":
                    for _nval, st2 in self._walk(expr.args[2], env, st,
                                                 depth):
                        yield TOP, replace(
                            st2, emissions=st2.emissions + (emission,))
                else:
                    yield TOP, replace(
                        st, emissions=st.emissions + (emission,))
            return
        if name == "deliver":
            for _val, st in self._walk(expr.args[0], env, state, depth):
                yield TOP, replace(st, delivers=True)
            return
        if name == "drop":
            for _val, st in self._walk(expr.args[0], env, state, depth):
                yield TOP, replace(st, drops=True)
            return
        if name in self._info.funs:
            yield from self._walk_fun_call(expr, env, state, depth)
            return
        # Ordinary primitive: walk arguments for paths/effects, then
        # compute the abstract result.
        yield from self._walk_prim_args(expr, 0, [], env, state, depth)

    def _walk_prim_args(self, expr: ast.Call, index: int,
                        vals: list[AbsVal], env: dict[str, AbsVal],
                        state: _State, depth: int):
        if index == len(expr.args):
            yield self._prim_abstract(expr.func, vals), state
            return
        for val, st in self._walk(expr.args[index], env, state, depth):
            yield from self._walk_prim_args(expr, index + 1, vals + [val],
                                            env, st, depth)

    def _walk_fun_call(self, expr: ast.Call, env: dict[str, AbsVal],
                       state: _State, depth: int):
        if depth >= INLINE_DEPTH:
            raise VerificationError(
                "function inlining depth exceeded", analysis="paths")
        fun = self._info.funs[expr.func]
        yield from self._walk_fun_args(expr, fun, 0, {}, env, state, depth)

    def _walk_fun_args(self, expr: ast.Call, fun, index: int,
                       bound: dict[str, AbsVal], env: dict[str, AbsVal],
                       state: _State, depth: int):
        if index == len(expr.args):
            fun_env = dict(self._global_env)
            fun_env.update(bound)
            yield from self._walk(fun.decl.body, fun_env, state, depth + 1)
            return
        param = fun.decl.params[index].name
        for val, st in self._walk(expr.args[index], env, state, depth):
            new_bound = dict(bound)
            new_bound[param] = val
            yield from self._walk_fun_args(expr, fun, index + 1, new_bound,
                                           env, st, depth)

    # -- primitive transfer functions ------------------------------------------

    @staticmethod
    def _prim_abstract(name: str, vals: list[AbsVal]) -> AbsVal:
        def ip_of(i: int) -> AbsIp | None:
            return vals[i] if i < len(vals) and isinstance(vals[i],
                                                           AbsIp) else None

        def trans_of(i: int) -> AbsTrans | None:
            return vals[i] if i < len(vals) and isinstance(
                vals[i], AbsTrans) else None

        def host_of(i: int) -> AbsHost | None:
            return vals[i] if i < len(vals) and isinstance(
                vals[i], AbsHost) else None

        def int_of(i: int) -> AbsInt | None:
            return vals[i] if i < len(vals) and isinstance(
                vals[i], AbsInt) else None

        if name == "ipDestSet":
            host = host_of(1)
            return AbsIp(host.dst if host else DST_TOP)
        if name == "ipSrcSet":
            ip = ip_of(0)
            return ip if ip else AbsIp(DST_TOP)
        if name in ("ipTosSet",):
            ip = ip_of(0)
            return ip if ip else AbsIp(DST_TOP)
        if name == "ipSwap":
            ip = ip_of(0)
            if ip and ip.dst.kind is DstKind.ORIG:
                return AbsIp(DST_SRC)
            return AbsIp(DST_TOP)
        if name == "ipMk":
            host = host_of(1)
            return AbsIp(host.dst if host else DST_TOP)
        if name == "ipSrc":
            ip = ip_of(0)
            if ip and ip.dst.kind is DstKind.ORIG:
                return AbsHost(DST_SRC)
            return AbsHost(DST_TOP)
        if name == "ipDst":
            ip = ip_of(0)
            return AbsHost(ip.dst if ip else DST_TOP)
        if name == "thisHost":
            return AbsHost(DST_THIS)
        if name in ("tcpDstSet", "udpDstSet"):
            port_val = int_of(1)
            if port_val and port_val.value is not None:
                return AbsTrans(Port(PortKind.LIT, port_val.value))
            return AbsTrans(PORT_TOP)
        if name in ("tcpSrcSet", "udpSrcSet"):
            trans = trans_of(0)
            return trans if trans else AbsTrans(PORT_TOP)
        if name in ("tcpSwap", "udpSwap"):
            return AbsTrans(PORT_TOP)
        if name in ("tcpMk", "udpMk"):
            port_val = int_of(1)
            if port_val and port_val.value is not None:
                return AbsTrans(Port(PortKind.LIT, port_val.value))
            return AbsTrans(PORT_TOP)
        if name in ("tcpDst", "udpDst"):
            trans = trans_of(0)
            if trans and trans.dst_port.kind is PortKind.LIT:
                return AbsInt(trans.dst_port.literal)
            return AbsInt(None)
        return TOP

    @staticmethod
    def _packet_abstraction(pkt: AbsVal) -> tuple[Dst, Port]:
        """Destination/port abstraction of an emitted packet tuple."""
        if not isinstance(pkt, AbsTuple) or not pkt.elems:
            return DST_TOP, PORT_TOP
        dst = DST_TOP
        if isinstance(pkt.elems[0], AbsIp):
            dst = pkt.elems[0].dst
        port = PORT_NONE
        if len(pkt.elems) > 1 and isinstance(pkt.elems[1], AbsTrans):
            port = pkt.elems[1].dst_port
        elif len(pkt.elems) > 1 and isinstance(pkt.elems[1], AbsTop):
            port = PORT_TOP
        return dst, port


def channel_paths(info: ProgramInfo,
                  decl: ast.ChannelDecl) -> list[PathSummary]:
    """All execution paths of one channel declaration."""
    return PathWalker(info, decl).paths()
