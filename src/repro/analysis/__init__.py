"""Static safety analyses for PLAN-P programs (paper §2.1)."""

from .delivery import DeliveryReport, check_delivery
from .duplication import DuplicationReport, check_duplication
from .paths import PathSummary, channel_paths
from .termination import (GlobalTerminationReport, check_global_termination,
                          check_local_termination)
from .verifier import (ANALYSES, AnalysisResult, VerificationReport,
                       verify_program, verify_report)

__all__ = [
    "ANALYSES",
    "AnalysisResult",
    "DeliveryReport",
    "DuplicationReport",
    "GlobalTerminationReport",
    "PathSummary",
    "VerificationReport",
    "channel_paths",
    "check_delivery",
    "check_duplication",
    "check_global_termination",
    "check_local_termination",
    "verify_program",
    "verify_report",
]
