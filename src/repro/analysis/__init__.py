"""Static safety analyses for PLAN-P programs (paper §2.1)."""

from .delivery import DeliveryReport, check_delivery
from .duplication import DuplicationReport, check_duplication
from .paths import PathSummary, channel_paths
from .termination import (GlobalTerminationReport, check_global_termination,
                          check_local_termination)
from .verifier import (ANALYSES, AnalysisResult, VerificationReport,
                       verify_program, verify_report)
from .wire import (WIRE_REV, ChannelSummary, CompatReport, OverloadShape,
                   Reason, Verdict, WireSummary, check_compatible,
                   wire_summary)

__all__ = [
    "ANALYSES",
    "AnalysisResult",
    "ChannelSummary",
    "CompatReport",
    "DeliveryReport",
    "DuplicationReport",
    "GlobalTerminationReport",
    "OverloadShape",
    "PathSummary",
    "Reason",
    "Verdict",
    "VerificationReport",
    "WIRE_REV",
    "WireSummary",
    "channel_paths",
    "check_compatible",
    "check_delivery",
    "check_duplication",
    "check_global_termination",
    "check_local_termination",
    "verify_program",
    "verify_report",
    "wire_summary",
]
