"""Safe packet duplication (paper §2.1).

The property: packet duplication is at most *linear* — no program may
amplify one packet into exponentially many.  Following the paper, the
check is that "for all execution paths there exists at most one OnRemote
or OnNeighbor statement whose channel argument might create copies",
where "might create copies" is the least fix-point of:

    mult(c)  =  ∃ path of c with ≥ 2 emissions
             ∨  ∃ path of c emitting to some c' with mult(c')

The fix-point assigns one boolean per channel per iteration and so
converges within |channels| iterations (the paper quotes the 2^c bound of
the naive schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.errors import VerificationError
from ..lang.typechecker import ProgramInfo
from .paths import PathSummary, channel_paths


@dataclass
class DuplicationReport:
    """Outcome of the analysis (on success)."""

    multiplying_channels: set[str] = field(default_factory=set)
    fixpoint_iterations: int = 0
    max_emissions_per_path: int = 0


def check_duplication(info: ProgramInfo) -> DuplicationReport:
    """Raises :class:`VerificationError` if duplication may be
    exponential; otherwise returns which channels multiply packets."""
    paths_of: dict[str, list[PathSummary]] = {}
    for name, overloads in info.channels.items():
        paths: list[PathSummary] = []
        for decl in overloads:
            paths.extend(channel_paths(info, decl))
        paths_of[name] = paths

    # Least fix-point of mult().
    mult: dict[str, bool] = {name: False for name in info.channels}
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        changed = False
        for name, paths in paths_of.items():
            if mult[name]:
                continue
            for path in paths:
                many = len(path.emissions) >= 2
                feeds_mult = any(mult.get(e.target, False)
                                 for e in path.emissions)
                if many or feeds_mult:
                    mult[name] = True
                    changed = True
                    break

    # The safety check proper.
    max_emissions = 0
    for name, paths in paths_of.items():
        for path in paths:
            max_emissions = max(max_emissions, len(path.emissions))
            to_multiplying = [e for e in path.emissions
                              if mult.get(e.target, False)]
            if len(to_multiplying) > 1:
                lines = ", ".join(str(e.line) for e in to_multiplying)
                raise VerificationError(
                    f"channel {name!r} has an execution path with "
                    f"{len(to_multiplying)} emissions (lines {lines}) to "
                    f"channels that may themselves create copies: packet "
                    f"duplication could be exponential",
                    analysis="duplication")

    return DuplicationReport(
        multiplying_channels={n for n, m in mult.items() if m},
        fixpoint_iterations=iterations,
        max_emissions_per_path=max_emissions)
