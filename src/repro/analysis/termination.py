"""Termination analyses (paper §2.1).

**Local termination** holds by construction: PLAN-P has no loop construct
and the type checker rejects recursive or forward ``fun`` calls.  The
check here re-verifies that invariant on the (possibly hand-built) AST,
so the verifier does not silently depend on front-end behaviour.

**Global termination**: a packet could still cycle *through the network*
if channels keep re-emitting it with rewritten destinations.  Under the
paper's assumption that IP routing is acyclic, forwarding a packet with
an *unchanged* destination always makes progress; only emissions that
rewrite the destination can create network cycles.  The analysis
performs the paper's exhaustive state exploration: abstract states are
(channel, abstract destination, abstract port); transitions come from the
path summaries of :mod:`repro.analysis.paths`; the program is rejected if
any reachable cycle contains a destination-rewriting emission.  The state
space is on the order of r·d·2^d as the paper reports (r = emission
sites, d = destinations known to the program).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..lang import ast
from ..lang.errors import VerificationError
from ..lang.typechecker import ProgramInfo
from .paths import (Dst, DstKind, Emission, PathSummary, Port, PortKind,
                    channel_paths)


# ---------------------------------------------------------------------------
# Local termination
# ---------------------------------------------------------------------------


def check_local_termination(info: ProgramInfo) -> None:
    """Verify the structural restrictions that guarantee local
    termination: a DAG of function calls and no loop constructs."""
    order = {name: i for i, name in enumerate(info.funs)}
    for name, fun in info.funs.items():
        for call in ast.calls_in(fun.decl.body):
            if call.func == name:
                raise VerificationError(
                    f"function {name!r} calls itself; recursion breaks "
                    f"local termination", call.pos, analysis="termination")
            if call.func in order and order[call.func] >= order[name]:
                raise VerificationError(
                    f"function {name!r} calls {call.func!r}, declared "
                    f"later; forward calls admit recursion", call.pos,
                    analysis="termination")
    # No loop construct exists in the AST; assert defensively in case the
    # language grows one without this analysis being revisited.
    for decl in info.all_channels():
        for node in ast.walk(decl.body):
            if type(node).__name__ in ("While", "Loop", "For"):
                raise VerificationError(
                    "loop constructs break local termination", decl.pos,
                    analysis="termination")


# ---------------------------------------------------------------------------
# Global termination
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _State:
    """(channel decl, resolved destination, resolved port)."""

    channel: str
    overload: int
    dst: Dst
    port: Port

    def pretty(self) -> str:
        return f"{self.channel}[{self.overload}] dst={self.dst} " \
               f"port={self.port}"


#: Resolved destination meaning "the application's original destination".
DST_APP = Dst(DstKind.ORIG)
#: Resolved destination "the original sender".
DST_SRCLOC = Dst(DstKind.SRC)
PORT_APP = Port(PortKind.ORIG)


def _resolve_dst(emitted: Dst, current: Dst) -> Dst:
    if emitted.kind is DstKind.ORIG:
        return current
    if emitted.kind is DstKind.SRC:
        # "src of the packet being processed": only meaningful when that
        # packet is still the application's original.
        if current == DST_APP:
            return DST_SRCLOC
        return Dst(DstKind.TOP)
    return emitted  # THIS, LIT, TOP are absolute


def _resolve_port(emitted: Port, current: Port) -> Port:
    if emitted.kind is PortKind.ORIG:
        return current
    return emitted


def _is_rewrite(emission: Emission, current_dst: Dst,
                resolved: Dst) -> bool:
    """Does this emission send the packet somewhere other than where it
    was already going?  OnNeighbor always redirects (it bypasses
    routing); unknown destinations are conservatively rewrites."""
    if emission.neighbor_bound:
        return True
    if emission.dst.kind is DstKind.ORIG:
        return False
    if resolved.kind is DstKind.TOP or resolved.kind is DstKind.THIS:
        return True
    return resolved != current_dst


@dataclass
class GlobalTerminationReport:
    states_explored: int = 0
    edges: int = 0
    rewrite_edges: int = 0
    emission_sites: int = 0


def check_global_termination(info: ProgramInfo) -> GlobalTerminationReport:
    """Explore the abstract state space and reject cycling programs.

    Raises :class:`VerificationError` if a reachable abstract cycle
    contains a destination-rewriting emission (a packet could then visit
    the same channel in the same abstract configuration indefinitely,
    i.e. cycle through the network)."""
    decls: list[tuple[str, int, ast.ChannelDecl]] = []
    for name, overloads in info.channels.items():
        for i, decl in enumerate(overloads):
            decls.append((name, i, decl))

    paths_of: dict[tuple[str, int], list[PathSummary]] = {}
    emission_sites = 0
    for name, i, decl in decls:
        summaries = channel_paths(info, decl)
        paths_of[(name, i)] = summaries
        emission_sites += sum(len(p.emissions) for p in summaries)

    graph = nx.DiGraph()
    # Every channel can receive a fresh application packet.
    frontier = [_State(name, i, DST_APP, PORT_APP) for name, i, _ in decls]
    seen: set[_State] = set(frontier)
    rewrite_edges: list[tuple[_State, _State, Emission]] = []

    while frontier:
        state = frontier.pop()
        graph.add_node(state)
        for path in paths_of[(state.channel, state.overload)]:
            if not path.constraint.admits(state.port, state.dst):
                continue
            for emission in path.emissions:
                resolved_dst = _resolve_dst(emission.dst, state.dst)
                resolved_port = _resolve_port(emission.port, state.port)
                rewrite = _is_rewrite(emission, state.dst, resolved_dst)
                for succ_i, succ_decl in enumerate(
                        info.channel_overloads(emission.target)):
                    succ = _State(emission.target, succ_i, resolved_dst,
                                  resolved_port)
                    if graph.has_edge(state, succ):
                        rewrite = rewrite or \
                            graph.edges[state, succ]["rewrite"]
                    graph.add_edge(state, succ, rewrite=rewrite,
                                   emission=emission)
                    if rewrite:
                        rewrite_edges.append((state, succ, emission))
                    if succ not in seen:
                        seen.add(succ)
                        frontier.append(succ)

    for component in nx.strongly_connected_components(graph):
        for u, v, data in graph.edges(component, data=True):
            in_cycle = (u in component and v in component
                        and (len(component) > 1 or graph.has_edge(u, u)))
            if in_cycle and data["rewrite"]:
                emission = data["emission"]
                raise VerificationError(
                    f"possible packet cycle: channel {u.channel!r} "
                    f"(state dst={u.dst}, port={u.port}) re-emits on "
                    f"channel {v.channel!r} with a rewritten destination "
                    f"{v.dst} (line {emission.line}); under acyclic IP "
                    f"routing only destination-preserving forwards are "
                    f"provably terminating", analysis="termination")

    return GlobalTerminationReport(
        states_explored=len(seen),
        edges=graph.number_of_edges(),
        rewrite_edges=len(rewrite_edges),
        emission_sites=emission_sites)
