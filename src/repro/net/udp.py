"""A UDP-style datagram transport.

One :class:`UdpStack` per host demultiplexes datagrams to bound sockets.
Unreliable and unordered, exactly as the audio/MPEG-data paths of the
paper's applications require.
"""

from __future__ import annotations

from typing import Callable

from .addresses import HostAddr
from .node import Node
from .packet import PROTO_UDP, Packet, UdpHeader, udp_packet

#: callback(payload, src_addr, src_port)
DatagramHandler = Callable[[bytes, HostAddr, int], None]


class UdpSocket:
    """A bound UDP endpoint."""

    def __init__(self, stack: "UdpStack", port: int):
        self._stack = stack
        self.port = port
        self.on_datagram: DatagramHandler | None = None
        self.received: list[tuple[bytes, HostAddr, int]] = []
        self.closed = False

    def sendto(self, dst: HostAddr, dst_port: int, payload: bytes) -> None:
        if self.closed:
            raise RuntimeError("socket is closed")
        self._stack.send_from(self.port, dst, dst_port, payload)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._stack._unbind(self.port)

    def _deliver(self, payload: bytes, src: HostAddr,
                 src_port: int) -> None:
        if self.on_datagram is not None:
            self.on_datagram(payload, src, src_port)
        else:
            self.received.append((payload, src, src_port))


class UdpStack:
    """The UDP layer of one node."""

    EPHEMERAL_BASE = 32768

    def __init__(self, node: Node):
        self.node = node
        self._sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.datagrams_in = 0
        self.datagrams_out = 0
        node.register_proto(PROTO_UDP, self._on_packet)

    def bind(self, port: int = 0) -> UdpSocket:
        """Bind a socket; ``port=0`` picks an ephemeral port."""
        if port == 0:
            port = self._alloc_ephemeral()
        if port in self._sockets:
            raise ValueError(f"udp port {port} in use on {self.node.name}")
        sock = UdpSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _alloc_ephemeral(self) -> int:
        while self._next_ephemeral in self._sockets:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def send_from(self, src_port: int, dst: HostAddr, dst_port: int,
                  payload: bytes) -> None:
        self.datagrams_out += 1
        packet = udp_packet(self.node.address, dst, src_port, dst_port,
                            payload)
        packet.created_at = self.node.sim.now
        self.node.ip_send(packet)

    def _on_packet(self, packet: Packet) -> None:
        header = packet.transport
        if not isinstance(header, UdpHeader):
            return
        sock = self._sockets.get(header.dst_port)
        if sock is None or sock.closed:
            return
        self.datagrams_in += 1
        sock._deliver(packet.payload, packet.ip.src, header.src_port)
