"""Topology construction: the ``Network`` façade.

Experiments and examples build their networks through this class; it owns
the simulator, allocates addresses, wires interfaces to media, and
finalises routing and multicast trees.

Typical use (the paper's figure 5 network is built exactly like this in
:mod:`repro.apps.audio.experiment`)::

    net = Network(seed=42)
    source = net.add_host("audio-source")
    router = net.add_router("router")
    client = net.add_host("client")
    net.link(source, router, bandwidth=100e6)
    segment = net.segment("lan", bandwidth=10e6)
    net.attach(router, segment)
    net.attach(client, segment)
    net.finalize()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .._compat import keyword_only_init
from ..obs import Observability
from .addresses import AddressAllocator, HostAddr
from .link import Link, Segment
from .multicast import GroupManager
from .node import Host, Node, Router
from .routing import compute_routes as _compute_routes
from .sim import Simulator
from .tcp import TcpStack
from .udp import UdpStack

if TYPE_CHECKING:
    from .faults import FaultController
    from .node import Interface
    from .packet import Packet
    from .shard import ShardPlan, ShardRunner


class Network:
    """A simulated network under construction (and then in operation).

    With ``shard_segments > 1`` the topology is partitioned at
    :meth:`finalize` into that many segments, each owning its own
    :class:`Simulator`, and :meth:`run` drives them through the
    conservative-parallel window protocol of :mod:`repro.net.shard`.
    ``net.sim`` is then the *controller* simulator (fault timelines,
    experiment probes); per-node traffic runs on the segment simulators,
    and runs are byte-identical to ``shard_segments=1`` for the same
    seed.  ``shard_of`` maps a :class:`Node` to its segment index
    (default: contiguous blocks in construction order).
    """

    @keyword_only_init("seed", "base_addr", "obs")
    def __init__(self, *, seed: int = 0, base_addr: str = "10.0.0.0",
                 obs: Observability | None = None, name: str = "net",
                 shard_segments: int = 1,
                 shard_of: Callable[[Node], int] | None = None):
        if shard_segments < 1:
            raise ValueError("shard_segments must be >= 1")
        self.name = name
        self.seed = seed
        self.shard_segments = int(shard_segments)
        self._shard_of = shard_of
        #: the shard plan + runner, built at finalize when sharded
        self._shard: "ShardRunner | None" = None
        # One context-id allocator and one root context span every
        # simulator this network owns (the controller and, when sharded,
        # the segments), so event keys depend only on construction
        # order — not on which simulator an entity landed on.
        self._next_lp = 0
        self.sim = Simulator(seed=seed, lp_alloc=self._alloc_lp)
        #: the simulator currently dispatching events — the controller,
        #: or whichever segment the shard runner is driving; the obs
        #: event clock reads this so event timestamps follow simulated
        #: time in every execution mode
        self._active_sim = self.sim
        #: this network's observability scope — metrics registry and a
        #: structured event log stamped with **simulated** time.  A
        #: caller-supplied scope is adopted so several runs can measure
        #: into one place; the *first* network built on it claims the
        #: event clock and the canonical ``sim`` stats name, later
        #: networks publish under ``sim2``, ``sim3``, … and leave the
        #: clock alone (the scope's timestamps stay consistent instead
        #: of silently jumping to the newest simulator).
        self.obs = obs if obs is not None \
            else Observability(clock=lambda: self._active_sim.now)
        if not self.obs.metrics.has("sim"):
            self.obs.events.clock = lambda: self._active_sim.now
            self._sim_metric_name = "sim"
        else:
            n = 2
            while self.obs.metrics.has(f"sim{n}"):
                n += 1
            self._sim_metric_name = f"sim{n}"
        self.obs.metrics.register(self._sim_metric_name, self._sim_stats)
        self.nodes: list[Node] = []
        self.media: list[Link | Segment] = []
        self._alloc = AddressAllocator(base_addr)
        self._by_name: dict[str, Node] = {}
        self._finalized = False

    def _alloc_lp(self) -> int:
        self._next_lp += 1
        return self._next_lp

    def _sim_stats(self) -> dict[str, float]:
        """The canonical ``sim`` scope: the simulator's health counters
        — merged across the controller and all segment simulators when
        sharded, so the deterministic fields (``now``,
        ``events_processed``, ``pending_events``) read identically in
        every execution mode."""
        if self._shard is None:
            return self.sim.stats()
        return self._shard.merged_sim_stats()

    # -- nodes ------------------------------------------------------------------

    def add_host(self, name: str) -> Host:
        return self._add_node(Host(self.sim, name))

    def add_router(self, name: str) -> Router:
        return self._add_node(Router(self.sim, name))

    def _add_node(self, node: Node) -> Node:
        if node.name in self._by_name:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        self._by_name[node.name] = node
        node.obs = self.obs
        self.obs.metrics.register(f"node.{node.name}", node.stats_dict)
        drops = self.obs.metrics.counter("drops_total")

        def on_drop(packet: "Packet", reason: str) -> None:
            drops.inc()
            self.obs.events.emit(
                "drop", node=node.name, uid=packet.uid,
                src=str(packet.ip.src), dst=str(packet.ip.dst),
                reason=reason, site="node")

        node.drop_taps.append(on_drop)
        return node

    def __getitem__(self, name: str) -> Node:
        return self._by_name[name]

    # -- media ------------------------------------------------------------------

    def link(self, a: Node, b: Node, bandwidth: float = 100e6,
             latency: float = 0.0005, queue_limit: int = 64,
             loss_rate: float = 0.0) -> Link:
        """Connect two nodes with a point-to-point link."""
        link = Link(self.sim, bandwidth_bps=bandwidth, latency=latency,
                    queue_limit=queue_limit, loss_rate=loss_rate,
                    name=f"{a.name}--{b.name}")
        subnet = self._alloc.new_subnet()
        a.add_interface(link, self._alloc.new_host(subnet))
        b.add_interface(link, self._alloc.new_host(subnet))
        self._register_medium(link)
        return link

    def segment(self, name: str, bandwidth: float = 10e6,
                latency: float = 0.0002, queue_limit: int = 128,
                loss_rate: float = 0.0) -> Segment:
        """Create a shared segment; attach nodes with :meth:`attach`."""
        seg = Segment(self.sim, bandwidth_bps=bandwidth, latency=latency,
                      queue_limit=queue_limit, loss_rate=loss_rate,
                      name=name)
        seg._subnet = self._alloc.new_subnet()  # type: ignore[attr-defined]
        self._register_medium(seg)
        return seg

    def attach(self, node: Node, seg: Segment) -> None:
        addr = self._alloc.new_host(seg._subnet)  # type: ignore[attr-defined]
        node.add_interface(seg, addr)

    def _register_medium(self, medium: Link | Segment) -> None:
        self.media.append(medium)
        self.obs.metrics.register(f"link.{medium.name}",
                                  medium.stats_dict)
        drops = self.obs.metrics.counter("drops_total")

        def on_drop(packet: "Packet", sender: "Interface",
                    reason: str) -> None:
            drops.inc()
            self.obs.events.emit(
                "drop", node=sender.node.name, uid=packet.uid,
                src=str(packet.ip.src), dst=str(packet.ip.dst),
                reason=reason, site=medium.name or "link")

        medium.add_drop_tap(on_drop)

    # -- services ----------------------------------------------------------------

    def udp(self, node: Node) -> UdpStack:
        """The node's UDP stack (created on first use)."""
        if not hasattr(node, "_udp_stack"):
            node._udp_stack = UdpStack(node)  # type: ignore[attr-defined]
        return node._udp_stack  # type: ignore[attr-defined]

    def tcp(self, node: Node) -> TcpStack:
        """The node's TCP stack (created on first use)."""
        if not hasattr(node, "_tcp_stack"):
            node._tcp_stack = TcpStack(node)  # type: ignore[attr-defined]
        return node._tcp_stack  # type: ignore[attr-defined]

    @property
    def faults(self) -> "FaultController":
        """The network's fault injector (created on first use)."""
        if not hasattr(self, "_faults"):
            from .faults import FaultController

            self._faults = FaultController(self)
        return self._faults

    # -- finalisation ---------------------------------------------------------------

    def finalize(self, *, compute_routes: bool = True) -> None:
        """Compute unicast routes and, when sharded, partition the
        topology; call after all media are wired.

        ``compute_routes=False`` skips the all-pairs shortest-path
        computation — web-scale topologies (the 10k-node scale bench)
        install their routes structurally instead, since all-pairs BFS
        is quadratic in nodes.
        """
        if compute_routes:
            _compute_routes(self.nodes)
        if self.shard_segments > 1:
            from .shard import ShardRunner, build_plan

            plan = build_plan(self, self.shard_segments, self._shard_of)
            self._shard = ShardRunner(self, plan)
        self._finalized = True

    def multicast_group(self, group: str | HostAddr, source: Node,
                        receivers: list[Node]) -> HostAddr:
        """Install a multicast tree for ``group`` rooted at ``source``."""
        if isinstance(group, str):
            group = HostAddr.parse(group)
        GroupManager(self.nodes).setup_group(group, source, receivers)
        return group

    def run(self, until: float | None = None, *,
            max_events: int | None = None) -> None:
        """Run the network's event loop(s) — the same ``until`` /
        ``max_events`` contract as :meth:`Simulator.run
        <repro.net.sim.Simulator.run>`, which this delegates to
        (serial) or drives per segment through the conservative window
        protocol (sharded)."""
        if not self._finalized:
            raise RuntimeError("call finalize() before running")
        if self._shard is not None:
            self._shard.run(until=until, max_events=max_events)
        else:
            self.sim.run(until=until, max_events=max_events)

    @property
    def shard_plan(self) -> "ShardPlan | None":
        """The partition in force (None when running serially)."""
        return self._shard.plan if self._shard is not None else None

    def metrics_snapshot(self,
                         include_global: bool = True) -> dict[str, object]:
        """Every metric of this network, flattened to
        ``{dotted.name: value}`` — per-node and per-link counters, the
        scheduler's health, event-log totals, and (by default) the
        process-wide :data:`repro.obs.GLOBAL` scope's JIT / cache /
        verifier instruments under a ``global.`` prefix."""
        snap = self.obs.snapshot()
        if include_global:
            from ..obs import GLOBAL

            for key, value in GLOBAL.snapshot().items():
                snap[f"global.{key}"] = value
        return snap

    @property
    def now(self) -> float:
        return self.sim.now
