"""IP multicast support: group management and tree construction.

The audio-broadcast application sends to a class-D group address; the
topology builder computes a shortest-path tree from the source to the
joined receivers and installs per-node forwarding entries
(``Node.multicast_routes``).  This models a pre-established multicast
distribution tree (the paper's application uses IP multicast on a LAN).
"""

from __future__ import annotations

import networkx as nx

from .addresses import HostAddr
from .node import Interface, Node


class GroupManager:
    """Builds multicast trees over a set of nodes."""

    def __init__(self, nodes: list[Node]):
        self._nodes = list(nodes)
        self._graph = self._adjacency()

    def _adjacency(self) -> nx.Graph:
        graph = nx.Graph()
        for node in self._nodes:
            graph.add_node(node.name)
        media: dict[int, list[Node]] = {}
        for node in self._nodes:
            for iface in node.interfaces:
                media.setdefault(id(iface.medium), []).append(node)
        for members in media.values():
            members = sorted(set(members), key=lambda n: n.name)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    graph.add_edge(a.name, b.name)
        return graph

    def setup_group(self, group: HostAddr, source: Node,
                    receivers: list[Node]) -> None:
        """Join ``receivers`` to ``group`` and install the forwarding
        tree from ``source``."""
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast address")
        by_name = {node.name: node for node in self._nodes}
        tree_edges: set[tuple[str, str]] = set()
        for receiver in receivers:
            receiver.join_group(group)
            path = nx.shortest_path(self._graph, source.name,
                                    receiver.name)
            for a, b in zip(path, path[1:]):
                tree_edges.add((a, b))

        # Install, per node on the tree, the interfaces leading to its
        # tree children.
        for a, b in sorted(tree_edges):
            node = by_name[a]
            child = by_name[b]
            iface = _iface_toward(node, child)
            if iface is None:
                raise RuntimeError(
                    f"no interface from {a} toward {b} for group {group}")
            routes = node.multicast_routes.setdefault(group, [])
            if iface not in routes:
                routes.append(iface)


def _iface_toward(node: Node, neighbor: Node) -> Interface | None:
    neighbor_media = {id(i.medium) for i in neighbor.interfaces}
    for iface in node.interfaces:
        if id(iface.medium) in neighbor_media:
            return iface
    return None
