"""A TCP-style reliable byte-stream transport.

Implements the subset the experiments need, faithfully enough that the
HTTP gateway ASP works unmodified against it: three-way handshake,
MSS segmentation, cumulative ACKs with out-of-order reassembly, a fixed
send window, timeout-based retransmission with exponential backoff, and
FIN close in both directions.

Connections are identified by (local port, remote address, remote port),
which is exactly why the paper's load-balancing gateway works: it
rewrites the server-side address while the client continues to talk to
the virtual address (§3.2).
"""

from __future__ import annotations

import enum
from typing import Callable

from .addresses import HostAddr
from .node import Node
from .packet import PROTO_TCP, Packet, TcpHeader, tcp_packet
from .sim import EventHandle

MSS = 1460
DEFAULT_WINDOW_SEGMENTS = 16
INITIAL_RTO = 0.2
MAX_RTO = 2.0
MAX_RETRIES = 8
TIME_WAIT = 1.0


class TcpState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


class TcpError(Exception):
    """Raised on misuse of the socket API or connection failure."""


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(self, stack: "TcpStack", local_port: int,
                 remote_addr: HostAddr, remote_port: int,
                 initial_seq: int):
        self.stack = stack
        self.node = stack.node
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.state = TcpState.CLOSED

        # Send side.
        self.snd_iss = initial_seq
        self.snd_nxt = initial_seq          # next sequence to use
        self.snd_una = initial_seq          # oldest unacked
        self.window_bytes = DEFAULT_WINDOW_SEGMENTS * MSS
        self._send_buffer = bytearray()     # not yet segmented
        self._inflight: dict[int, tuple[bytes, bool]] = {}  # seq -> (data, fin)
        self._fin_queued = False
        self._fin_sent = False

        # Receive side.
        self.rcv_nxt = 0
        self._reassembly: dict[int, bytes] = {}
        self._remote_fin_seq: int | None = None

        # Timers / retries.
        self._rto = INITIAL_RTO
        self._retries = 0
        self._retransmit_timer: EventHandle | None = None

        # Callbacks.
        self.on_connected: Callable[["TcpConnection"], None] | None = None
        self.on_data: Callable[["TcpConnection", bytes], None] | None = None
        self.on_close: Callable[["TcpConnection"], None] | None = None
        self.on_fail: Callable[["TcpConnection"], None] | None = None

        # Counters.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmissions = 0
        self.received_data = bytearray()    # kept when on_data is unset

    # -- public API ----------------------------------------------------------

    def send(self, data: bytes) -> None:
        if self.state not in (TcpState.ESTABLISHED, TcpState.SYN_RCVD,
                              TcpState.SYN_SENT, TcpState.CLOSE_WAIT):
            raise TcpError(f"cannot send in state {self.state}")
        if self._fin_queued:
            raise TcpError("cannot send after close()")
        self._send_buffer.extend(data)
        self._pump()

    def close(self) -> None:
        """Half-close: flush pending data, then send FIN."""
        if self._fin_queued or self.state is TcpState.CLOSED:
            return
        self._fin_queued = True
        self._pump()

    def abort(self) -> None:
        """Hard close: send RST and drop all state."""
        if self.state is not TcpState.CLOSED:
            self._emit(rst=True)
        self._teardown(failed=True)

    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    # -- connection setup ------------------------------------------------------

    def _start_connect(self) -> None:
        self.state = TcpState.SYN_SENT
        self._emit(syn=True, seq=self.snd_nxt, ack=False)
        self._inflight[self.snd_nxt] = (b"", False)
        self.snd_nxt += 1  # SYN consumes one sequence number
        self._arm_retransmit()

    def _start_accept(self, syn: Packet) -> None:
        header = syn.transport
        assert isinstance(header, TcpHeader)
        self.state = TcpState.SYN_RCVD
        self.rcv_nxt = header.seq + 1
        self._emit(syn=True, ack=True, seq=self.snd_nxt)
        self._inflight[self.snd_nxt] = (b"", False)
        self.snd_nxt += 1
        self._arm_retransmit()

    # -- segment transmission ------------------------------------------------------

    def _emit(self, *, seq: int | None = None, payload: bytes = b"",
              syn: bool = False, fin: bool = False, ack: bool = True,
              rst: bool = False) -> None:
        packet = tcp_packet(
            self.node.address, self.remote_addr, self.local_port,
            self.remote_port, payload,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt, syn=syn, fin=fin, ack_flag=ack, rst=rst)
        packet.created_at = self.node.sim.now
        self.stack.segments_out += 1
        self.node.ip_send(packet)

    def _pump(self) -> None:
        """Move bytes from the send buffer into the window."""
        while self._send_buffer and self._inflight_bytes() < \
                self.window_bytes and self.state in (
                    TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            chunk = bytes(self._send_buffer[:MSS])
            del self._send_buffer[:MSS]
            self._inflight[self.snd_nxt] = (chunk, False)
            self._emit(seq=self.snd_nxt, payload=chunk)
            self.bytes_sent += len(chunk)
            self.snd_nxt += len(chunk)
        if (self._fin_queued and not self._fin_sent
                and not self._send_buffer
                and self.state in (TcpState.ESTABLISHED,
                                   TcpState.CLOSE_WAIT)):
            self._fin_sent = True
            self._inflight[self.snd_nxt] = (b"", True)
            self._emit(seq=self.snd_nxt, fin=True)
            self.snd_nxt += 1
            self.state = (TcpState.FIN_WAIT
                          if self.state is TcpState.ESTABLISHED
                          else TcpState.LAST_ACK)
        if self._inflight:
            self._arm_retransmit()

    def _inflight_bytes(self) -> int:
        return sum(len(data) for data, _fin in self._inflight.values())

    # -- retransmission ------------------------------------------------------------

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        self._retransmit_timer = self.node.sim.schedule(
            self._rto, self._on_retransmit_timeout)

    def _on_retransmit_timeout(self) -> None:
        if not self._inflight or self.state is TcpState.CLOSED:
            return
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._teardown(failed=True)
            return
        self.retransmissions += 1
        self.stack.retransmissions += 1
        self._rto = min(self._rto * 2, MAX_RTO)
        seq = min(self._inflight)
        data, fin = self._inflight[seq]
        if self.state is TcpState.SYN_SENT:
            self._emit(syn=True, seq=seq, ack=False)
        elif self.state is TcpState.SYN_RCVD:
            self._emit(syn=True, ack=True, seq=seq)
        else:
            self._emit(seq=seq, payload=data, fin=fin)
        self._arm_retransmit()

    # -- segment reception ------------------------------------------------------------

    def handle_segment(self, packet: Packet) -> None:
        header = packet.transport
        assert isinstance(header, TcpHeader)
        self.stack.segments_in += 1

        if header.rst:
            self._teardown(failed=True)
            return

        if self.state is TcpState.SYN_SENT:
            if header.syn and header.ack_flag and \
                    header.ack == self.snd_nxt:
                self._ack_inflight(header.ack)
                self.rcv_nxt = header.seq + 1
                self.state = TcpState.ESTABLISHED
                self._emit()  # ACK of the SYN-ACK
                if self.on_connected:
                    self.on_connected(self)
                self._pump()
            return

        if header.ack_flag:
            self._ack_inflight(header.ack)
            if self.state is TcpState.SYN_RCVD and \
                    header.ack == self.snd_iss + 1:
                self.state = TcpState.ESTABLISHED
                if self.on_connected:
                    self.on_connected(self)

        if header.syn:
            # Duplicate SYN (our SYN-ACK was lost): re-answer.
            if self.state in (TcpState.SYN_RCVD, TcpState.ESTABLISHED):
                self._emit(syn=True, ack=True, seq=self.snd_iss)
            return

        advanced = False
        if header.fin:
            self._remote_fin_seq = header.seq + len(packet.payload)
        if packet.payload:
            if header.seq == self.rcv_nxt:
                self._accept_data(packet.payload)
                advanced = True
                self._drain_reassembly()
            elif header.seq > self.rcv_nxt:
                self._reassembly.setdefault(header.seq, packet.payload)
            # stale duplicate: just re-ack
            self._emit()
        if self._remote_fin_seq is not None and \
                self.rcv_nxt == self._remote_fin_seq:
            self._remote_fin_seq = None
            self.rcv_nxt += 1
            self._emit()  # ack the FIN
            if self.state is TcpState.ESTABLISHED:
                self.state = TcpState.CLOSE_WAIT
            elif self.state is TcpState.FIN_WAIT:
                self._enter_time_wait()
            if self.on_close:
                self.on_close(self)
        elif header.fin and not packet.payload and not advanced:
            self._emit()  # ack duplicate/ooo FIN
        self._pump()

    def _accept_data(self, data: bytes) -> None:
        self.rcv_nxt += len(data)
        self.bytes_received += len(data)
        self.stack.bytes_in += len(data)
        if self.on_data:
            self.on_data(self, data)
        else:
            self.received_data.extend(data)

    def _drain_reassembly(self) -> None:
        while self.rcv_nxt in self._reassembly:
            data = self._reassembly.pop(self.rcv_nxt)
            self._accept_data(data)

    def _ack_inflight(self, ack: int) -> None:
        acked_any = False
        for seq in sorted(self._inflight):
            data, _fin = self._inflight[seq]
            # SYN/FIN-only entries occupy one sequence number.
            end = seq + (len(data) if data else 1)
            if end <= ack:
                del self._inflight[seq]
                acked_any = True
            else:
                break
        if acked_any:
            self.snd_una = ack
            self._retries = 0
            self._rto = INITIAL_RTO
            if self._inflight:
                self._arm_retransmit()
            elif self._retransmit_timer is not None:
                self._retransmit_timer.cancel()
                self._retransmit_timer = None
            if self.state is TcpState.LAST_ACK and not self._inflight:
                self._teardown(failed=False)
        self._pump()

    # -- teardown ----------------------------------------------------------------------

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self.node.sim.schedule(TIME_WAIT,
                               lambda: self._teardown(failed=False))

    def _teardown(self, failed: bool) -> None:
        if self.state is TcpState.CLOSED:
            return
        was_established = self.state in (
            TcpState.ESTABLISHED, TcpState.FIN_WAIT, TcpState.CLOSE_WAIT,
            TcpState.LAST_ACK, TcpState.TIME_WAIT)
        self.state = TcpState.CLOSED
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        self.stack._forget(self)
        if failed:
            if self.on_fail:
                self.on_fail(self)
            elif self.on_close and was_established:
                self.on_close(self)

    def __repr__(self) -> str:
        return (f"TcpConnection({self.node.name}:{self.local_port} <-> "
                f"{self.remote_addr}:{self.remote_port} {self.state.value})")


class TcpListener:
    """A passive socket accepting connections on a port.

    ``backlog`` bounds half-open (SYN_RCVD) connections on the port —
    the listen queue.  A SYN arriving with the queue full is dropped
    silently, exactly like a kernel whose SYN queue overflowed: the
    client retransmits and may win a freed slot later.  ``None`` (the
    default) keeps the historical unbounded behavior; overload-aware
    servers pass a bound, which is what makes them SYN-floodable in a
    *bounded* way (state exhaustion, not memory exhaustion).
    """

    def __init__(self, stack: "TcpStack", port: int,
                 on_accept: Callable[[TcpConnection], None],
                 backlog: int | None = None):
        self.stack = stack
        self.port = port
        self.on_accept = on_accept
        self.backlog = backlog
        self.accepted = 0
        self.syn_backlog_drops = 0

    def half_open(self) -> int:
        """Current SYN_RCVD connections on this port."""
        return sum(1 for c in self.stack._connections.values()
                   if c.local_port == self.port
                   and c.state is TcpState.SYN_RCVD)

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class TcpStack:
    """The TCP layer of one node."""

    EPHEMERAL_BASE = 40000

    def __init__(self, node: Node):
        self.node = node
        self._listeners: dict[int, TcpListener] = {}
        self._connections: dict[tuple[int, HostAddr, int],
                                TcpConnection] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self._next_iss = 1000
        self.segments_in = 0
        self.segments_out = 0
        self.retransmissions = 0
        self.bytes_in = 0
        self.syn_backlog_drops = 0
        node.register_proto(PROTO_TCP, self._on_packet)

    # -- API ----------------------------------------------------------------------

    def listen(self, port: int,
               on_accept: Callable[[TcpConnection], None], *,
               backlog: int | None = None) -> TcpListener:
        if port in self._listeners:
            raise TcpError(f"tcp port {port} already listening on "
                           f"{self.node.name}")
        listener = TcpListener(self, port, on_accept, backlog=backlog)
        self._listeners[port] = listener
        return listener

    def connect(self, dst: HostAddr, dst_port: int,
                local_port: int = 0) -> TcpConnection:
        if local_port == 0:
            local_port = self._alloc_ephemeral()
        key = (local_port, dst, dst_port)
        if key in self._connections:
            raise TcpError(f"connection {key} already exists")
        conn = TcpConnection(self, local_port, dst, dst_port,
                             self._alloc_iss())
        self._connections[key] = conn
        conn._start_connect()
        return conn

    def _alloc_ephemeral(self) -> int:
        self._next_ephemeral += 1
        return self._next_ephemeral

    def _alloc_iss(self) -> int:
        self._next_iss += 64000
        return self._next_iss

    @property
    def open_connections(self) -> int:
        return len(self._connections)

    def stats_dict(self) -> dict[str, int]:
        """Counters for a metrics snapshot."""
        return {"segments_in": self.segments_in,
                "segments_out": self.segments_out,
                "retransmissions": self.retransmissions,
                "bytes_in": self.bytes_in,
                "open_connections": self.open_connections,
                "syn_backlog_drops": self.syn_backlog_drops}

    # -- demux -------------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        header = packet.transport
        if not isinstance(header, TcpHeader):
            return
        key = (header.dst_port, packet.ip.src, header.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(packet)
            return
        listener = self._listeners.get(header.dst_port)
        if listener is not None and header.syn and not header.ack_flag:
            if (listener.backlog is not None
                    and listener.half_open() >= listener.backlog):
                # SYN queue overflow: silent drop, no RST — the state
                # a SYN flood exhausts is bounded here by design.
                listener.syn_backlog_drops += 1
                self.syn_backlog_drops += 1
                return
            conn = TcpConnection(self, header.dst_port, packet.ip.src,
                                 header.src_port, self._alloc_iss())
            self._connections[key] = conn
            listener.accepted += 1
            listener.on_accept(conn)
            conn._start_accept(packet)
            return
        # No home for this segment: RST unless it *is* an RST.
        if not header.rst:
            reset = tcp_packet(self.node.address, packet.ip.src,
                               header.dst_port, header.src_port,
                               seq=header.ack, ack=0, rst=True)
            self.node.ip_send(reset)

    def _forget(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        if self._connections.get(key) is conn:
            del self._connections[key]
