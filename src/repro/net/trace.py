"""Packet tracing: the debugging story for simulated networks.

The paper argues the interpreter/DSL framework eases debugging of
in-kernel code; the simulator side of that story is this tracer, which
records packet-level events across the network and renders them as a
readable timeline — the ``tcpdump`` of the reproduction.

Usage::

    tracer = PacketTracer(net)
    tracer.attach_all()
    net.run(until=1.0)
    print(tracer.render(limit=50))
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from .addresses import HostAddr
from .node import Interface, Node
from .packet import Packet, TcpHeader, UdpHeader
from .topology import Network


class EventKind(enum.Enum):
    RECEIVE = "rx"
    DELIVER = "up"
    #: packet started transmission on a medium
    SEND = "tx"
    #: packet discarded (medium or node); ``info`` ends with the reason
    DROP = "drop"


@dataclass(frozen=True)
class TraceEvent:
    time: float
    node: str
    kind: EventKind
    uid: int
    src: HostAddr
    dst: HostAddr
    proto: str
    info: str
    size: int

    def format(self) -> str:
        return (f"{self.time * 1000:10.3f}ms {self.node:>12s} "
                f"{self.kind.value:2s} #{self.uid:<5d} "
                f"{str(self.src):>15s} -> {str(self.dst):<15s} "
                f"{self.proto:4s} {self.size:5d}B {self.info}")


def _describe(packet: Packet) -> tuple[str, str]:
    transport = packet.transport
    if isinstance(transport, TcpHeader):
        flags = "".join(name for name, on in (
            ("S", transport.syn), ("F", transport.fin),
            ("R", transport.rst), (".", transport.ack_flag)) if on)
        return "tcp", (f"{transport.src_port}->{transport.dst_port} "
                       f"[{flags}] seq={transport.seq}")
    if isinstance(transport, UdpHeader):
        info = f"{transport.src_port}->{transport.dst_port}"
        if packet.channel:
            info += f" chan={packet.channel}"
        return "udp", info
    return "raw", ""


class PacketTracer:
    """Collects send/receive/deliver/drop events from nodes and media.

    When the network has an observability scope attached
    (``net.obs``), every traced ``rx`` / ``up`` / ``tx`` event is also
    mirrored into its structured event log — packet-level logging is
    opt-in by attaching a tracer, keeping the always-on log small.
    (Drops are *not* mirrored here; the network's own drop taps already
    log them unconditionally.)
    """

    def __init__(self, net: Network, max_events: int = 100_000,
                 mirror: bool = True):
        self.net = net
        self.max_events = max_events
        self.mirror = mirror
        self.events: list[TraceEvent] = []
        self.truncated = False
        self._attached: set[str] = set()
        self._media_attached: set[int] = set()

    # -- attachment ----------------------------------------------------------

    def attach(self, node: Node) -> None:
        if node.name in self._attached:
            return
        self._attached.add(node.name)
        node.receive_taps.append(self._on_receive(node))
        node.delivery_taps.append(self._on_deliver(node))
        node.drop_taps.append(self._on_node_drop(node))

    def attach_media(self) -> None:
        """Trace transmissions and drops on every medium."""
        for medium in self.net.media:
            if id(medium) in self._media_attached:
                continue
            self._media_attached.add(id(medium))
            medium.add_send_tap(self._on_send)
            medium.add_drop_tap(self._on_medium_drop)

    def attach_all(self) -> None:
        for node in self.net.nodes:
            self.attach(node)
        self.attach_media()

    def _record(self, node_name: str, kind: EventKind, packet: Packet,
                suffix: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        proto, info = _describe(packet)
        if suffix:
            info = f"{info} {suffix}".strip()
        self.events.append(TraceEvent(
            time=self.net.sim.now, node=node_name, kind=kind,
            uid=packet.uid, src=packet.ip.src, dst=packet.ip.dst,
            proto=proto, info=info, size=packet.size))
        if (self.mirror and kind is not EventKind.DROP
                and self.net.obs is not None):
            self.net.obs.events.emit(
                kind.value, node=node_name, uid=packet.uid,
                src=str(packet.ip.src), dst=str(packet.ip.dst),
                proto=proto, size=packet.size)

    def _on_receive(self, node: Node):
        def tap(packet: Packet, _iface: Interface) -> None:
            self._record(node.name, EventKind.RECEIVE, packet)

        return tap

    def _on_deliver(self, node: Node):
        def tap(packet: Packet) -> None:
            self._record(node.name, EventKind.DELIVER, packet)

        return tap

    def _on_node_drop(self, node: Node):
        def tap(packet: Packet, reason: str) -> None:
            self._record(node.name, EventKind.DROP, packet,
                         suffix=f"reason={reason}")

        return tap

    def _on_send(self, packet: Packet, sender: Interface) -> None:
        self._record(sender.node.name, EventKind.SEND, packet)

    def _on_medium_drop(self, packet: Packet, sender: Interface,
                        reason: str) -> None:
        self._record(sender.node.name, EventKind.DROP, packet,
                     suffix=f"reason={reason}")

    # -- queries -----------------------------------------------------------------

    def filter(self, *, node: str | None = None,
               proto: str | None = None,
               uid: int | None = None,
               predicate: Callable[[TraceEvent], bool] | None = None
               ) -> list[TraceEvent]:
        out = self.events
        if node is not None:
            out = [e for e in out if e.node == node]
        if proto is not None:
            out = [e for e in out if e.proto == proto]
        if uid is not None:
            out = [e for e in out if e.uid == uid]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return out

    def packet_path(self, uid: int) -> list[str]:
        """The nodes a packet visited, in order."""
        return [e.node for e in self.events
                if e.uid == uid and e.kind is EventKind.RECEIVE]

    def render(self, limit: int | None = None, **filter_kwargs) -> str:
        events = self.filter(**filter_kwargs)
        if limit is not None:
            events = events[:limit]
        lines = [e.format() for e in events]
        if self.truncated:
            lines.append(f"... trace truncated at {self.max_events} "
                         f"events")
        return "\n".join(lines)
