"""The simulated network substrate (DESIGN.md §2: testbed substitution)."""

from .addresses import ANY_ADDR, BROADCAST_ADDR, AddressAllocator, HostAddr, addr
from .faults import FaultController
from .link import Link, Segment
from .monitor import LinkStats, LoadMonitor
from .multicast import GroupManager
from .node import Host, Interface, Node, NodeStats, Router
from .packet import (IpHeader, Packet, TcpHeader, UdpHeader, tcp_packet,
                     udp_packet)
from .routing import RoutingTable, compute_routes
from .sim import PeriodicTask, Simulator
from .tcp import TcpConnection, TcpListener, TcpStack
from .topology import Network
from .trace import EventKind, PacketTracer, TraceEvent
from .udp import UdpSocket, UdpStack

__all__ = [
    "ANY_ADDR",
    "BROADCAST_ADDR",
    "AddressAllocator",
    "FaultController",
    "GroupManager",
    "Host",
    "HostAddr",
    "Interface",
    "IpHeader",
    "Link",
    "LinkStats",
    "LoadMonitor",
    "Network",
    "EventKind",
    "PacketTracer",
    "TraceEvent",
    "Node",
    "NodeStats",
    "Packet",
    "PeriodicTask",
    "Router",
    "RoutingTable",
    "Segment",
    "Simulator",
    "TcpConnection",
    "TcpHeader",
    "TcpListener",
    "TcpStack",
    "UdpHeader",
    "UdpSocket",
    "UdpStack",
    "addr",
    "compute_routes",
    "tcp_packet",
    "udp_packet",
]
