"""Network nodes: interfaces, hosts and routers.

The receive pipeline mirrors the paper's figure 1: an arriving packet
first meets the IP/PLAN-P layer — if a downloaded program's channel
matches the packet, the program *replaces* standard IP processing for it
(forwarding happens only if the program re-emits).  Unmatched packets and
nodes without a PLAN-P layer use standard processing: local delivery,
unicast forwarding via the routing table, or multicast forwarding along
the group tree.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .addresses import HostAddr
from .link import Medium, Segment
from .packet import PROTO_TCP, PROTO_UDP, Packet
from .routing import RoutingTable
from .sim import Simulator

if TYPE_CHECKING:
    from ..obs import Observability
    from ..runtime.planp_layer import PlanPLayer

#: Default tier-3 batch-drain limit for routers: up to this many packets
#: queued by one scheduler activation run through a single specialized
#: batch loop.  Monkeypatch to 0 to force the per-packet path (the
#: batching-on/off determinism regression does exactly that).
ROUTER_BATCH_SIZE = 64


class Interface:
    """One attachment point of a node to a medium."""

    def __init__(self, node: "Node", medium: Medium, address: HostAddr,
                 name: str = ""):
        self.node = node
        self.medium = medium
        self.address = address
        self.name = name or f"{node.name}:{address}"
        medium.attach(self)

    def send(self, packet: Packet) -> None:
        self.medium.transmit(packet, self)

    def receive(self, packet: Packet) -> None:
        self.node.receive(packet, self)

    def load_kbps(self) -> int:
        medium = self.medium
        if isinstance(medium, Segment):
            return medium.load_kbps()
        return medium.tx_queue(self).load_kbps()

    def bandwidth_kbps(self) -> int:
        return int(self.medium.bandwidth_bps // 1000)

    def queue_length(self) -> int:
        return self.medium.tx_queue(self).queue_length()

    def __repr__(self) -> str:
        return f"Interface({self.name})"


@dataclass
class NodeStats:
    received: int = 0
    delivered: int = 0
    forwarded: int = 0
    dropped_ttl: int = 0
    dropped_no_route: int = 0
    dropped_not_local: int = 0
    #: packets that arrived at (or were sent from) a crashed node
    dropped_down: int = 0
    asp_handled: int = 0
    sent: int = 0
    crashes: int = 0
    restarts: int = 0


class Node:
    """Common behaviour of hosts and routers."""

    forwarding = False
    #: tier-3 batch-drain limit for this node's PLAN-P layer (0 = the
    #: per-packet path; routers default to :data:`ROUTER_BATCH_SIZE`)
    batch_size = 0

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        #: this node's scheduling context (see the contract in
        #: :mod:`repro.net.sim`): everything the node schedules in
        #: response to a delivery is attributed here, so its event keys
        #: don't depend on which segment simulator runs it
        self.ctx = sim.context(f"node:{name}")
        self.interfaces: list[Interface] = []
        self.routes = RoutingTable()
        self.stats = NodeStats()
        self.planp: "PlanPLayer | None" = None
        #: is the node running?  A crashed node neither receives nor
        #: sends; see :meth:`crash` / :meth:`restart`.
        self.up = True
        #: run when the node crashes (services drop volatile state)
        self.crash_hooks: list[Callable[[], None]] = []
        #: run when the node restarts (services re-install from
        #: persistent manifests)
        self.restart_hooks: list[Callable[[], None]] = []
        #: transport demultiplexing: IP proto number -> handler(packet)
        self._proto_handlers: dict[int, Callable[[Packet], None]] = {}
        #: multicast groups this node has joined (hosts)
        self.multicast_groups: set[HostAddr] = set()
        #: multicast forwarding: group -> interfaces on the group tree
        self.multicast_routes: dict[HostAddr, list[Interface]] = {}
        #: taps observe every delivered packet (test instrumentation)
        self.delivery_taps: list[Callable[[Packet], None]] = []
        #: taps observe every packet arriving on any interface, before
        #: PLAN-P processing (wire-level instrumentation)
        self.receive_taps: list[Callable[[Packet, Interface], None]] = []
        #: taps observe packets this node discards, with a reason
        #: (``"ttl"``, ``"no-route"``, ``"node-down"``) — segment
        #: traffic that is simply not addressed to a host is normal
        #: operation and is not tapped
        self.drop_taps: list[Callable[[Packet, str], None]] = []
        #: the owning network's observability scope (set by
        #: :class:`~repro.net.topology.Network`; None for bare nodes)
        self.obs: "Observability | None" = None

    # -- configuration ---------------------------------------------------------

    def add_interface(self, medium: Medium, address: HostAddr) -> Interface:
        iface = Interface(self, medium, address)
        self.interfaces.append(iface)
        return iface

    @property
    def addresses(self) -> list[HostAddr]:
        return [iface.address for iface in self.interfaces]

    @property
    def address(self) -> HostAddr:
        """The node's primary address (first interface)."""
        if not self.interfaces:
            raise RuntimeError(f"node {self.name} has no interfaces")
        return self.interfaces[0].address

    @property
    def entropy(self):
        """This node's private seeded random stream.  Node-local draws
        (ASP ``random_int``, gateway picks) use this instead of the
        shared ``sim.rng`` so the sequence seen by one node doesn't
        depend on unrelated traffic — or on sharding."""
        return self.ctx.entropy

    def register_proto(self, proto: int,
                       handler: Callable[[Packet], None]) -> None:
        if proto in self._proto_handlers:
            raise ValueError(f"proto {proto} already has a handler on "
                             f"{self.name}")
        self._proto_handlers[proto] = handler

    def join_group(self, group: HostAddr) -> None:
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast address")
        self.multicast_groups.add(group)

    def leave_group(self, group: HostAddr) -> None:
        self.multicast_groups.discard(group)

    # -- observability --------------------------------------------------------------

    def _drop(self, packet: Packet, reason: str) -> None:
        """Report a node-level discard to the drop taps."""
        if self.drop_taps:
            for tap in self.drop_taps:
                tap(packet, reason)

    def stats_dict(self) -> dict[str, object]:
        """The node's counters — and its PLAN-P layer's and transport
        stacks', when present — as one nested dict for the metrics
        registry."""
        out: dict[str, object] = dataclasses.asdict(self.stats)
        out["up"] = self.up
        if self.planp is not None:
            out["planp"] = dataclasses.asdict(self.planp.stats)
        tcp = getattr(self, "_tcp_stack", None)
        if tcp is not None:
            out["tcp"] = tcp.stats_dict()
        udp = getattr(self, "_udp_stack", None)
        if udp is not None:
            out["udp"] = {"datagrams_in": udp.datagrams_in,
                          "datagrams_out": udp.datagrams_out}
        return out

    # -- failure model --------------------------------------------------------------

    def crash(self) -> None:
        """Power-fail the node: delivery stops, NIC transmit buffers are
        flushed, and all volatile state — the downloaded PLAN-P program,
        its engine and protocol state — is lost.  Persistent state (a
        deployment service's manifest, routing configuration) survives;
        :meth:`restart` brings the node back and lets services rebuild
        from it.  Idempotent while down."""
        if not self.up:
            return
        self.up = False
        self.stats.crashes += 1
        for iface in self.interfaces:
            iface.medium.tx_queue(iface).drop_from(iface)
        if self.planp is not None:
            self.planp.uninstall()
        for hook in self.crash_hooks:
            hook()

    def restart(self) -> None:
        """Bring a crashed node back up (its interfaces re-attach to the
        same media and addresses).  Restart hooks run so services can
        re-install from their persistent manifests."""
        if self.up:
            return
        self.up = True
        self.stats.restarts += 1
        for hook in self.restart_hooks:
            hook()

    # -- receive path ---------------------------------------------------------------

    def receive(self, packet: Packet, iface: Interface) -> None:
        if not self.up:
            self.stats.dropped_down += 1
            self._drop(packet, "node-down")
            return
        # Re-root the ambient scheduling context: the delivery event ran
        # under the sending queue's context, but everything this node
        # schedules in response belongs to *its* context (and, when
        # sharded, the sender's context may live in another segment).
        prev = self.sim.use_context(self.ctx)
        try:
            self.stats.received += 1
            for tap in self.receive_taps:
                tap(packet, iface)
            if self.planp is not None and self._planp_eligible(packet) \
                    and self.planp.wants(packet, iface):
                self.stats.asp_handled += 1
                self.planp.process(packet, iface)
                return
            self.standard_processing(packet, iface)
        finally:
            self.sim.use_context(prev)

    def _planp_eligible(self, packet: Packet) -> bool:
        """May the PLAN-P layer see this packet?  Routers see everything
        they would forward; a host's IP input path only sees packets
        addressed to it — unless its layer listens promiscuously (the
        MPEG capture ASP of paper §3.3 does)."""
        if self.forwarding:
            return True
        if self.planp is not None and getattr(self.planp, "promiscuous",
                                              False):
            return True
        dst = packet.ip.dst
        return (dst in self.addresses or dst.is_broadcast
                or dst in self.multicast_groups)

    def standard_processing(self, packet: Packet,
                            iface: Interface | None) -> None:
        dst = packet.ip.dst
        if dst.is_multicast:
            if self.forwarding:
                self._forward_multicast(packet, iface)
            if dst in self.multicast_groups:
                self.deliver_local(packet)
            return
        if dst in self.addresses or dst.is_broadcast:
            self.deliver_local(packet)
            return
        if self.forwarding:
            self._forward_unicast(packet, iface)
            return
        # A host on a shared segment sees traffic that is not for it.
        self.stats.dropped_not_local += 1

    def _forward_unicast(self, packet: Packet,
                         in_iface: Interface | None = None) -> None:
        if packet.ip.ttl <= 1:
            self.stats.dropped_ttl += 1
            self._drop(packet, "ttl")
            return
        out = self.routes.lookup(packet.ip.dst)
        if out is None:
            self.stats.dropped_no_route += 1
            self._drop(packet, "no-route")
            return
        if out is in_iface:
            # The destination lives on the arrival segment: sending the
            # packet back out would duplicate segment traffic.
            self.stats.dropped_not_local += 1
            return
        self.stats.forwarded += 1
        out.send(packet.hop())

    def _forward_multicast(self, packet: Packet,
                           in_iface: Interface | None) -> None:
        if packet.ip.ttl <= 1:
            self.stats.dropped_ttl += 1
            self._drop(packet, "ttl")
            return
        out_ifaces = self.multicast_routes.get(packet.ip.dst, [])
        hopped = packet.hop()
        for out in out_ifaces:
            if out is in_iface:
                continue
            self.stats.forwarded += 1
            out.send(hopped.copy() if len(out_ifaces) > 1 else hopped)

    def deliver_local(self, packet: Packet) -> None:
        self.stats.delivered += 1
        for tap in self.delivery_taps:
            tap(packet)
        handler = self._proto_handlers.get(packet.ip.proto)
        if handler is not None:
            handler(packet)

    # -- send path ----------------------------------------------------------------------

    def ip_send(self, packet: Packet,
                exclude_iface: Interface | None = None,
                from_planp: bool = False) -> None:
        """Send a locally originated (or ASP-emitted) packet.

        ``exclude_iface`` suppresses multicast reflection back out the
        interface an ASP received the packet on.  ``from_planp`` marks
        re-emissions by the PLAN-P layer, which must not loop back into
        it; packets originated by local applications *do* traverse the
        IP/PLAN-P layer once, even when self-addressed (figure 1 places
        the layer inside the IP stack).
        """
        if not self.up:
            self.stats.dropped_down += 1
            self._drop(packet, "node-down")
            return
        self.stats.sent += 1
        dst = packet.ip.dst
        if dst.is_multicast:
            self._forward_multicast_from_self(packet, exclude_iface)
            if dst in self.multicast_groups:
                self.deliver_local(packet)
            return
        if dst in self.addresses:
            if (not from_planp and self.planp is not None
                    and self.planp.wants(packet, None)):
                self.stats.asp_handled += 1
                self.planp.process(packet, None)
            else:
                self.deliver_local(packet)
            return
        out = self.routes.lookup(dst)
        if out is None:
            self.stats.dropped_no_route += 1
            self._drop(packet, "no-route")
            return
        if out is exclude_iface:
            # An ASP forwarding segment-local traffic it observed in
            # passing: the packet is already on its destination segment.
            self.stats.dropped_not_local += 1
            return
        out.send(packet)

    def _forward_multicast_from_self(
            self, packet: Packet,
            exclude_iface: Interface | None) -> None:
        out_ifaces = [i for i in self.multicast_routes.get(packet.ip.dst, [])
                      if i is not exclude_iface]
        for i, out in enumerate(out_ifaces):
            out.send(packet.copy() if i > 0 else packet)

    # -- monitoring (the ExecutionContext needs of ASPs) ----------------------------

    def iface_toward(self, dst: HostAddr) -> Interface | None:
        """The interface a packet to ``dst`` would leave through."""
        for iface in self.interfaces:
            if iface.address == dst:
                return iface
        out = self.routes.lookup(dst)
        if out is not None:
            return out
        # Multicast and local-segment destinations: use the tree or the
        # sole interface.
        if dst.is_multicast:
            tree = self.multicast_routes.get(dst)
            if tree:
                return tree[0]
        if len(self.interfaces) == 1:
            return self.interfaces[0]
        return None

    def link_load_toward(self, dst: HostAddr) -> int:
        iface = self.iface_toward(dst)
        return iface.load_kbps() if iface is not None else 0

    def link_bandwidth_toward(self, dst: HostAddr) -> int:
        iface = self.iface_toward(dst)
        return iface.bandwidth_kbps() if iface is not None else 0

    def queue_len_toward(self, dst: HostAddr) -> int:
        iface = self.iface_toward(dst)
        return iface.queue_length() if iface is not None else 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end system: runs transports and applications, never forwards."""

    forwarding = False


class Router(Node):
    """A forwarding node; ASPs downloaded here adapt traffic in flight."""

    forwarding = True

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        # Instance attribute so tests can patch ROUTER_BATCH_SIZE before
        # building a topology (class-level Node.batch_size stays 0).
        self.batch_size = ROUTER_BATCH_SIZE
