"""Link-load measurement.

The audio-broadcast router ASP of paper §3.1 reads the measured traffic
on its outgoing link and degrades quality when it approaches capacity.
"Measurements are performed locally on the router", which is what makes
the adaptation immediate compared to end-to-end feedback.

:class:`LoadMonitor` implements the measurement: a sliding window of
transmitted-byte buckets, queried as a kbit/s rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


class LoadMonitor:
    """Sliding-window throughput estimator.

    ``window`` is the averaging horizon in seconds; shorter windows adapt
    faster but jitter more — the trade-off the audio experiment's
    hysteresis policy tames.
    """

    def __init__(self, window: float = 1.0, bucket: float = 0.1,
                 ewma_alpha: float = 0.3):
        if window <= 0 or bucket <= 0 or bucket > window:
            raise ValueError("need 0 < bucket <= window")
        if not 0 < ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha {ewma_alpha} not in (0, 1]")
        self.window = window
        self.bucket = bucket
        self.ewma_alpha = ewma_alpha
        self._buckets: deque[tuple[float, int]] = deque()
        self.total_bytes = 0
        self.total_packets = 0
        self._latest = 0.0
        self._ewma_bps = 0.0
        self._ewma_primed = False

    def record(self, now: float, nbytes: int) -> None:
        """Account ``nbytes`` transmitted at time ``now``.

        ``now`` may lag the newest recorded timestamp (a boundary
        delivery landing between shard segments): late records merge
        into their own slot, keeping the bucket deque sorted, instead
        of appending an out-of-order bucket that would corrupt every
        later window query.
        """
        self.total_bytes += nbytes
        self.total_packets += 1
        slot = int(now / self.bucket)
        if not self._buckets or slot > self._buckets[-1][0]:
            if self._buckets:
                self._fold_ewma(self._buckets[-1][1],
                                slot - self._buckets[-1][0])
            self._buckets.append((slot, nbytes))
        elif self._buckets[-1][0] == slot:
            self._buckets[-1] = (slot, self._buckets[-1][1] + nbytes)
        else:
            self._record_late(slot, nbytes)
        self._latest = max(self._latest, now)
        self._expire(self._latest)

    def _record_late(self, slot: float, nbytes: int) -> None:
        """Merge a late record into its (already-closed) slot.  The
        EWMA is not revised — it folds buckets as they close — but the
        window sum stays exact and the deque stays sorted."""
        buckets = self._buckets
        for i in range(len(buckets) - 1, -1, -1):
            s, n = buckets[i]
            if s == slot:
                buckets[i] = (s, n + nbytes)
                return
            if s < slot:
                buckets.insert(i + 1, (slot, nbytes))
                return
        buckets.insert(0, (slot, nbytes))

    def _fold_ewma(self, closed_bytes: int, gap_slots: float) -> None:
        """A bucket closed: fold its rate into the EWMA; slots that
        passed silently decay the estimate toward zero."""
        rate = closed_bytes * 8 / self.bucket
        a = self.ewma_alpha
        if self._ewma_primed:
            self._ewma_bps += a * (rate - self._ewma_bps)
        else:
            self._ewma_bps = rate
            self._ewma_primed = True
        if gap_slots > 1:
            self._ewma_bps *= (1.0 - a) ** (gap_slots - 1)

    def ewma_rate(self, now: float | None = None) -> float:
        """Exponentially-weighted rate in bit/s, folded from closed
        buckets.  With ``now`` given, silent slots since the last
        record decay the estimate (without mutating state)."""
        rate = self._ewma_bps
        if now is not None and self._buckets:
            gap = int(now / self.bucket) - self._buckets[-1][0]
            if gap > 1:
                rate *= (1.0 - self.ewma_alpha) ** (gap - 1)
        return rate

    def _expire(self, now: float) -> None:
        horizon = int((now - self.window) / self.bucket)
        while self._buckets and self._buckets[0][0] < horizon:
            self._buckets.popleft()

    def bytes_in_window(self, now: float) -> int:
        self._expire(now)
        return sum(n for _slot, n in self._buckets)

    def _elapsed(self, now: float) -> float:
        """The averaging denominator: the window once it has filled,
        but only the elapsed time during warm-up — dividing the first
        partial window's bytes by the full window would underreport the
        rate (and bias the audio ASP's first adaptation decisions
        toward "plenty of headroom").  Floored at one bucket width so a
        lone packet at t≈0 cannot extrapolate to an absurd rate."""
        return max(min(now, self.window), self.bucket)

    def rate_kbps(self, now: float) -> int:
        """Measured rate over the window, in kbit/s (rounded down)."""
        return int(self.bytes_in_window(now) * 8 / self._elapsed(now)
                   / 1000)

    def rate_bps(self, now: float) -> float:
        return self.bytes_in_window(now) * 8 / self._elapsed(now)


@dataclass
class LinkStats:
    """Cumulative per-link counters, used by experiment reports.

    ``packets_dropped`` counts queue (drop-tail) losses before
    transmission; ``packets_lost`` counts medium losses after the
    packet consumed airtime.  Offered = sent + dropped;
    delivered = sent - lost.
    """

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0
    bytes_dropped: int = 0
    packets_lost: int = 0
    bytes_lost: int = 0

    def drop_rate(self) -> float:
        total = self.packets_sent + self.packets_dropped
        if total == 0:
            return 0.0
        return self.packets_dropped / total
