"""Deterministic discrete-event simulation engine.

All experiments run on this engine: time is simulated seconds, events are
callbacks ordered by (time, sequence number), and every source of
randomness draws from the simulator's seeded RNG, so runs are exactly
reproducible — a substitute for the paper's LAN testbed that trades
absolute timing fidelity for determinism (see DESIGN.md §2).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: popped from the queue (ran or was swept); cancelling is a no-op
    done: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by ``schedule``; allows cancelling a pending event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        self._sim._cancel(self._event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


#: Queues smaller than this are never compacted (the sweep would cost
#: more than the garbage it reclaims).
_COMPACT_MIN_QUEUE = 64


class Simulator:
    """A single-threaded event loop over simulated time.

    Cancelled events are deleted lazily: cancelling only flags the entry,
    and the flagged entries are either skipped when popped or swept out
    wholesale once they outnumber the live ones (so long runs that cancel
    many timers — TCP retransmits, periodic tasks — don't accumulate
    garbage in the heap).  Live/cancelled counts are maintained
    incrementally, making :attr:`pending_events` O(1).
    """

    def __init__(self, seed: int = 0):
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.rng = random.Random(seed)
        self.events_processed = 0
        self._live = 0
        self._cancelled = 0
        self._microtasks: list[Callable[[], None]] = []
        self._in_event = False

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` after the *current* event's callback returns, at
        the same simulated time, before the next event is popped.

        Microtasks are the batch-drain hook: a node can defer work
        enqueued during one event delivery to the end of that delivery
        (so several packets from one event coalesce) without scheduling
        new events — anything they schedule gets its sequence numbers
        in exactly the same order as inline execution, keeping runs
        byte-identical.  Outside an event callback ``fn`` runs
        immediately, so direct (non-simulated) calls stay synchronous.
        """
        if self._in_event:
            self._microtasks.append(fn)
        else:
            fn()

    def _dispatch(self, fn: Callable[[], None]) -> None:
        """Run one event callback, then drain its microtasks (including
        ones enqueued by other microtasks)."""
        tasks = self._microtasks
        self._in_event = True
        try:
            fn()
            while tasks:
                tasks.pop(0)()
        finally:
            self._in_event = False
            if tasks:
                del tasks[:]

    def schedule(self, delay: float,
                 fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = _Event(self.now + delay, next(self._seq), fn)
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    # -- lazy deletion -----------------------------------------------------------

    def _cancel(self, event: _Event) -> None:
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._live -= 1
        self._cancelled += 1
        if (len(self._queue) >= _COMPACT_MIN_QUEUE
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Sweep cancelled entries out of the heap and re-heapify."""
        for event in self._queue:
            if event.cancelled:
                event.done = True
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _pop(self) -> _Event | None:
        """Pop the next live event (skipping cancelled ones), or None."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.done = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            return event
        return None

    def at(self, when: float, fn: Callable[[], None]) -> EventHandle:
        """Run ``fn`` at absolute simulated time ``when``."""
        return self.schedule(max(0.0, when - self.now), fn)

    def jittered(self, delay: float, frac: float = 0.5) -> float:
        """``delay`` perturbed uniformly by ±``frac``, from the seeded
        RNG — retry timers use this so synchronized failures don't
        retransmit in lockstep, while runs stay reproducible."""
        return delay * (1.0 + frac * (2.0 * self.rng.random() - 1.0))

    def every(self, interval: float, fn: Callable[[], None],
              start: float | None = None,
              until: float | None = None) -> "PeriodicTask":
        """Run ``fn`` every ``interval`` seconds until cancelled."""
        return PeriodicTask(self, interval, fn, start=start, until=until)

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains or ``until`` is passed.

        When ``until`` is given, ``now`` is advanced to exactly ``until``
        even if the queue drained earlier, so fixed-horizon experiments
        always end at the same clock reading.
        """
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                event.done = True
                self._cancelled -= 1
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            event.done = True
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            self._dispatch(event.fn)
        if until is not None and self.now < until:
            self.now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (guarding against runaways)."""
        processed = 0
        while self._queue:
            event = self._pop()
            if event is None:
                break
            self.now = event.time
            self.events_processed += 1
            self._dispatch(event.fn)
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"simulation did not converge within {max_events} "
                    f"events — possible packet storm")

    @property
    def pending_events(self) -> int:
        """Live (not-yet-run, not-cancelled) events — O(1)."""
        return self._live

    def stats(self) -> dict[str, float]:
        """Scheduler health counters for a metrics snapshot."""
        return {"now": self.now,
                "events_processed": self.events_processed,
                "pending_events": self._live,
                "cancelled_pending": self._cancelled,
                "heap_size": len(self._queue)}


class PeriodicTask:
    """A self-rescheduling event, e.g. an audio frame clock."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[[], None], start: float | None = None,
                 until: float | None = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._until = until
        self._stopped = False
        self._handle: EventHandle | None = None
        first_delay = 0.0 if start is None else max(0.0, start - sim.now)
        self._handle = sim.schedule(first_delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        if self._until is not None and self._sim.now > self._until:
            return
        self._fn()
        if not self._stopped:
            self._handle = self._sim.schedule(self._interval, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()


class SerialResource:
    """A serial processing resource (e.g. a node's CPU).

    Work items run in submission order, each occupying the resource for
    its cost; with ``per_item_s == 0`` submission is immediate and
    synchronous.  Used to charge gateway nodes for per-packet ASP
    execution — the contention point of the paper's figure 8.
    """

    def __init__(self, sim: Simulator, per_item_s: float = 0.0):
        self._sim = sim
        self.per_item_s = per_item_s
        self._busy_until = 0.0
        self.items_processed = 0

    def submit(self, fn: Callable[[], None],
               cost_s: float | None = None) -> None:
        cost = self.per_item_s if cost_s is None else cost_s
        self.items_processed += 1
        if cost <= 0:
            fn()
            return
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + cost
        self._sim.at(self._busy_until, fn)

    @property
    def backlog_s(self) -> float:
        return max(0.0, self._busy_until - self._sim.now)
