"""Deterministic discrete-event simulation engine.

All experiments run on this engine: time is simulated seconds, events
are callbacks ordered by a total **event key**, and every source of
randomness draws from seeded streams, so runs are exactly reproducible
— a substitute for the paper's LAN testbed that trades absolute timing
fidelity for determinism (see DESIGN.md §2 and §13).

The scheduling contract (formalized for the sharded core, DESIGN §13)
----------------------------------------------------------------------

Events are ordered by ``EventKey = (time, lp, lseq)``:

* ``time`` — absolute simulated seconds;
* ``lp`` — the id of the :class:`SchedulingContext` the event was
  scheduled under (contexts are minted in construction order, so ids
  are stable across runs *and* across execution modes);
* ``lseq`` — that context's monotone counter.

``Simulator.schedule`` / ``call_soon`` are the **only** ways to enqueue
work.  Each ``schedule`` call is attributed to a context: the one
passed explicitly, else the *ambient* context (the context of the event
currently being dispatched), else the simulator's root context.  Because
a context's counter is only ever advanced by the entity that owns it,
event keys are a pure function of (topology, seed) — independent of how
event processing is physically interleaved.  That is the property the
sharded conservative-parallel runner (:mod:`repro.net.shard`) relies
on: a boundary-crossing event computed in one segment carries its
``(lp, lseq)`` across the cut and lands in the remote queue in exactly
the position it would have occupied in a single-queue run.

Randomness follows the same discipline: :meth:`Simulator.entropy`
derives an independent seeded stream per name, so an entity's draws do
not depend on unrelated traffic (and therefore not on sharding).
``Simulator.rng`` remains the root stream for setup-time draws.
"""

from __future__ import annotations

import heapq
import random
import warnings
from typing import Any, Callable

from .._compat import keyword_only_init

#: The total-order key events are sorted by; see the module docstring.
EventKey = tuple[float, int, int]

#: ``lp`` of every simulator's root context.  Shared deliberately:
#: root events on different segment simulators are never compared with
#: each other, and a network-wide root context keeps setup-time keys
#: identical between serial and sharded execution.
ROOT_LP = 0

#: ``lp`` reserved for nothing — used to build exclusive horizon keys
#: (``(H, BEFORE_ANY_LP, 0)`` sorts before every real event at ``H``).
BEFORE_ANY_LP = -1


class SchedulingContext:
    """One scheduling domain: a node, a transmit queue, a periodic
    task, the controller.  Owns an ``lp`` id, a monotone ``lseq``
    counter, and a derived entropy stream.

    Contexts carry no simulator reference — they are pure identity.
    This is what lets the sharded topology rewire entities onto
    per-segment simulators without touching their keys.
    """

    __slots__ = ("name", "lp", "_lseq", "_entropy", "_seed")

    def __init__(self, name: str, lp: int, seed: Any = 0,
                 entropy: random.Random | None = None):
        self.name = name
        self.lp = lp
        self._lseq = 0
        self._seed = seed
        self._entropy = entropy

    def next_lseq(self) -> int:
        n = self._lseq
        self._lseq = n + 1
        return n

    @property
    def entropy(self) -> random.Random:
        """This context's private seeded stream (lazy).  Derived from
        ``(seed, name)`` so it is identical in serial and sharded
        execution regardless of event interleaving."""
        if self._entropy is None:
            self._entropy = derive_rng(self._seed, self.name)
        return self._entropy

    def __repr__(self) -> str:
        return f"SchedulingContext({self.name!r}, lp={self.lp})"


def derive_rng(seed: Any, name: str) -> random.Random:
    """An independent deterministic stream for ``(seed, name)``.

    String seeding uses CPython's sha512 path, which is stable across
    processes (unlike ``hash``), so worker processes derive identical
    streams."""
    return random.Random(f"{seed}/{name}")


class _Event:
    """One queue entry.  Ordered by ``(time, lp, lseq)``."""

    __slots__ = ("time", "lp", "lseq", "fn", "ctx", "cancelled", "done")

    def __init__(self, time: float, lp: int, lseq: int,
                 fn: Callable[[], None], ctx: SchedulingContext):
        self.time = time
        self.lp = lp
        self.lseq = lseq
        self.fn = fn
        self.ctx = ctx
        #: flagged for lazy deletion
        self.cancelled = False
        #: popped from the queue (ran or was swept); cancelling is a no-op
        self.done = False

    @property
    def key(self) -> EventKey:
        return (self.time, self.lp, self.lseq)

    def __lt__(self, other: "_Event") -> bool:
        return ((self.time, self.lp, self.lseq)
                < (other.time, other.lp, other.lseq))


class EventHandle:
    """Returned by ``schedule``; allows cancelling a pending event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        self._sim._cancel(self._event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def key(self) -> EventKey:
        return self._event.key


#: Queues smaller than this are never compacted (the sweep would cost
#: more than the garbage it reclaims).
_COMPACT_MIN_QUEUE = 64


class Simulator:
    """An event loop over simulated time (one segment of it, when
    sharded).

    Cancelled events are deleted lazily: cancelling only flags the entry,
    and the flagged entries are either skipped when popped or swept out
    wholesale once they outnumber the live ones (so long runs that cancel
    many timers — TCP retransmits, periodic tasks — don't accumulate
    garbage in the heap).  Live/cancelled counts are maintained
    incrementally, making :attr:`pending_events` O(1).

    Constructor arguments are keyword-only (legacy positional ``seed``
    still works for one release, with a :class:`DeprecationWarning`).
    ``lp_alloc`` and ``root`` let a :class:`~repro.net.topology.Network`
    share one context-id allocator and one root context across all of
    its segment simulators, keeping event keys mode-independent.
    """

    @keyword_only_init("seed")
    def __init__(self, *, seed: int = 0,
                 lp_alloc: Callable[[], int] | None = None,
                 root: SchedulingContext | None = None):
        self._queue: list[_Event] = []
        self.now = 0.0
        self.seed = seed
        self.rng = random.Random(seed)
        self.events_processed = 0
        self._live = 0
        self._cancelled = 0
        self._microtasks: list[tuple[Callable[[], None],
                                     SchedulingContext]] = []
        self._in_event = False
        self._next_lp = 0
        self._lp_alloc = lp_alloc if lp_alloc is not None else self._own_lp
        self.root = root if root is not None else SchedulingContext(
            "root", ROOT_LP, seed, entropy=self.rng)
        self._current: SchedulingContext = self.root
        self._entropies: dict[str, random.Random] = {}
        #: the key of the event currently being dispatched (None
        #: outside dispatch).  Because keys are a total order identical
        #: across execution modes, observers that record it can merge
        #: per-segment observation streams back into the exact serial
        #: observation order (see tests' delivery-stream hashing).
        self.current_event_key: EventKey | None = None

    def _own_lp(self) -> int:
        self._next_lp += 1
        return self._next_lp

    # -- the formalized entry surface --------------------------------------------

    def context(self, name: str) -> SchedulingContext:
        """Mint a new scheduling context.  Ids come from the simulator's
        allocator (or the owning network's shared allocator), so they
        reflect construction order — which is what makes them stable
        across serial and sharded execution.  The id is folded into the
        context's name so every context gets a distinct entropy stream
        even when callers pass duplicate names."""
        lp = self._lp_alloc()
        return SchedulingContext(f"{name}#{lp}", lp, self.seed)

    def use_context(self, ctx: SchedulingContext) -> SchedulingContext:
        """Swap the ambient scheduling context; returns the previous one
        (restore it in a ``finally``).  ``Node.receive`` re-roots onto
        the receiving node's context here, which keeps a context's
        counter local to one segment even when its packets cross
        segment boundaries."""
        prev = self._current
        self._current = ctx
        return prev

    @property
    def current_context(self) -> SchedulingContext:
        return self._current

    def entropy(self, name: str) -> random.Random:
        """A named derived random stream (memoized).  Entities use this
        instead of the shared :attr:`rng` so their draws are independent
        of event interleaving — the property sharded runs rely on."""
        stream = self._entropies.get(name)
        if stream is None:
            stream = derive_rng(self.seed, name)
            self._entropies[name] = stream
        return stream

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` after the *current* event's callback returns, at
        the same simulated time, before the next event is popped.

        Microtasks are the batch-drain hook: a node can defer work
        enqueued during one event delivery to the end of that delivery
        (so several packets from one event coalesce) without scheduling
        new events — anything they schedule gets its keys in exactly
        the same order as inline execution, keeping runs byte-identical.
        The ambient context at ``call_soon`` time is captured and
        restored around the microtask.  Outside an event callback
        ``fn`` runs immediately, so direct (non-simulated) calls stay
        synchronous.
        """
        if self._in_event:
            self._microtasks.append((fn, self._current))
        else:
            fn()

    def schedule(self, delay: float, fn: Callable[[], None], *,
                 context: SchedulingContext | None = None) -> EventHandle:
        """Run ``fn`` after ``delay`` simulated seconds.

        The event is attributed to ``context``, else to the ambient
        context (of the event being dispatched), else to the root
        context — see the module docstring for why attribution is part
        of the scheduling contract."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ctx = context if context is not None else self._current
        event = _Event(self.now + delay, ctx.lp, ctx.next_lseq(), fn, ctx)
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    def at(self, when: float, fn: Callable[[], None], *,
           context: SchedulingContext | None = None) -> EventHandle:
        """Run ``fn`` at absolute simulated time ``when``."""
        return self.schedule(max(0.0, when - self.now), fn,
                             context=context)

    def post(self, time: float, fn: Callable[[], None], *,
             lp: int, lseq: int,
             ctx: SchedulingContext | None = None) -> EventHandle:
        """Enqueue an event with an **explicit** key — the boundary
        half of the scheduling contract.  The sharded runner uses this
        to inject a cross-segment delivery with the key its sending
        transmit-queue context drew on the far side, so the event sorts
        exactly where a single-queue run would have placed it.

        ``ctx`` is the context the callback will run under (defaults to
        this simulator's root).  ``time`` must not lie in this
        simulator's past.
        """
        if time < self.now:
            raise ValueError(
                f"post at {time} is in the past (now={self.now})")
        event = _Event(time, lp, lseq, fn,
                       ctx if ctx is not None else self.root)
        heapq.heappush(self._queue, event)
        self._live += 1
        return EventHandle(event, self)

    # -- lazy deletion -----------------------------------------------------------

    def _cancel(self, event: _Event) -> None:
        if event.cancelled or event.done:
            return
        event.cancelled = True
        self._live -= 1
        self._cancelled += 1
        if (len(self._queue) >= _COMPACT_MIN_QUEUE
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Sweep cancelled entries out of the heap and re-heapify."""
        for event in self._queue:
            if event.cancelled:
                event.done = True
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _pop(self) -> _Event | None:
        """Pop the next live event (skipping cancelled ones), or None."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.done = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            return event
        return None

    def _peek(self) -> _Event | None:
        """The next live event without popping it (sweeps cancelled
        heads), or None."""
        while self._queue:
            event = self._queue[0]
            if not event.cancelled:
                return event
            heapq.heappop(self._queue)
            event.done = True
            self._cancelled -= 1
        return None

    # -- introspection (the shard runner's horizon inputs) ----------------------

    def next_event_time(self) -> float | None:
        """The timestamp of the next live event, or None when idle."""
        event = self._peek()
        return event.time if event is not None else None

    def next_event_key(self) -> EventKey | None:
        """The full key of the next live event, or None when idle."""
        event = self._peek()
        return event.key if event is not None else None

    # -- randomness helpers -------------------------------------------------------

    def jittered(self, delay: float, frac: float = 0.5, *,
                 entropy: random.Random | None = None) -> float:
        """``delay`` perturbed uniformly by ±``frac`` — retry timers use
        this so synchronized failures don't retransmit in lockstep,
        while runs stay reproducible.  Pass a per-entity ``entropy``
        stream (see :meth:`entropy`) to keep the draw independent of
        unrelated traffic; the default draws from the shared root
        stream (deprecated for entities that can run sharded)."""
        rng = entropy if entropy is not None else self.rng
        return delay * (1.0 + frac * (2.0 * rng.random() - 1.0))

    def every(self, interval: float, fn: Callable[[], None],
              start: float | None = None,
              until: float | None = None) -> "PeriodicTask":
        """Run ``fn`` every ``interval`` seconds until cancelled."""
        return PeriodicTask(self, interval, fn, start=start, until=until)

    # -- the unified run loop -----------------------------------------------------

    def run(self, until: float | None = None, *,
            max_events: int | None = None,
            until_key: EventKey | None = None) -> int:
        """Process events in key order; returns how many ran.

        One documented contract for every caller (experiments,
        :meth:`Topology.run <repro.net.topology.Network.run>`, segment
        workers):

        * ``until`` — process events with ``time <= until`` (inclusive);
          afterwards ``now`` is advanced to exactly ``until`` even if
          the queue drained earlier, so fixed-horizon experiments always
          end at the same clock reading.
        * ``until_key`` — process events with ``key < until_key``
          (exclusive); afterwards ``now`` advances to ``until_key[0]``.
          This is the shard barrier's bound: a window closes *before*
          any event of the next window, at full key precision.
        * ``max_events`` — runaway guard: raise ``RuntimeError`` if more
          than this many events are due within the bounds.

        With no arguments the queue is drained completely.
        """
        processed = 0
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                event.done = True
                self._cancelled -= 1
                continue
            if until is not None and event.time > until:
                break
            if until_key is not None and event.key >= until_key:
                break
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"simulation did not converge within {max_events} "
                    f"events — possible packet storm")
            heapq.heappop(self._queue)
            event.done = True
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            processed += 1
            self._dispatch(event)
        if until is not None and self.now < until:
            self.now = until
        if until_key is not None and self.now < until_key[0]:
            self.now = until_key[0]
        return processed

    def step(self) -> bool:
        """Run exactly the next event; False when idle.  The sequential
        shard driver steps the controller with this while segments hold
        at the controller's key."""
        event = self._pop()
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        self._dispatch(event)
        return True

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (guarding against runaways).
        Shim for the pre-shard API: equivalent to
        ``run(max_events=...)``."""
        return self.run(max_events=max_events)

    def _dispatch(self, event: _Event) -> None:
        """Run one event callback under its context, then drain its
        microtasks (including ones enqueued by other microtasks) under
        theirs."""
        tasks = self._microtasks
        self._in_event = True
        prev = self._current
        self._current = event.ctx
        self.current_event_key = (event.time, event.lp, event.lseq)
        try:
            event.fn()
            while tasks:
                fn, ctx = tasks.pop(0)
                self._current = ctx
                fn()
        finally:
            self._current = prev
            self._in_event = False
            self.current_event_key = None
            if tasks:
                del tasks[:]

    # -- scheduler state (the shard barrier's bookkeeping pair) ------------------

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when`` without processing events
        (it is an error to move it backwards).  The shard runner closes
        an idle segment's window with this instead of poking ``now``."""
        if when < self.now:
            raise ValueError(
                f"cannot advance clock backwards ({when} < {self.now})")
        self.now = when

    def snapshot(self) -> dict[str, float | int]:
        """The scheduler's position, as plain data.  Paired with
        :meth:`restore`; the shard barrier snapshots each segment at
        window close and diffs against the previous window to account
        events-per-window and horizon stalls."""
        return {"now": self.now,
                "events_processed": self.events_processed,
                "pending_events": self._live}

    def restore(self, snap: dict[str, float | int]) -> None:
        """Restore a :meth:`snapshot`'s clock and counters.  Pending
        events are untouched — this rewinds the scheduler's *position*
        (e.g. undoing an :meth:`advance_to` probe), not history."""
        self.now = float(snap["now"])
        self.events_processed = int(snap["events_processed"])

    @property
    def pending_events(self) -> int:
        """Live (not-yet-run, not-cancelled) events — O(1)."""
        return self._live

    def stats(self) -> dict[str, float]:
        """Scheduler health counters for a metrics snapshot.

        ``heap_size`` and ``cancelled_pending`` reflect the lazy-deletion
        machinery's physical state, which depends on per-queue compaction
        thresholds — an execution-strategy detail, so result records
        filter them (see :func:`repro.experiments.result
        .deterministic_metrics`)."""
        return {"now": self.now,
                "events_processed": self.events_processed,
                "pending_events": self._live,
                "cancelled_pending": self._cancelled,
                "heap_size": len(self._queue)}


class PeriodicTask:
    """A self-rescheduling event, e.g. an audio frame clock.

    Each task owns a scheduling context, so its ticks are attributed to
    it (not to whatever event happened to create it) and re-arming from
    inside a tick keeps drawing from the task's own counter."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[[], None], start: float | None = None,
                 until: float | None = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._until = until
        self._stopped = False
        self._handle: EventHandle | None = None
        self._ctx = sim.context("task")
        first_delay = 0.0 if start is None else max(0.0, start - sim.now)
        self._handle = sim.schedule(first_delay, self._tick,
                                    context=self._ctx)

    def _tick(self) -> None:
        if self._stopped:
            return
        if self._until is not None and self._sim.now > self._until:
            return
        self._fn()
        if not self._stopped:
            self._handle = self._sim.schedule(self._interval, self._tick,
                                              context=self._ctx)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()


class SerialResource:
    """A serial processing resource (e.g. a node's CPU).

    Work items run in submission order, each occupying the resource for
    its cost; with ``per_item_s == 0`` submission is immediate and
    synchronous.  Used to charge gateway nodes for per-packet ASP
    execution — the contention point of the paper's figure 8.
    """

    def __init__(self, sim: Simulator, per_item_s: float = 0.0):
        self._sim = sim
        self.per_item_s = per_item_s
        self._busy_until = 0.0
        self.items_processed = 0

    def submit(self, fn: Callable[[], None],
               cost_s: float | None = None) -> None:
        cost = self.per_item_s if cost_s is None else cost_s
        self.items_processed += 1
        if cost <= 0:
            fn()
            return
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + cost
        self._sim.at(self._busy_until, fn)

    @property
    def backlog_s(self) -> float:
        return max(0.0, self._busy_until - self._sim.now)
