"""Static IP routing tables.

The paper assumes routing tables without cycles (that assumption is what
makes global termination provable), so routes here are computed offline
from the topology graph by shortest path and never change mid-run —
except in fault-injection tests, which recompute after removing nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from .addresses import HostAddr

if TYPE_CHECKING:
    from .node import Interface, Node


class RoutingTable:
    """Maps destination host addresses to outgoing interfaces."""

    def __init__(self):
        self._routes: dict[HostAddr, "Interface"] = {}
        self._default: "Interface | None" = None

    def add_route(self, dst: HostAddr, iface: "Interface") -> None:
        self._routes[dst] = iface

    def set_default(self, iface: "Interface") -> None:
        self._default = iface

    @property
    def default(self) -> "Interface | None":
        return self._default

    def lookup(self, dst: HostAddr) -> "Interface | None":
        route = self._routes.get(dst)
        if route is not None:
            return route
        return self._default

    def remove_route(self, dst: HostAddr) -> None:
        self._routes.pop(dst, None)

    def __len__(self) -> int:
        return len(self._routes)

    def entries(self) -> dict[HostAddr, "Interface"]:
        return dict(self._routes)


def compute_routes(nodes: list["Node"]) -> None:
    """Fill every node's routing table with shortest-path routes.

    Builds the node adjacency graph from shared media, runs all-pairs
    shortest paths, and installs one host route per (node, destination
    address).  Deterministic: ties break on node name.

    Fault-aware: crashed nodes (``up == False``) and down media are
    excluded from the graph, so a recompute after an injected fault
    reconverges onto the surviving topology.  A default route installed
    by a topology builder (:meth:`RoutingTable.set_default`) is
    preserved across the recompute — or re-derived onto the node's
    first live interface if its old egress went down — rather than
    silently dropped with the rest of the table.
    """
    alive = [node for node in nodes if node.up]
    graph = nx.Graph()
    for node in alive:
        graph.add_node(node.name)
    by_name = {node.name: node for node in alive}

    # Adjacency: two live nodes sharing any up medium are neighbours.
    medium_members: dict[int, list] = {}
    for node in alive:
        for iface in node.interfaces:
            if getattr(iface.medium, "up", True):
                medium_members.setdefault(id(iface.medium),
                                          []).append(node)
    for members in medium_members.values():
        members = sorted(set(members), key=lambda n: n.name)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                graph.add_edge(a.name, b.name)

    paths = dict(nx.all_pairs_shortest_path(graph))

    for node in alive:
        node.routes = _recomputed_table(node, node.routes.default)
        for target in alive:
            if target is node:
                continue
            path = paths.get(node.name, {}).get(target.name)
            if path is None or len(path) < 2:
                continue
            next_hop = by_name[path[1]]
            iface = _iface_toward(node, next_hop)
            if iface is None:
                continue
            for addr in target.addresses:
                node.routes.add_route(addr, iface)


def _recomputed_table(node: "Node",
                      old_default: "Interface | None") -> RoutingTable:
    """A fresh table carrying over (or re-deriving) the default route."""
    table = RoutingTable()
    if old_default is None:
        return table
    if getattr(old_default.medium, "up", True):
        table.set_default(old_default)
        return table
    for iface in node.interfaces:
        if getattr(iface.medium, "up", True):
            table.set_default(iface)
            break
    return table


def _iface_toward(node: "Node", neighbor: "Node") -> "Interface | None":
    neighbor_media = {id(i.medium) for i in neighbor.interfaces
                      if getattr(i.medium, "up", True)}
    for iface in node.interfaces:
        if id(iface.medium) in neighbor_media:
            return iface
    return None
