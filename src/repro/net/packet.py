"""Packet model for the simulated network.

The PLAN-P system "does not require any changes to existing packet
formats" (paper §2): a packet is an ordinary IP datagram with an optional
transport header.  Packets sent on *user-defined* PLAN-P channels carry a
channel tag so the receiving PLAN-P layer can dispatch them; packets from
existing applications are untagged and match ``network`` channels by type.

Headers are immutable value objects; PLAN-P primitives such as
``ipDestSet`` perform functional update and return new headers, which
keeps the interpreter and the JIT referentially transparent.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field, replace

from .addresses import ANY_ADDR, HostAddr

#: IP protocol numbers, as in the real stack.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_RAW = 255

IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8

#: Default initial time-to-live.
DEFAULT_TTL = 64


@dataclass(frozen=True)
class IpHeader:
    """An IPv4-style header (the PLAN-P ``ip`` value)."""

    src: HostAddr = ANY_ADDR
    dst: HostAddr = ANY_ADDR
    ttl: int = DEFAULT_TTL
    proto: int = PROTO_RAW
    tos: int = 0

    def with_dst(self, dst: HostAddr) -> "IpHeader":
        return replace(self, dst=dst)

    def with_src(self, src: HostAddr) -> "IpHeader":
        return replace(self, src=src)

    def with_ttl(self, ttl: int) -> "IpHeader":
        return replace(self, ttl=ttl)

    def decremented(self) -> "IpHeader":
        """The header after one hop (ttl - 1)."""
        return replace(self, ttl=self.ttl - 1)

    def swapped(self) -> "IpHeader":
        """Source and destination exchanged — used when building replies."""
        return replace(self, src=self.dst, dst=self.src)


@dataclass(frozen=True)
class TcpHeader:
    """A TCP-style header (the PLAN-P ``tcp`` value)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    syn: bool = False
    fin: bool = False
    ack_flag: bool = False
    rst: bool = False
    window: int = 65535

    def with_dst_port(self, port: int) -> "TcpHeader":
        return replace(self, dst_port=port)

    def with_src_port(self, port: int) -> "TcpHeader":
        return replace(self, src_port=port)

    def swapped(self) -> "TcpHeader":
        return replace(self, src_port=self.dst_port, dst_port=self.src_port)

    @property
    def flags(self) -> int:
        """Flags packed as in a real header: FIN|SYN|RST|ACK bit positions."""
        return (int(self.fin) | (int(self.syn) << 1) | (int(self.rst) << 2)
                | (int(self.ack_flag) << 4))


@dataclass(frozen=True)
class UdpHeader:
    """A UDP-style header (the PLAN-P ``udp`` value)."""

    src_port: int = 0
    dst_port: int = 0

    def with_dst_port(self, port: int) -> "UdpHeader":
        return replace(self, dst_port=port)

    def with_src_port(self, port: int) -> "UdpHeader":
        return replace(self, src_port=port)

    def swapped(self) -> "UdpHeader":
        return replace(self, src_port=self.dst_port, dst_port=self.src_port)


_uid_counter = itertools.count(1)


@dataclass
class Packet:
    """The unit transmitted by the simulator.

    ``channel`` is the PLAN-P channel tag for packets sent on user-defined
    channels (``None`` for ordinary application traffic).  ``uid`` is a
    simulator-level trace id, fresh per packet object; copies made by
    packet duplication get fresh uids with the original recorded in
    ``copied_from``.
    """

    ip: IpHeader
    transport: TcpHeader | UdpHeader | None = None
    payload: bytes = b""
    channel: str | None = None
    uid: int = field(default_factory=lambda: next(_uid_counter))
    copied_from: int | None = None
    created_at: float = 0.0

    def __post_init__(self) -> None:
        expected = {TcpHeader: PROTO_TCP, UdpHeader: PROTO_UDP}
        if self.transport is not None:
            proto = expected[type(self.transport)]
            if self.ip.proto != proto:
                self.ip = replace(self.ip, proto=proto)

    @property
    def size(self) -> int:
        """Total on-the-wire size in bytes, headers included."""
        size = IP_HEADER_BYTES + len(self.payload)
        if isinstance(self.transport, TcpHeader):
            size += TCP_HEADER_BYTES
        elif isinstance(self.transport, UdpHeader):
            size += UDP_HEADER_BYTES
        return size

    def copy(self) -> "Packet":
        """A duplicate with a fresh uid (used by multicast and by ASPs)."""
        dup = dataclasses.replace(self, uid=next(_uid_counter),
                                  copied_from=self.uid)
        return dup

    def hop(self) -> "Packet":
        """The packet after traversing one router (ttl decremented)."""
        return dataclasses.replace(self, ip=self.ip.decremented())

    def __repr__(self) -> str:
        kind = type(self.transport).__name__ if self.transport else "raw"
        tag = f" chan={self.channel}" if self.channel else ""
        return (f"Packet#{self.uid}({self.ip.src}->{self.ip.dst} {kind} "
                f"{len(self.payload)}B{tag})")


def udp_packet(src: HostAddr, dst: HostAddr, src_port: int, dst_port: int,
               payload: bytes, channel: str | None = None) -> Packet:
    """Build a UDP datagram."""
    return Packet(ip=IpHeader(src=src, dst=dst, proto=PROTO_UDP),
                  transport=UdpHeader(src_port=src_port, dst_port=dst_port),
                  payload=payload, channel=channel)


def tcp_packet(src: HostAddr, dst: HostAddr, src_port: int, dst_port: int,
               payload: bytes = b"", *, seq: int = 0, ack: int = 0,
               syn: bool = False, fin: bool = False, ack_flag: bool = False,
               rst: bool = False, channel: str | None = None) -> Packet:
    """Build a TCP segment."""
    hdr = TcpHeader(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                    syn=syn, fin=fin, ack_flag=ack_flag, rst=rst)
    return Packet(ip=IpHeader(src=src, dst=dst, proto=PROTO_TCP),
                  transport=hdr, payload=payload, channel=channel)
