"""Transmission media: point-to-point links and shared segments.

Both media model store-and-forward transmission with a finite drop-tail
queue: a packet occupies the medium for its serialization delay
(size × 8 / bandwidth), then arrives after the propagation latency.
Random loss can be injected for failure tests.

``Segment`` models the shared Ethernet of the paper's figure 5: one
transmission queue (the medium is half-duplex) and broadcast delivery to
every other attached interface — which is what lets the load generator's
traffic crowd out the audio stream, and the MPEG capture ASP observe a
neighbour's video packets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .monitor import LinkStats, LoadMonitor
from .packet import Packet
from .sim import Simulator

if TYPE_CHECKING:
    from .node import Interface


class _TxQueue:
    """One transmission direction: serializer + bounded FIFO.

    Observability taps: ``send_taps`` fire when a packet starts
    transmission, ``drop_taps`` fire with a reason (``"down"``,
    ``"queue"``, ``"flush"``, ``"crash"``, ``"loss"``) whenever one is
    discarded.  Both lists are empty by default — the hot path pays one
    truthiness check.
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float,
                 latency: float, queue_limit: int,
                 deliver: Callable[[Packet, "Interface"], None],
                 loss_rate: float = 0.0, name: str = "txq"):
        self._sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.queue_limit = queue_limit
        self.loss_rate = loss_rate
        self.up = True
        self._deliver = deliver
        self._queue: list[tuple[Packet, "Interface"]] = []
        self._busy = False
        self.stats = LinkStats()
        self.monitor = LoadMonitor()
        self.send_taps: list[Callable[[Packet, "Interface"], None]] = []
        self.drop_taps: list[
            Callable[[Packet, "Interface", str], None]] = []
        #: this direction's scheduling context: transmission-complete
        #: and delivery events are attributed here, and loss draws come
        #: from its entropy stream — both per-queue, so keys and draws
        #: don't depend on other traffic (or on sharding)
        self.ctx = sim.context(name)
        #: cross-segment hook, installed by :mod:`repro.net.shard` when
        #: this queue's receiving end lives on a different segment
        #: simulator: called with ``(packet, sender, arrival, lp, lseq)``
        #: instead of scheduling the delivery locally.  The ``(lp,
        #: lseq)`` pair is drawn from :attr:`ctx` exactly as the local
        #: path would, so the far side can enqueue the delivery under
        #: the key a single-queue run would have used.
        self.boundary_emit: Callable[
            [Packet, "Interface", float, int, int], None] | None = None

    def _dropped(self, packet: Packet, sender: "Interface",
                 reason: str) -> None:
        self.stats.packets_dropped += 1
        self.stats.bytes_dropped += packet.size
        if self.drop_taps:
            for tap in self.drop_taps:
                tap(packet, sender, reason)

    def send(self, packet: Packet, sender: "Interface") -> None:
        if not self.up:
            self._dropped(packet, sender, "down")
            return
        if len(self._queue) >= self.queue_limit:
            self._dropped(packet, sender, "queue")
            return
        self._queue.append((packet, sender))
        if not self._busy:
            self._transmit_next()

    def clear(self) -> None:
        """Drop everything queued (the medium went down)."""
        for packet, sender in self._queue:
            self._dropped(packet, sender, "flush")
        self._queue.clear()

    def drop_from(self, sender: "Interface") -> None:
        """Drop queued packets submitted by ``sender`` (its node
        crashed; frames still in its NIC buffer never hit the wire)."""
        kept = []
        for packet, who in self._queue:
            if who is sender:
                self._dropped(packet, who, "crash")
            else:
                kept.append((packet, who))
        self._queue[:] = kept

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet, sender = self._queue.pop(0)
        tx_delay = packet.size * 8 / self.bandwidth_bps
        self.monitor.record(self._sim.now, packet.size)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.size
        if self.send_taps:
            for tap in self.send_taps:
                tap(packet, sender)

        def done() -> None:
            # Random loss models a noisy medium; it happens after the
            # medium was occupied (collisions still consume airtime).
            # A medium that went down mid-transmission loses the frame.
            if not self.up or (self.loss_rate > 0.0
                               and self.ctx.entropy.random()
                               < self.loss_rate):
                self.stats.packets_lost += 1
                self.stats.bytes_lost += packet.size
                if self.drop_taps:
                    for tap in self.drop_taps:
                        tap(packet, sender, "loss")
            elif self.boundary_emit is not None:
                self.boundary_emit(packet, sender,
                                   self._sim.now + self.latency,
                                   self.ctx.lp, self.ctx.next_lseq())
            else:
                self._sim.schedule(
                    self.latency,
                    lambda: self._deliver(packet, sender),
                    context=self.ctx)
            self._transmit_next()

        self._sim.schedule(tx_delay, done, context=self.ctx)

    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def load_kbps(self) -> int:
        return self.monitor.rate_kbps(self._sim.now)


class Link:
    """A full-duplex point-to-point link between exactly two interfaces."""

    def __init__(self, sim: Simulator, bandwidth_bps: float = 10_000_000,
                 latency: float = 0.0005, queue_limit: int = 64,
                 loss_rate: float = 0.0, name: str = ""):
        self._sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self._ifaces: list["Interface"] = []
        self._tx: dict[int, _TxQueue] = {}
        self._config = (bandwidth_bps, latency, queue_limit, loss_rate)

    def attach(self, iface: "Interface") -> None:
        if len(self._ifaces) >= 2:
            raise RuntimeError(f"link {self.name!r} already has two ends")
        self._ifaces.append(iface)
        bandwidth, latency, queue_limit, loss = self._config
        self._tx[id(iface)] = _TxQueue(
            self._sim, bandwidth, latency, queue_limit,
            self._deliver_from(iface), loss,
            name=f"tx:{self.name or 'link'}:{iface.node.name}")

    def _deliver_from(self, sender: "Interface"):
        def deliver(packet: Packet, _sender: "Interface") -> None:
            for iface in self._ifaces:
                if iface is not sender:
                    iface.receive(packet)

        return deliver

    def transmit(self, packet: Packet, sender: "Interface") -> None:
        self._tx[id(sender)].send(packet, sender)

    @property
    def up(self) -> bool:
        """Is the link carrying traffic?  Setting ``False`` flushes both
        transmission queues and drops everything sent until restored."""
        return all(tx.up for tx in self._tx.values())

    @up.setter
    def up(self, value: bool) -> None:
        for tx in self._tx.values():
            tx.up = value
            if not value:
                tx.clear()

    def other_end(self, iface: "Interface") -> "Interface":
        for other in self._ifaces:
            if other is not iface:
                return other
        raise RuntimeError("link has no other end attached")

    def deliver_opposite(self, sender: "Interface",
                         packet: Packet) -> None:
        """Deliver ``packet`` to the end(s) opposite ``sender`` — the
        receiving half of a transmission whose propagation crossed a
        segment boundary (see :mod:`repro.net.shard`)."""
        for iface in self._ifaces:
            if iface is not sender:
                iface.receive(packet)

    def tx_queue(self, sender: "Interface") -> _TxQueue:
        return self._tx[id(sender)]

    def add_send_tap(self,
                     tap: Callable[[Packet, "Interface"], None]) -> None:
        """Observe every packet starting transmission, either
        direction."""
        for tx in self._tx.values():
            tx.send_taps.append(tap)

    def add_drop_tap(self, tap: Callable[[Packet, "Interface", str],
                                         None]) -> None:
        """Observe every packet discarded on this link, either
        direction, with the drop reason."""
        for tx in self._tx.values():
            tx.drop_taps.append(tap)

    def stats_dict(self) -> dict[str, object]:
        """Both directions' counters summed, plus live queue state —
        the shape :meth:`MetricsRegistry.register` adapts."""
        out = {"packets_sent": 0, "bytes_sent": 0, "packets_dropped": 0,
               "bytes_dropped": 0, "packets_lost": 0, "bytes_lost": 0}
        queued = 0
        for tx in self._tx.values():
            for key in out:
                out[key] += getattr(tx.stats, key)
            queued += tx.queue_length()
        out["queued"] = queued
        out["up"] = self.up
        return out

    @property
    def interfaces(self) -> list["Interface"]:
        return list(self._ifaces)


class Segment:
    """A shared broadcast segment (the experiments' '10 Mbit Ethernet').

    Half-duplex: all transmissions serialize through one queue, so any
    attached station's traffic consumes the segment's capacity.  Every
    other attached interface receives each packet (receivers filter by
    address; ASPs may listen promiscuously).
    """

    def __init__(self, sim: Simulator, bandwidth_bps: float = 10_000_000,
                 latency: float = 0.0002, queue_limit: int = 128,
                 loss_rate: float = 0.0, name: str = ""):
        self._sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self._ifaces: list["Interface"] = []
        self._tx = _TxQueue(sim, bandwidth_bps, latency, queue_limit,
                            self._broadcast, loss_rate,
                            name=f"tx:{name or 'segment'}")

    def attach(self, iface: "Interface") -> None:
        self._ifaces.append(iface)

    def transmit(self, packet: Packet, sender: "Interface") -> None:
        self._tx.send(packet, sender)

    @property
    def up(self) -> bool:
        """Is the segment carrying traffic?  Setting ``False`` flushes
        the shared queue and drops everything sent until restored."""
        return self._tx.up

    @up.setter
    def up(self, value: bool) -> None:
        self._tx.up = value
        if not value:
            self._tx.clear()

    def _broadcast(self, packet: Packet, sender: "Interface") -> None:
        for iface in self._ifaces:
            if iface is not sender:
                iface.receive(packet)

    def tx_queue(self, sender: "Interface") -> _TxQueue:
        return self._tx

    def add_send_tap(self,
                     tap: Callable[[Packet, "Interface"], None]) -> None:
        self._tx.send_taps.append(tap)

    def add_drop_tap(self, tap: Callable[[Packet, "Interface", str],
                                         None]) -> None:
        self._tx.drop_taps.append(tap)

    def stats_dict(self) -> dict[str, object]:
        stats = self._tx.stats
        return {"packets_sent": stats.packets_sent,
                "bytes_sent": stats.bytes_sent,
                "packets_dropped": stats.packets_dropped,
                "bytes_dropped": stats.bytes_dropped,
                "packets_lost": stats.packets_lost,
                "bytes_lost": stats.bytes_lost,
                "queued": self._tx.queue_length(),
                "up": self.up}

    @property
    def stats(self) -> LinkStats:
        return self._tx.stats

    def load_kbps(self) -> int:
        return self._tx.load_kbps()

    @property
    def interfaces(self) -> list["Interface"]:
        return list(self._ifaces)


Medium = Link | Segment
