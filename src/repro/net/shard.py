"""Conservative-parallel sharded execution of one topology.

The discrete-event engine itself is single-threaded; this module is
what makes "web-scale" topologies tractable: the topology is
partitioned into **segments**, each owning its own
:class:`~repro.net.sim.Simulator`, and the segments advance through
synchronized **windows** bounded by a lower-bound-timestamp horizon —
classic conservative parallel DES with cross-segment link latency as
the lookahead (DESIGN.md §13).

The window protocol
-------------------

Let ``T_min`` be the earliest pending event across all segments (and
the controller), and ``L`` the minimum propagation latency over all
*cut* links (links whose two ends live in different segments; the
partition validator rejects cuts with zero latency, and shared
:class:`~repro.net.link.Segment` media may not be cut at all).  Every
event executed in the window ``[T_min, H)`` with ``H = T_min + L`` has
time ``>= T_min``, so any packet it pushes across a cut arrives at
``time + L_link >= T_min + L = H`` — never inside the current window.
Segments can therefore execute the window's events independently, in
any order or in parallel, and exchange the boundary crossings at the
barrier.

Byte-identical to serial
------------------------

Correct *parallel* simulation is the easy half; this runner also
reproduces the serial engine's execution **exactly** (the bar PR 4 set
for the parallel harness and PR 6 for batching).  That is what the
formalized scheduling contract in :mod:`repro.net.sim` buys: events are
totally ordered by ``(time, lp, lseq)`` keys that are a pure function
of (topology, seed), so a boundary crossing carries the key its sending
transmit-queue drew — computed on the sender's side of the cut exactly
as a single-queue run would have — and :meth:`Simulator.post` lands it
in the remote heap in precisely the position serial execution would
have popped it from.  The controller simulator (``net.sim``) interleaves
at full key precision: segments hold at each controller event's key,
the event runs, and the window resumes — so fault timelines observe and
mutate exactly the state they would have seen serially.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .link import Link, Segment
from .node import Node
from .packet import Packet
from .sim import BEFORE_ANY_LP, EventKey, Simulator

if TYPE_CHECKING:
    from .topology import Network


class ShardError(RuntimeError):
    """The requested partition cannot run conservatively."""


@dataclass(frozen=True)
class BoundaryMessage:
    """One packet crossing a cut link — the typed boundary protocol.

    Carries everything the receiving segment needs to replay the
    delivery exactly as serial execution would have: the cut link and
    sending node identify the delivery path; ``arrival`` is the
    absolute delivery time (send time + link latency); ``(lp, lseq)``
    is the event key the sender's transmit-queue context drew for the
    delivery.  All fields are plain data (the packet is dataclasses of
    frozen dataclasses and bytes), so messages pickle across process
    boundaries unchanged.
    """

    link: str
    sender_node: str
    src_segment: int
    dst_segment: int
    arrival: float
    lp: int
    lseq: int
    packet: Packet


@dataclass
class ShardPlan:
    """A validated partition of one topology."""

    segments: int
    #: node name → segment index, in construction order
    assignment: dict[str, int]
    #: the conservative lookahead: min propagation latency over cut
    #: links (``inf`` when nothing is cut — segments are independent)
    lookahead: float
    #: names of the cut links
    cross_links: list[str] = field(default_factory=list)

    def segment_of(self, node: "Node | str") -> int:
        name = node if isinstance(node, str) else node.name
        return self.assignment[name]


def default_shard_of(nodes: list[Node], segments: int) -> dict[str, int]:
    """Contiguous blocks in construction order — the default partition.
    Deterministic, so every worker process derives the same plan."""
    n = len(nodes)
    return {node.name: min(i * segments // n, segments - 1)
            for i, node in enumerate(nodes)}


def build_plan(net: "Network", segments: int,
               shard_of: Callable[[Node], int] | None = None) -> ShardPlan:
    """Partition ``net`` and validate that it can run conservatively.

    Rules (DESIGN §13): a shared :class:`Segment` medium is one
    collision domain and must live entirely inside one shard; only
    point-to-point :class:`Link` media may be cut, and every cut link
    must have strictly positive latency (it *is* the lookahead).
    """
    if segments < 1:
        raise ShardError(f"segments must be >= 1, got {segments}")
    if not net.nodes:
        raise ShardError("cannot shard an empty topology")
    if segments > len(net.nodes):
        raise ShardError(f"{segments} segments for {len(net.nodes)} "
                         f"node(s) — at least one segment would be "
                         f"empty")
    if shard_of is None:
        assignment = default_shard_of(net.nodes, segments)
    else:
        assignment = {}
        for node in net.nodes:
            seg = shard_of(node)
            if not 0 <= seg < segments:
                raise ShardError(
                    f"shard_of({node.name!r}) = {seg} out of range "
                    f"[0, {segments})")
            assignment[node.name] = seg

    cross: list[str] = []
    lookahead = float("inf")
    seen_names: set[str] = set()
    for medium in net.media:
        segs = {assignment[iface.node.name]
                for iface in medium.interfaces}
        if len(segs) <= 1:
            continue
        if isinstance(medium, Segment):
            raise ShardError(
                f"shared segment {medium.name!r} spans shards {sorted(segs)}"
                f" — a collision domain cannot be cut; keep its stations "
                f"in one shard")
        latency = medium._config[1]
        if latency <= 0.0:
            raise ShardError(
                f"cut link {medium.name!r} has zero latency — a cut link's"
                f" latency is the conservative lookahead and must be > 0")
        if medium.name in seen_names:
            raise ShardError(
                f"two cut links share the name {medium.name!r}; boundary "
                f"messages identify links by name — name them uniquely")
        seen_names.add(medium.name)
        cross.append(medium.name)
        lookahead = min(lookahead, latency)
    return ShardPlan(segments=segments, assignment=assignment,
                     lookahead=lookahead, cross_links=cross)


def run_window(net: "Network", sims: list[Simulator],
               until: float | None, until_key: EventKey | None,
               max_events: int | None = None) -> None:
    """Execute one conservative window over ``sims``, interleaving the
    controller at full key precision: the segments hold at each
    controller event's key, the controller event runs, repeat; then the
    segments drain to the window bound.  Shared by the in-process
    driver (all segments) and the process workers (their own segment).
    """
    ctrl = net.sim
    while True:
        ck = ctrl.next_event_key()
        if ck is None:
            break
        if until_key is not None and ck >= until_key:
            break
        if until is not None and ck[0] > until:
            break
        for s in sims:
            net._active_sim = s
            s.run(until_key=ck, max_events=max_events)
        net._active_sim = ctrl
        ctrl.step()
    for s in sims:
        net._active_sim = s
        s.run(until=until, until_key=until_key, max_events=max_events)
    net._active_sim = ctrl
    ctrl.run(until=until, until_key=until_key)


class ShardRunner:
    """Drives one partitioned network through the window protocol,
    round-robining the segment simulators in-process.

    (The in-process driver is what guarantees — and lets tests verify —
    byte-identical execution; :mod:`repro.net.shard_proc` runs the same
    protocol with one OS process per segment for wall-clock speedup on
    multi-core hosts.)
    """

    def __init__(self, net: "Network", plan: ShardPlan):
        self.net = net
        self.plan = plan
        k = plan.segments
        self.sims: list[Simulator] = [
            Simulator(seed=net.seed, lp_alloc=net._alloc_lp,
                      root=net.sim.root)
            for _ in range(k)]
        #: boundary messages awaiting the barrier
        self._outbox: list[BoundaryMessage] = []
        self.windows = 0
        self.horizon_stalls = [0] * k
        self.boundary_in = [0] * k
        self.boundary_out = [0] * k
        #: emit a ``shard-boundary`` obs event per crossing (off by
        #: default: tracing every crossing is too hot for benches)
        self.trace_boundary = False
        self._media_by_name = {m.name: m for m in net.media
                               if m.name in plan.cross_links}
        self._rewire()
        base = f"{net._sim_metric_name}.{net.name}"
        for i in range(k):
            net.obs.metrics.register(
                f"{base}.{i}", functools.partial(self._segment_stats, i))

    # -- construction ------------------------------------------------------------

    def _rewire(self) -> None:
        """Move every node and transmit queue onto its segment's
        simulator, and intercept cut-link deliveries into the boundary
        protocol."""
        plan, sims = self.plan, self.sims
        for node in self.net.nodes:
            node.sim = sims[plan.segment_of(node)]
        for medium in self.net.media:
            if isinstance(medium, Segment):
                ifaces = medium.interfaces
                if ifaces:
                    seg = plan.segment_of(ifaces[0].node)
                    medium._sim = sims[seg]
                    medium._tx._sim = sims[seg]
                continue
            for iface in medium.interfaces:
                txq = medium.tx_queue(iface)
                src = plan.segment_of(iface.node)
                txq._sim = sims[src]
                try:
                    other = medium.other_end(iface)
                except RuntimeError:
                    continue
                dst = plan.segment_of(other.node)
                if dst != src:
                    txq.boundary_emit = self._make_emit(
                        medium, iface, src, dst)

    def _make_emit(self, medium: Link, sender, src: int, dst: int):
        def emit(packet: Packet, _sender, arrival: float,
                 lp: int, lseq: int) -> None:
            self._outbox.append(BoundaryMessage(
                link=medium.name, sender_node=sender.node.name,
                src_segment=src, dst_segment=dst, arrival=arrival,
                lp=lp, lseq=lseq, packet=packet))
            self.boundary_out[src] += 1
            if self.trace_boundary:
                self.net.obs.events.emit(
                    "shard-boundary", link=medium.name,
                    src_segment=src, dst_segment=dst,
                    uid=packet.uid, arrival=round(arrival, 9))

        return emit

    # -- the barrier -------------------------------------------------------------

    def _flush_outbox(self) -> None:
        """Deliver buffered boundary messages into their destination
        segments' queues, under the sender-drawn event keys."""
        if not self._outbox:
            return
        msgs = self._outbox
        self._outbox = []
        msgs.sort(key=lambda m: (m.arrival, m.lp, m.lseq))
        for msg in msgs:
            self.inject(msg)

    def inject(self, msg: BoundaryMessage) -> None:
        """Enqueue one boundary delivery (also the entry point worker
        processes use for messages arriving over the wire)."""
        medium = self._media_by_name[msg.link]
        sender = next(i for i in medium.interfaces
                      if i.node.name == msg.sender_node)
        packet = msg.packet
        self.sims[msg.dst_segment].post(
            msg.arrival,
            lambda: medium.deliver_opposite(sender, packet),
            lp=msg.lp, lseq=msg.lseq)
        self.boundary_in[msg.dst_segment] += 1

    def _next_time(self) -> float | None:
        times = [t for t in
                 ([self.net.sim.next_event_time()]
                  + [s.next_event_time() for s in self.sims])
                 if t is not None]
        return min(times) if times else None

    def _run_window(self, until: float | None,
                    until_key: EventKey | None,
                    max_events: int | None) -> None:
        """One window over every segment (see :func:`run_window`),
        with horizon-stall accounting via the snapshot pair."""
        before = [s.snapshot() for s in self.sims]
        run_window(self.net, self.sims, until, until_key, max_events)
        for i, s in enumerate(self.sims):
            if s.snapshot()["events_processed"] \
                    == before[i]["events_processed"]:
                self.horizon_stalls[i] += 1
        self.windows += 1

    def run(self, until: float | None = None, *,
            max_events: int | None = None) -> None:
        """The :meth:`Simulator.run` contract, executed shard-wise."""
        while True:
            self._flush_outbox()
            t_min = self._next_time()
            if t_min is None or (until is not None and t_min > until):
                break
            horizon = t_min + self.plan.lookahead
            if until is not None and horizon > until:
                # Tail window: everything left is within the horizon,
                # so run straight to `until` (inclusive, matching the
                # serial contract).  Crossings emitted here arrive at
                # >= horizon > until; they are still enqueued (below)
                # so pending-event counts match serial exactly.
                self._run_window(until, None, max_events)
            else:
                self._run_window(None, (horizon, BEFORE_ANY_LP, 0),
                                 max_events)
        self._flush_outbox()
        if until is not None:
            for s in [self.net.sim] + self.sims:
                if s.now < until:
                    s.advance_to(until)
        self.net._active_sim = self.net.sim

    # -- observability ------------------------------------------------------------

    def _segment_stats(self, i: int) -> dict[str, float]:
        d = self.sims[i].stats()
        d["horizon_stalls"] = self.horizon_stalls[i]
        d["boundary_in"] = self.boundary_in[i]
        d["boundary_out"] = self.boundary_out[i]
        d["windows"] = self.windows
        return d

    def merged_sim_stats(self) -> dict[str, float]:
        """The canonical ``sim`` scope when sharded: one merged view
        whose deterministic fields (``now``, ``events_processed``,
        ``pending_events``) are byte-identical to what a serial run
        reports — every serial event runs exactly once on exactly one
        of these simulators."""
        sims = [self.net.sim] + self.sims
        return {"now": max(s.now for s in sims),
                "events_processed": sum(s.events_processed
                                        for s in sims),
                "pending_events": sum(s.pending_events for s in sims),
                "cancelled_pending": sum(s._cancelled for s in sims),
                "heap_size": sum(len(s._queue) for s in sims)}
