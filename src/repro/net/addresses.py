"""IPv4-style addresses for the simulated network.

Addresses are value objects shared by the network simulator and the
PLAN-P value domain (the PLAN-P ``host`` type is an address).  The module
has no other dependencies so that the language runtime can import it
without pulling in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class HostAddr:
    """An IPv4-style unicast or multicast address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"address out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "HostAddr":
        """Parse dotted-quad notation, e.g. ``131.254.60.81``."""
        groups = text.split(".")
        if len(groups) != 4:
            raise ValueError(f"malformed address {text!r}")
        value = 0
        for g in groups:
            n = int(g)
            if not 0 <= n <= 255:
                raise ValueError(f"address group out of range in {text!r}")
            value = (value << 8) | n
        return cls(value)

    @property
    def is_multicast(self) -> bool:
        """True for class-D addresses (224.0.0.0/4), used by IP multicast."""
        return (self.value >> 28) == 0xE

    @property
    def is_broadcast(self) -> bool:
        return self.value == 0xFFFFFFFF

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 255}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}"

    def __repr__(self) -> str:
        return f"HostAddr({self})"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, HostAddr):
            return NotImplemented
        return self.value < other.value


#: The unspecified address, used as a placeholder before binding.
ANY_ADDR = HostAddr(0)

#: Limited broadcast.
BROADCAST_ADDR = HostAddr(0xFFFFFFFF)


def addr(text_or_int: str | int) -> HostAddr:
    """Convenience constructor accepting dotted-quad text or a raw int."""
    if isinstance(text_or_int, int):
        return HostAddr(text_or_int)
    return HostAddr.parse(text_or_int)


class AddressAllocator:
    """Hands out unique host addresses within a /24-style prefix.

    Used by topology builders so tests and experiments get stable,
    readable addresses (10.0.<net>.<host>).  Subnet ids are 16-bit and
    roll into the second octet past 255 (10.<net-hi>.<net-lo>.<host>),
    so one allocator covers the sharded-core scale topologies — 10k+
    nodes means 10k+ point-to-point subnets.
    """

    def __init__(self, base: str | int = "10.0.0.0"):
        self._base = addr(base).value
        self._next_net = 0
        self._next_host: dict[int, int] = {}

    def new_subnet(self) -> int:
        """Reserve a fresh /16-addressable subnet id."""
        self._next_net += 1
        if self._next_net > 0xFFFF:
            raise RuntimeError("address allocator exhausted "
                               "(65535 subnets)")
        self._next_host[self._next_net] = 0
        return self._next_net

    def new_host(self, subnet: int) -> HostAddr:
        """Allocate the next host address in ``subnet``."""
        if subnet not in self._next_host:
            raise ValueError(f"unknown subnet {subnet}")
        self._next_host[subnet] += 1
        host_part = self._next_host[subnet]
        if host_part > 254:
            raise RuntimeError(f"subnet {subnet} exhausted")
        return HostAddr(self._base | (subnet << 8) | host_part)
