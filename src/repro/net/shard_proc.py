"""One-OS-process-per-segment execution of a sharded topology.

The in-process :class:`~repro.net.shard.ShardRunner` proves (and tests
verify) that sharded execution is byte-identical to serial; this module
runs the *same* window protocol with each segment in its own process,
which is what actually buys wall-clock speedup on multi-core hosts —
the 10k-node scale bench (``benchmarks/test_scale.py``) drives it.

Replicated construction
-----------------------

Workers do not receive a pickled topology.  Each worker imports a
**builder** (a ``"module:function"`` reference) and constructs the
*full* network itself — builders are deterministic functions of
``(params, seed, shard_segments)``, and the scheduling contract of
:mod:`repro.net.sim` makes every derived id (context lp, entropy
stream, address, route) a pure function of construction order, so all
workers agree on every key without exchanging any state.  A worker then
runs only its own segment's simulator; the other segments' queues hold
their setup events forever, untouched.

The controller simulator is likewise **replicated**: every worker runs
the full controller timeline inline (fault scripts mutate the worker's
full local topology copy, deterministically).  The one restriction this
imposes: controller events must only operate on topology state
(faults, routing) — a controller event that *injects traffic* into a
node another worker owns would strand those events in a queue that
never runs.  Use a traffic-owning node's own schedule for that.

The coordinator never simulates; it routes
:class:`~repro.net.shard.BoundaryMessage` batches between workers and
computes each window's horizon from the workers' reported
next-event times.

Merging results
---------------

Per-worker metric snapshots are merged back into one serial-comparable
view: a node's scope comes from its owner (fault counters are
replicated everywhere, traffic exists only at the owner); a link's
numeric counters are summed over the owners of its endpoints (each
direction's counters live with its sender, and are zero elsewhere);
``drops_total`` sums; controller-scope values come from worker 0
(identical everywhere by replication).  Wall-clock-style and per-worker
bookkeeping keys are left out — records built on these merges go
through :func:`repro.experiments.result.deterministic_metrics` like
any others.
"""

from __future__ import annotations

import importlib
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable

from .sim import BEFORE_ANY_LP
from .shard import BoundaryMessage, ShardError, run_window

#: keys that are per-worker bookkeeping, never merged
_UNMERGED_PREFIXES = ("events.", "sim", "deploy.")


def _resolve(ref: str) -> Callable:
    """Import ``"module:function"``."""
    module, _, name = ref.partition(":")
    if not module or not name:
        raise ShardError(f"builder reference {ref!r} is not "
                         f"'module:function'")
    fn = getattr(importlib.import_module(module), name, None)
    if fn is None:
        raise ShardError(f"{ref!r} does not resolve to a function")
    return fn


def _recv(conn):
    msg = conn.recv()
    if msg[0] == "error":
        raise ShardError(f"shard worker failed:\n{msg[1]}")
    return msg


@dataclass
class ShardProcReport:
    """What a process-sharded run produced."""

    segments: int
    windows: int
    #: one merged, serial-comparable metrics view (see module docstring)
    metrics: dict[str, Any]
    #: each worker's ``collect(net, owned_names)`` result, in segment
    #: order (callers merge domain-specifically — e.g. concatenate and
    #: key-sort delivery streams)
    collected: list[Any]
    #: per-segment (events_processed, horizon_stalls, boundary_in/out)
    segment_stats: list[dict[str, float]] = field(default_factory=list)


def _worker_main(conn, builder_ref: str, collect_ref: str | None,
                 params: dict, seed: int, segments: int,
                 worker: int) -> None:
    try:
        _worker_loop(conn, builder_ref, collect_ref, params, seed,
                     segments, worker)
    except Exception:  # surface worker crashes to the coordinator
        import traceback

        conn.send(("error", traceback.format_exc()))
        conn.close()


def _worker_loop(conn, builder_ref: str, collect_ref: str | None,
                 params: dict, seed: int, segments: int,
                 worker: int) -> None:
    builder = _resolve(builder_ref)
    net = builder(params=params, seed=seed, shard_segments=segments)
    runner = net._shard
    if runner is None or runner.plan.segments != segments:
        raise ShardError("builder must finalize the network with "
                         f"shard_segments={segments}")
    own = runner.sims[worker]
    ctrl = net.sim

    def next_time() -> float | None:
        times = [t for t in (ctrl.next_event_time(),
                             own.next_event_time()) if t is not None]
        return min(times) if times else None

    conn.send(("hello", runner.plan.lookahead, next_time()))
    while True:
        msg = conn.recv()
        if msg[0] == "window":
            _, until, until_key, inbound = msg
            for m in inbound:
                runner.inject(m)
            before = own.events_processed
            run_window(net, [own], until, until_key)
            if own.events_processed == before:
                runner.horizon_stalls[worker] += 1
            runner.windows += 1
            out = runner._outbox
            runner._outbox = []
            conn.send(("done", next_time(), out))
        elif msg[0] == "finish":
            _, until = msg
            if until is not None:
                for s in (ctrl, own):
                    if s.now < until:
                        s.advance_to(until)
            owned = {name for name, seg
                     in runner.plan.assignment.items() if seg == worker}
            collected = None
            if collect_ref is not None:
                collected = _resolve(collect_ref)(net, owned)
            conn.send(("result", {
                "metrics": net.metrics_snapshot(include_global=False),
                "collected": collected,
                "segment": runner._segment_stats(worker),
                "ctrl_events": ctrl.events_processed,
                "assignment": dict(runner.plan.assignment),
                "media_owners": {
                    m.name: sorted({runner.plan.segment_of(i.node)
                                    for i in m.interfaces})
                    for m in net.media},
            }))
            conn.close()
            return
        else:  # pragma: no cover - protocol error
            raise ShardError(f"unknown coordinator message {msg[0]!r}")


def _merge_metrics(fragments: list[dict[str, Any]],
                   assignment: dict[str, int],
                   media_owners: dict[str, list[int]],
                   ctrl_events: int,
                   segment_stats: list[dict[str, float]],
                   until: float | None) -> dict[str, Any]:
    merged: dict[str, Any] = {}
    keys = set()
    for frag in fragments:
        keys.update(frag)
    for key in sorted(keys):
        if key.startswith(_UNMERGED_PREFIXES):
            continue
        scope = key.split(".", 2)
        if scope[0] == "node" and len(scope) >= 3:
            owner = assignment.get(scope[1])
            if owner is not None:
                merged[key] = fragments[owner].get(key)
                continue
        if scope[0] == "link" and len(scope) >= 3:
            owners = media_owners.get(scope[1])
            if owners:
                values = [fragments[w].get(key) for w in owners]
                if key.endswith(".up"):
                    merged[key] = all(values)
                else:
                    merged[key] = sum(v for v in values
                                      if isinstance(v, (int, float)))
                continue
        if key == "drops_total":
            merged[key] = sum(frag.get(key, 0) for frag in fragments)
            continue
        # controller-scope values are replicated; any worker's will do
        merged[key] = fragments[0].get(key)
    # the merged scheduler view, mirroring ShardRunner.merged_sim_stats
    merged["sim.events_processed"] = ctrl_events + sum(
        int(s["events_processed"]) for s in segment_stats)
    merged["sim.pending_events"] = sum(
        int(s["pending_events"]) for s in segment_stats)
    if until is not None:
        merged["sim.now"] = float(until)
    return merged


def run_sharded_processes(builder: str, *, params: dict, seed: int,
                          segments: int, until: float,
                          collect: str | None = None) -> ShardProcReport:
    """Run ``builder``'s topology to ``until`` with one worker process
    per segment (see the module docstring for the contract).

    ``builder`` and ``collect`` are ``"module:function"`` references —
    workers import them, so they must be top-level functions.
    ``collect(net, owned_names)`` harvests whatever the caller needs
    from each worker's finished network (delivery streams, app state);
    its results come back per-segment in :attr:`ShardProcReport
    .collected`.
    """
    if segments < 1:
        raise ShardError("segments must be >= 1")
    if until is None:
        raise ShardError("process-sharded runs need an explicit until")
    ctx = multiprocessing.get_context("fork")
    conns, procs = [], []
    try:
        for w in range(segments):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, builder, collect, params, seed, segments,
                      w),
                daemon=True)
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        hellos = [_recv(conn) for conn in conns]
        lookahead = hellos[0][1]
        times: list[float | None] = [h[2] for h in hellos]
        buffered: list[BoundaryMessage] = []
        windows = 0
        while True:
            live = [t for t in times if t is not None]
            live += [m.arrival for m in buffered]
            t_min = min(live, default=None)
            if t_min is None or t_min > until:
                break
            horizon = t_min + lookahead
            if horizon > until:
                until_t, until_key = until, None
            else:
                until_t, until_key = None, (horizon, BEFORE_ANY_LP, 0)
            inbound: dict[int, list[BoundaryMessage]] = {}
            for m in buffered:
                inbound.setdefault(m.dst_segment, []).append(m)
            buffered = []
            for w, conn in enumerate(conns):
                conn.send(("window", until_t, until_key,
                           sorted(inbound.get(w, ()),
                                  key=lambda m: (m.arrival, m.lp,
                                                 m.lseq))))
            for w, conn in enumerate(conns):
                _, times[w], out = _recv(conn)
                buffered.extend(out)
            windows += 1
        for conn in conns:
            conn.send(("finish", until))
        results = [_recv(conn)[1] for conn in conns]
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hang guard
                proc.terminate()

    # ownership maps for the metric merge come from the workers
    # themselves (every worker derives the identical plan)
    fragments = [r["metrics"] for r in results]
    segment_stats = [r["segment"] for r in results]
    merged = _merge_metrics(fragments, results[0]["assignment"],
                            results[0]["media_owners"],
                            results[0]["ctrl_events"], segment_stats,
                            until)
    return ShardProcReport(
        segments=segments, windows=windows, metrics=merged,
        collected=[r["collected"] for r in results],
        segment_stats=segment_stats)
