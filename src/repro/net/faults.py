"""Controlled fault injection: link failures, node crashes, partitions.

The paper's deployment story (§2.1, §5) downloads ASPs into routers at
run time; any production-scale network of such routers crashes,
restarts, and sits behind lossy links.  :class:`FaultController` injects
exactly those failures into a :class:`~repro.net.topology.Network`, on a
scripted timeline if desired, and reconverges routing over the
surviving graph after every topology change — so experiments can drill
"link down during the broadcast" or "router crash mid-deploy" and still
be exactly reproducible under the simulator's seed.

Fault model:

* **Link/segment down** — the medium's ``up`` flag drops everything
  sent (and flushes its queues); frames mid-flight on the wire still
  arrive, frames mid-serialization are lost.
* **Node crash** — delivery stops, the node's NIC transmit buffers are
  flushed, and volatile state (the installed PLAN-P program and its
  engine) is lost.  Persistent state — a deployment service's install
  manifest — survives and is replayed on restart (see
  :class:`repro.runtime.netdeploy.DeploymentService`).
* **Partition** — every medium spanning two of the given node groups
  goes down; :meth:`FaultController.heal` restores exactly those media.

Every injected fault and recovery is appended to :attr:`FaultController.log`
as ``(sim_time, description)`` so drills are observable after the run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .link import Medium
from .routing import compute_routes

if TYPE_CHECKING:
    from .node import Node
    from .topology import Network


class _PoisonedEngine:
    """Engine proxy that fails every Nth invocation (fault drill).

    A per-node wrapper rather than a patch on the engine itself:
    compiled engines can be shared across nodes through the program
    cache, and poisoning one node must not poison its neighbors.
    """

    def __init__(self, inner, every: int):
        self.inner = inner
        self.every = max(1, every)
        self.calls = 0

    def initial_channel_state(self, decl, ctx):
        return self.inner.initial_channel_state(decl, ctx)

    def run_channel(self, decl, protocol_state, channel_state,
                    packet_value, ctx):
        self.calls += 1
        if self.calls % self.every == 0:
            from ..lang.errors import PlanPRuntimeError

            raise PlanPRuntimeError(
                f"poisoned ASP (drill): invocation {self.calls}")
        return self.inner.run_channel(decl, protocol_state,
                                      channel_state, packet_value, ctx)


class FaultController:
    """Injects faults into a network and reconverges routing."""

    def __init__(self, net: "Network"):
        self.net = net
        #: (sim_time, description) per injected fault / recovery
        self.log: list[tuple[float, str]] = []
        #: media taken down by :meth:`partition`, restored by :meth:`heal`
        self._partitioned: list[Medium] = []
        #: routing recomputations performed
        self.reconvergences = 0

    # -- link faults ------------------------------------------------------------

    def link_down(self, medium: Medium) -> None:
        """Take a link or segment down; traffic sent on it is dropped
        until :meth:`link_up`.  Routing reconverges around it."""
        if not medium.up:
            return
        medium.up = False
        self._note(f"link down {medium.name or id(medium)}")
        self.recompute_routes()

    def link_up(self, medium: Medium) -> None:
        """Restore a downed link or segment and reconverge routing."""
        if medium.up:
            return
        medium.up = True
        self._note(f"link up {medium.name or id(medium)}")
        self.recompute_routes()

    # -- node faults ------------------------------------------------------------

    def crash(self, node: "Node | str") -> None:
        """Crash a node (see :meth:`repro.net.node.Node.crash`) and
        route the survivors around it."""
        node = self._resolve(node)
        if not node.up:
            return
        node.crash()
        self._note(f"crash {node.name}")
        self.recompute_routes()

    def restart(self, node: "Node | str") -> None:
        """Restart a crashed node; its restart hooks run (services
        re-install from manifests) and routing reconverges to include
        it again."""
        node = self._resolve(node)
        if node.up:
            return
        node.restart()
        self._note(f"restart {node.name}")
        self.recompute_routes()

    # -- partitions -------------------------------------------------------------

    def partition(self, *groups: list["Node | str"]) -> list[Medium]:
        """Split the network: every medium attaching nodes from two
        different ``groups`` goes down.  Nodes not named in any group
        keep their connectivity.  Returns the media taken down."""
        index: dict[int, int] = {}
        for gi, group in enumerate(groups):
            for member in group:
                index[id(self._resolve(member))] = gi
        cut: list[Medium] = []
        for medium in self.net.media:
            sides = {index[id(iface.node)] for iface in medium.interfaces
                     if id(iface.node) in index}
            if len(sides) >= 2 and medium.up:
                medium.up = False
                cut.append(medium)
                self._partitioned.append(medium)
        self._note(f"partition cut {len(cut)} media")
        self.recompute_routes()
        return cut

    def heal(self) -> None:
        """Undo :meth:`partition`: restore exactly the media it cut."""
        restored = 0
        while self._partitioned:
            medium = self._partitioned.pop()
            if not medium.up:
                medium.up = True
                restored += 1
        self._note(f"heal restored {restored} media")
        self.recompute_routes()

    # -- ASP faults -------------------------------------------------------------

    def poison_asp(self, node: "Node | str", every: int = 3) -> None:
        """Corrupt a node's installed ASP: every ``every``-th channel
        invocation raises a runtime error (contained by the PLAN-P
        layer's fail-open path).  This is the drill primitive behind
        the poisoned-ASP chaos scenarios — it exercises error
        accounting, circuit breakers, and quarantine without needing a
        program that is *actually* wrong.  Undone by
        :meth:`unpoison_asp` (and implicitly by any reinstall, which
        replaces the engine)."""
        node = self._resolve(node)
        layer = node.planp
        if layer is None or layer.engine is None:
            raise ValueError(f"{node.name} has no installed ASP to poison")
        layer.engine = _PoisonedEngine(layer.engine, every)
        self._note(f"poison asp {node.name} every={every}")

    def unpoison_asp(self, node: "Node | str") -> None:
        """Restore a poisoned node's original engine."""
        node = self._resolve(node)
        layer = node.planp
        if layer is not None and isinstance(layer.engine, _PoisonedEngine):
            layer.engine = layer.engine.inner
            self._note(f"unpoison asp {node.name}")

    # -- scripting --------------------------------------------------------------

    def at(self, when: float, action: Callable, *args) -> None:
        """Schedule ``action(*args)`` at absolute simulated time
        ``when`` — the building block of scripted fault timelines::

            faults.at(2.0, faults.crash, "r1")
            faults.at(4.0, faults.restart, "r1")
        """
        self.net.sim.at(when, lambda: action(*args))

    def script(self, timeline: list[tuple]) -> None:
        """Schedule a whole drill: ``[(when, action, *args), ...]``."""
        for when, action, *args in timeline:
            self.at(when, action, *args)

    # -- internals --------------------------------------------------------------

    def recompute_routes(self) -> None:
        """Reconverge unicast routing over the surviving graph."""
        compute_routes(self.net.nodes)
        self.reconvergences += 1

    def _resolve(self, node: "Node | str") -> "Node":
        return self.net[node] if isinstance(node, str) else node

    def _note(self, text: str) -> None:
        self.log.append((self.net.sim.now, text))
        obs = getattr(self.net, "obs", None)
        if obs is not None:
            obs.events.emit("fault", detail=text)
            obs.metrics.counter("faults_total").inc()
