"""Overload-control building blocks (DESIGN §14).

Three mechanisms, shared by the endpoints and the deployment runtime:

* :class:`Backoff` — the jittered-exponential retry schedule netdeploy's
  ack/retransmit machinery always used, extracted so the HTTP client's
  retry policy draws from exactly the same mechanism.  The jitter draw
  is one ``entropy.random()`` per armed timer (the
  :meth:`~repro.net.sim.Simulator.jittered` formula), so a caller that
  feeds a per-entity entropy stream stays byte-identical under sharding.
* :class:`EwmaLoadEstimator` — an EWMA view over a
  :class:`~repro.net.monitor.LoadMonitor`, reporting utilization against
  a configured capacity with trip/clear hysteresis thresholds.
* :class:`AdmissionController` — AIMD admission: a token bucket whose
  fill rate is raised additively while the system is healthy and cut
  multiplicatively on every overload signal, the classic TCP-shaped
  response that keeps a shedding server at the knee of its capacity
  curve instead of oscillating between empty and collapsed.

All three are pure mechanisms: they own no node and schedule nothing —
callers inject clocks/entropy, which is what keeps them usable from
both serial and sharded simulations.
"""

from __future__ import annotations

import random

from .monitor import LoadMonitor

__all__ = ["AdmissionController", "Backoff", "EwmaLoadEstimator"]


class Backoff:
    """A jittered exponential backoff schedule.

    ``delay()`` returns the next timer value (one jitter draw from
    ``entropy`` per call); ``bump()`` doubles the base toward
    ``ceiling`` after a silent timeout; ``reset()`` restores the
    initial base on progress.  With ``entropy=None`` the delay is
    unjittered (deterministic), which unit tests use.
    """

    def __init__(self, *, initial: float, ceiling: float,
                 multiplier: float = 2.0, jitter: float = 0.5,
                 entropy: random.Random | None = None):
        if initial <= 0 or ceiling < initial:
            raise ValueError("need 0 < initial <= ceiling")
        if multiplier < 1.0:
            raise ValueError(f"multiplier {multiplier} would shrink")
        self.initial = initial
        self.ceiling = ceiling
        self.multiplier = multiplier
        self.jitter = jitter
        self.entropy = entropy
        self.current = initial
        self.attempts = 0

    def delay(self) -> float:
        """The next timer value: the current base, jittered."""
        base = self.current
        if self.entropy is not None and self.jitter > 0:
            return base * (1.0 + self.jitter
                           * (2.0 * self.entropy.random() - 1.0))
        return base

    def bump(self) -> None:
        """A timer fired with no progress: double toward the ceiling."""
        self.attempts += 1
        self.current = min(self.current * self.multiplier, self.ceiling)

    def reset(self) -> None:
        """Progress was made: restore the initial base."""
        self.current = self.initial
        self.attempts = 0


class EwmaLoadEstimator:
    """Utilization estimate over a :class:`LoadMonitor`'s EWMA rate.

    ``trip``/``clear`` are hysteresis thresholds on utilization (the
    audio ASP's high/low watermark pattern): :meth:`overloaded` flips
    to True above ``trip`` and back to False only below ``clear``.
    """

    def __init__(self, capacity_bps: float, *,
                 monitor: LoadMonitor | None = None,
                 trip: float = 0.9, clear: float = 0.7):
        if capacity_bps <= 0:
            raise ValueError(f"non-positive capacity {capacity_bps}")
        if not 0 <= clear <= trip:
            raise ValueError("need 0 <= clear <= trip")
        self.capacity_bps = capacity_bps
        self.monitor = monitor if monitor is not None else LoadMonitor()
        self.trip = trip
        self.clear = clear
        self._overloaded = False

    def record(self, now: float, nbytes: int) -> None:
        self.monitor.record(now, nbytes)

    def utilization(self, now: float | None = None) -> float:
        return self.monitor.ewma_rate(now) / self.capacity_bps

    def overloaded(self, now: float | None = None) -> bool:
        util = self.utilization(now)
        if self._overloaded:
            if util < self.clear:
                self._overloaded = False
        elif util > self.trip:
            self._overloaded = True
        return self._overloaded


class AdmissionController:
    """AIMD admission control over a token bucket.

    ``admit(now)`` spends one token when available.  The bucket refills
    at ``rate`` requests/second (capped at ``burst`` tokens);
    :meth:`on_overload` multiplies ``rate`` by ``decrease`` (floored),
    :meth:`on_healthy` adds ``increase`` (ceilinged) — additive
    increase, multiplicative decrease.
    """

    def __init__(self, *, rate: float = 100.0, floor: float = 1.0,
                 ceiling: float = 10_000.0, increase: float = 1.0,
                 decrease: float = 0.5, burst: float = 10.0):
        if not 0 < floor <= ceiling:
            raise ValueError("need 0 < floor <= ceiling")
        if not 0 < decrease < 1:
            raise ValueError(f"decrease {decrease} must be in (0, 1)")
        self.rate = min(max(rate, floor), ceiling)
        self.floor = floor
        self.ceiling = ceiling
        self.increase = increase
        self.decrease = decrease
        self.burst = burst
        self.admitted = 0
        self.refused = 0
        self._tokens = burst
        self._last: float | None = None

    def _refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last)
                               * self.rate)
        self._last = now

    def admit(self, now: float, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens at time ``now`` if available."""
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            self.admitted += 1
            return True
        self.refused += 1
        return False

    def on_overload(self) -> None:
        """An overload signal (queue overflow, deadline miss):
        multiplicative decrease."""
        self.rate = max(self.floor, self.rate * self.decrease)

    def on_healthy(self) -> None:
        """A healthy completion: additive increase."""
        self.rate = min(self.ceiling, self.rate + self.increase)

    def stats_dict(self) -> dict[str, float]:
        return {"rate": self.rate, "admitted": self.admitted,
                "refused": self.refused}
