"""The MPEG multipoint ASPs of paper §3.3.

Control plane of the (unmodified) point-to-point video server:

* client → server, TCP port ``MPEG_CTRL_PORT``: ``PLAY <file> <port>\\n``
* server → client, same connection: ``SETUP <file> <params...>\\n``,
  then the server streams video frames over UDP to the client's port.

The **monitor ASP** runs promiscuously on one machine of the segment.
It watches the control connections, recording per file who is receiving
the stream and the setup line needed to decode it.  Clients query it
over UDP (``QRY <file>`` to ``MONITOR_QUERY_PORT``); it answers to the
fixed client reply port with ``HIT <addr> <port> <setup>`` or ``MISS``.

The **capture ASP** runs promiscuously on each client.  The client
application registers interest in an existing stream by sending itself a
config datagram (``CAPTURE_CONFIG_PORT``, payload = target address +
port); afterwards the ASP picks the neighbour's video packets off the
segment and delivers them up the local stack.

The server is never modified, and the client modification is limited to
the extra query — exactly the paper's trade-off (§3.3 discusses why full
transparency would require TCP emulation in PLAN-P).
"""

from __future__ import annotations

MPEG_CTRL_PORT = 8000
MONITOR_QUERY_PORT = 9700
MONITOR_REPLY_PORT = 9800
CAPTURE_CONFIG_PORT = 9801


def mpeg_monitor_asp(*, ctrl_port: int = MPEG_CTRL_PORT,
                     query_port: int = MONITOR_QUERY_PORT,
                     reply_port: int = MONITOR_REPLY_PORT,
                     table_size: int = 256) -> str:
    """The connection-monitor program (161-line class of Figure 3).

    Protocol state is a single string table with prefixed keys:
    ``R:<file>`` → "<addr> <port>" (who receives the stream) and
    ``S:<file>`` → the recorded setup line.
    """
    return f"""\
-- Point-to-point to multipoint MPEG: the monitor ASP (paper 3.3).
-- Watches control connections to the video server and answers client
-- queries about streams that are already flowing on the segment.

val ctrlPort : int = {ctrl_port}
val qryPort : int = {query_port}
val replyPort : int = {reply_port}

-- Record an outgoing request: "PLAY <file> <port>" from a client.
-- The port is the line's last field, so split off the trailing newline.
fun recordPlay(ps : (string) hash_table, src : host, s : string) : unit =
  try
    let
      val file : string = strField(s, 1, " ")
      val port : string = strField(strField(s, 2, " "), 0, "\\n")
    in
      tableSet(ps, "R:" ^ file, hostToString(src) ^ " " ^ port)
    end
  handle _ => ()

-- Record the server's reply: "SETUP <file> <params...>".
fun recordSetup(ps : (string) hash_table, s : string) : unit =
  try
    let
      val file : string = strField(s, 1, " ")
    in
      tableSet(ps, "S:" ^ file, s)
    end
  handle _ => ()

fun answer(ps : (string) hash_table, file : string) : string =
  try
    if tableMem(ps, "R:" ^ file) andalso tableMem(ps, "S:" ^ file) then
      "HIT " ^ tableGet(ps, "R:" ^ file) ^ "\\n"
        ^ tableGet(ps, "S:" ^ file)
    else
      "MISS " ^ file
  handle _ => "MISS " ^ file

-- Channel 1: observe the TCP control traffic in passing.
channel network(ps : (string) hash_table, ss : unit, p : ip*tcp*string) is
  let
    val iph : ip = #1 p
    val tcp : tcp = #2 p
    val s : string = #3 p
  in
    (if tcpDst(tcp) = ctrlPort andalso strIndex(s, "PLAY ") = 0 then
       recordPlay(ps, ipSrc(iph), s)
     else if tcpSrc(tcp) = ctrlPort andalso strIndex(s, "SETUP ") = 0 then
       recordSetup(ps, s)
     else
       ();
     -- Pure observation: the packet continues on its way.
     OnRemote(network, p);
     (ps, ss))
  end

-- Channel 2: answer stream queries from clients.
channel network(ps : (string) hash_table, ss : int, p : ip*udp*string) is
  let
    val iph : ip = #1 p
    val udp : udp = #2 p
    val s : string = #3 p
  in
    if udpDst(udp) = qryPort andalso strIndex(s, "QRY ") = 0 then
      try
        let
          val file : string = strField(s, 1, " ")
          val reply : string = answer(ps, file)
        in
          (OnRemote(network,
                    (ipMk(thisHost(), ipSrc(iph)),
                     udpMk(qryPort, replyPort),
                     reply));
           (ps, ss + 1))
        end
      handle _ =>
        (OnRemote(network, p); (ps, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""


def mpeg_client_asp(*, config_port: int = CAPTURE_CONFIG_PORT,
                    table_size: int = 64) -> str:
    """The client capture program (53-line class of Figure 3)."""
    return f"""\
-- Point-to-point to multipoint MPEG: the capture ASP (paper 3.3).
-- After the application registers (addr, port) of an existing stream,
-- video packets addressed to that neighbour are delivered locally too.

val configPort : int = {config_port}

fun captureKey(addr : host, port : int) : string =
  hostToString(addr) ^ ":" ^ intToString(port)

-- Channel 1: capture registrations from the local application
-- (payload = target address + target port).
channel network(ps : (string) hash_table, ss : int,
                p : ip*udp*host*int) is
  let
    val udp : udp = #2 p
  in
    if udpDst(udp) = configPort then
      (tableSet(ps, captureKey(#3 p, #4 p), "on");
       deliver(p);
       (ps, ss + 1))
    else
      (OnRemote(network, p); (ps, ss))
  end

-- Channel 2: the video path.
channel network(ps : (string) hash_table, ss : int, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udp : udp = #2 p
  in
    if tableMem(ps, captureKey(ipDst(iph), udpDst(udp))) then
      -- a neighbour's stream we subscribed to: deliver a copy locally
      (deliver(p); (ps, ss + 1))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""
