"""The load-balancing HTTP gateway ASP of paper §3.2 (figure 2).

The gateway owns the *virtual server* address.  Incoming requests are
bound to a physical server when the TCP connection opens (SYN) and the
binding is recorded in a hash table so every later packet of the
connection reaches the same server; responses get their source rewritten
back to the virtual address.  The balancing strategy is the paper's
"modulo on the number of requests", selectable among several strategies
to support the strategy-evaluation claim.
"""

from __future__ import annotations

HTTP_PORT = 80

#: Strategies the gateway template can emit (paper §3.2 / §5: "several
#: load-balancing algorithms").  Each is an expression over the protocol
#: state ``ps`` (a request counter) and the request's TCP source port.
STRATEGIES = {
    # The paper's strategy: alternate per accepted connection.
    "modulo": "ps mod {n}",
    # Hash the client's ephemeral port: stateless, sticky per client port.
    "srchash": "tcpSrc(tcp) mod {n}",
    # Pseudo-random spread.
    "random": "random({n})",
}


def http_gateway_asp(virtual: str, servers: list[str], *,
                     http_port: int = HTTP_PORT,
                     strategy: str = "modulo",
                     table_size: int = 4096) -> str:
    """Generate the gateway program for a cluster.

    ``virtual`` and ``servers`` are dotted-quad addresses; re-generating
    with a different server list is how "the ASP can be easily changed so
    as to permit the addition/removal of a physical server".
    """
    if len(servers) < 1:
        raise ValueError("need at least one physical server")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"pick from {sorted(STRATEGIES)}")
    n = len(servers)
    pick = STRATEGIES[strategy].format(n=n)

    server_vals = "\n".join(
        f"val server{i} : host = {addr}" for i, addr in enumerate(servers))

    # A chain of if/else mapping the chosen index to a rewritten forward.
    forward = _forward_chain(n)
    response_guard = " orelse ".join(
        f"ipSrc(iph) = server{i}" for i in range(n))

    return f"""\
-- Extensible HTTP server with load balancing (paper 3.2, figure 2).
-- Strategy: {strategy}

val virtualServer : host = {virtual}
{server_vals}
val httpPort : int = {http_port}

fun pickServer(ps : int, tcp : tcp) : int = {pick}

channel network(ps : int, ss : (int) hash_table, p : ip*tcp*blob)
initstate mkTable({table_size}) is
  let
    val iph : ip = #1 p
    val tcp : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcp) = httpPort andalso ipDst(iph) = virtualServer then
      -- incoming HTTP traffic for the virtual server
      let
        val key : host*int = (ipSrc(iph), tcpSrc(tcp))
        val bound : int = tableGetDefault(ss, key, -1)
      in
        if bound = -1 then
          -- new connection: bind it to a physical server (and keep the
          -- binding even if the SYN is retransmitted)
          let
            val con : int = pickServer(ps, tcp)
          in
            (tableSet(ss, key, con);
             {forward};
             (ps + 1, ss))
          end
        else
          let
            val con : int = bound
          in
            ({forward};
             (ps, ss))
          end
      end
    else
      if tcpSrc(tcp) = httpPort andalso ({response_guard}) then
        -- server -> client: restore the virtual source address
        (OnRemote(network, (ipSrcSet(iph, virtualServer), tcp, body));
         (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
"""


def _forward_chain(n: int) -> str:
    """``if con = 0 then ... else if ... else OnRemote(server_{n-1})``."""
    if n == 1:
        return ("OnRemote(network, (ipDestSet(iph, server0), tcp, body))")
    parts: list[str] = []
    for i in range(n - 1):
        parts.append(f"if con = {i} then\n"
                     f"             OnRemote(network, "
                     f"(ipDestSet(iph, server{i}), tcp, body))\n"
                     f"           else ")
    parts.append(f"OnRemote(network, (ipDestSet(iph, server{n - 1}), "
                 f"tcp, body))")
    return "".join(parts)
