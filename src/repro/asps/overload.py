"""In-network load shedding ASPs (DESIGN §14).

Overload defense deployed *in the network*, at the gateway router in
front of the web cluster, in the spirit of the paper's router-resident
adaptations: the router sees the aggregate the endpoint cannot, and a
PLAN-P program small enough to verify can drop abusive traffic before
it consumes the server's CPU or the bottleneck link.

One combined program (a router runs a single ASP) covers both attack
shapes of the web overload drill:

* **SYN-flood filter** (client→server direction): a per-source budget
  of outstanding SYNs.  Every forwarded SYN increments the source's
  count; any non-SYN packet from that source — the ACK completing a
  real handshake, or request data — resets it to zero.  A flooder
  never completes a handshake, so after ``syn_budget`` leaked SYNs its
  address is blocked outright, while a well-behaved client's count
  never exceeds one for longer than a round trip.

* **Elephant-flow fair shedder** (server→client direction): a
  per-destination response-byte budget per ``window_ms`` of router
  time (``getTime()``).  A destination that pulls more than
  ``byte_budget`` bytes inside one window is blocked for ``block_ms``
  — its further response bytes dropped — stalling the elephant's
  transfer (and, through TCP, the client driving it) while small
  documents flow untouched.

All three per-flow cells live in one ``(int) hash_table`` keyed by
``host*int``: ``(src, 0)`` holds the outstanding-SYN count,
``(dst, 1)`` the byte accounting, ``(dst, 2)`` the block expiry (ms).
PLAN-P has no integer division, so the byte cell packs window identity
and usage into one integer: ``stored = window_id * PACK + used`` with
``used < PACK``, both recovered via ``mod``; a cell whose packed
window is stale reads as zero usage, so windows roll without any
sweep.

The program drops packets, so the delivery verifier rightly refuses
it: deploy through the privileged path (``verify=False, force=True``),
under lifecycle-manager protection so a misbehaving shedder trips the
circuit breaker and the router degrades to standard IP.
"""

from __future__ import annotations

HTTP_PORT = 80

#: Window/usage packing base for the byte-accounting cell.  Must exceed
#: any reachable ``used`` value: budget plus one full-size packet.
PACK = 16_777_216


def shedding_asp(*, http_port: int = HTTP_PORT, syn_budget: int = 4,
                 window_ms: int = 500, byte_budget: int = 400_000,
                 block_ms: int = 10_000,
                 table_size: int = 4096) -> str:
    """Generate the combined SYN-flood + elephant-shedder program."""
    if syn_budget < 1:
        raise ValueError("need syn_budget >= 1")
    if not 0 < byte_budget < PACK - 65_536:
        raise ValueError(f"byte_budget {byte_budget} must leave room "
                         f"for one packet below PACK={PACK}")
    if window_ms < 1 or block_ms < 1:
        raise ValueError("need window_ms >= 1 and block_ms >= 1")

    return f"""\
-- In-network load shedding: per-source SYN budget (client->server)
-- plus per-destination response-byte fair shedder (server->client).
-- Drops packets: requires privileged deployment (verify=False).

val httpPort : int = {http_port}
val synBudget : int = {syn_budget}
val windowMs : int = {window_ms}
val byteBudget : int = {byte_budget}
val blockMs : int = {block_ms}
val pack : int = {PACK}

channel network(ps : int, ss : (int) hash_table, p : ip*tcp*blob)
initstate mkTable({table_size}) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = httpPort then
      -- client -> server: the SYN-flood filter
      let
        val src : host*int = (ipSrc(iph), 0)
      in
        if tcpSyn(tcph) then
          let
            val pending : int = tableGetDefault(ss, src, 0)
          in
            if pending < synBudget then
              (tableSet(ss, src, pending + 1);
               OnRemote(network, p);
               (ps, ss))
            else
              -- budget exhausted and never forgiven by a completed
              -- handshake: this source floods; shed it
              (drop(p); (ps, ss))
          end
        else
          -- a live connection: the handshake completed, so this
          -- source is real; forgive its outstanding-SYN count
          (tableSet(ss, src, 0); OnRemote(network, p); (ps, ss))
      end
    else
      if tcpSrc(tcph) = httpPort then
        -- server -> client: the elephant-flow fair shedder
        let
          val key : host*int = (ipDst(iph), 1)
          val bkey : host*int = (ipDst(iph), 2)
          val t : int = getTime()
          val winId : int = t - (t mod windowMs)
          val blockedUntil : int = tableGetDefault(ss, bkey, 0)
        in
          if t < blockedUntil then
            -- still serving its sentence: starve the flow out
            (drop(p); (ps, ss))
          else
            let
              val stored : int = tableGetDefault(ss, key, 0)
              val used0 : int = stored mod pack
              -- this window's packed id (no div: subtract the mod)
              val epoch : int = winId * pack
              val used : int =
                if stored - used0 = epoch then used0 else 0
              val newUsed : int = used + blobLen(body)
            in
              if newUsed > byteBudget then
                -- over its fair share of response bytes this window:
                -- block the destination, stall the elephant
                (tableSet(ss, bkey, t + blockMs);
                 drop(p);
                 (ps, ss))
              else
                (tableSet(ss, key, epoch + newUsed);
                 OnRemote(network, p);
                 (ps + 1, ss))
            end
        end
      else
        (OnRemote(network, p); (ps, ss))
  end
"""
