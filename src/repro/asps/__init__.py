"""The Application-Specific Protocols of the paper's experiments.

Five PLAN-P programs, matching the lineup of Figure 3:

=====================  =============================================
``audio_router_asp``   bandwidth adaptation in routers      (§3.1)
``audio_client_asp``   format restoration at audio clients  (§3.1)
``http_gateway_asp``   load-balancing virtual HTTP server   (§3.2)
``mpeg_monitor_asp``   connection monitor / query responder (§3.3)
``mpeg_client_asp``    packet capture at MPEG clients       (§3.3)
=====================  =============================================

Each is a template function returning PLAN-P source specialised with the
deployment's addresses and policy parameters — the paper's point that
ASPs "can be easily modified to reflect a change in the number [of]
physical servers or the topology" is literally this parameterisation.
"""

from .audio import (AUDIO_PORT, FMT_MONO16, FMT_MONO8, FMT_STEREO16,
                    audio_client_asp, audio_router_asp)
from .filters import (content_filter_asp, firewall_asp,
                      link_compressor_asp, link_decompressor_asp)
from .http import HTTP_PORT, http_gateway_asp
from .images import IMAGE_PORT, image_distiller_asp
from .mpeg import (CAPTURE_CONFIG_PORT, MONITOR_QUERY_PORT,
                   MONITOR_REPLY_PORT, MPEG_CTRL_PORT, mpeg_client_asp,
                   mpeg_monitor_asp)
from .overload import shedding_asp

__all__ = [
    "AUDIO_PORT",
    "CAPTURE_CONFIG_PORT",
    "FMT_MONO16",
    "FMT_MONO8",
    "FMT_STEREO16",
    "HTTP_PORT",
    "IMAGE_PORT",
    "MONITOR_QUERY_PORT",
    "MONITOR_REPLY_PORT",
    "MPEG_CTRL_PORT",
    "audio_client_asp",
    "audio_router_asp",
    "content_filter_asp",
    "firewall_asp",
    "link_compressor_asp",
    "link_decompressor_asp",
    "http_gateway_asp",
    "image_distiller_asp",
    "mpeg_client_asp",
    "mpeg_monitor_asp",
    "shedding_asp",
]
