"""The image-distillation ASP (paper §5, implemented future work).

Runs on the router where a fast network meets a slow access link.
Image responses heading down a link below ``slow_kbps`` are distilled —
repeatedly downscaled until they fit ``budget_bytes`` — so the fetch
completes in a fraction of the time at reduced fidelity.  Everything
else passes through untouched.
"""

from __future__ import annotations

IMAGE_PORT = 8800


def image_distiller_asp(*, image_port: int = IMAGE_PORT,
                        slow_kbps: int = 500,
                        budget_bytes: int = 3000,
                        quantize_bits: int = 0) -> str:
    """Generate the distiller.  ``quantize_bits`` > 0 additionally
    reduces the bit depth before size distillation (a second policy to
    experiment with, in the spirit of §3.1's strategy shopping)."""
    if quantize_bits:
        prepare = f"imgQuantize(body, {quantize_bits})"
    else:
        prepare = "body"
    return f"""\
-- Image distillation over low-bandwidth links (paper section 5).

val imgPort : int = {image_port}
val slowKbps : int = {slow_kbps}
val budget : int = {budget_bytes}

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udp : udp = #2 p
    val body : blob = #3 p
  in
    if udpSrc(udp) = imgPort andalso imgIs(body) then
      -- an image response: distill if it is about to cross a slow link
      if linkBandwidth(ipDst(iph)) < slowKbps then
        try
          (OnRemote(network, (iph, udp, imgDistill({prepare}, budget)));
           (ps + 1, ss))
        handle _ =>
          (OnRemote(network, p); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""
