"""Data-filtering, string-matching and compression ASPs (paper §1).

The introduction's list of ASP operations — "(un-)compression, data
filtering, string matching" — as three deployable programs:

* :func:`link_compressor_asp` / :func:`link_decompressor_asp` — a
  transparent compression tunnel for one UDP port across a slow link;
* :func:`content_filter_asp` — string matching over HTTP requests,
  redirecting matches to a policy server (passes all four analyses:
  filtered traffic is *redirected*, never silently dropped);
* :func:`firewall_asp` — a port blocklist that genuinely drops packets,
  and therefore **cannot pass the delivery analysis**: deploying it
  requires the authenticated-privileged path (``verify=False``), the
  paper's own escape hatch for legitimate-but-unprovable protocols.
"""

from __future__ import annotations


def link_compressor_asp(*, app_port: int, min_bytes: int = 96) -> str:
    """Compress large UDP payloads for one application port."""
    return f"""\
-- Link compression, sending side (paper section 1's "(un-)compression").

val appPort : int = {app_port}
val minBytes : int = {min_bytes}

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val body : blob = #3 p
  in
    if udpDst(#2 p) = appPort andalso blobLen(body) > minBytes
       andalso not blobIsCompressed(body) then
      (OnRemote(network, (#1 p, #2 p, blobCompress(body)));
       (ps + 1, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""


def link_decompressor_asp(*, app_port: int) -> str:
    """Restore compressed payloads on the receiving side."""
    return f"""\
-- Link compression, receiving side.

val appPort : int = {app_port}

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val body : blob = #3 p
  in
    if udpDst(#2 p) = appPort andalso blobIsCompressed(body) then
      try
        (OnRemote(network, (#1 p, #2 p, blobDecompress(body)));
         (ps + 1, ss))
      handle _ =>
        (OnRemote(network, p); (ps, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""


def content_filter_asp(pattern: str, policy_server: str, *,
                       http_port: int = 80) -> str:
    """Redirect HTTP requests whose payload contains ``pattern`` to a
    policy server (string matching without dropping)."""
    escaped = pattern.replace("\\", "\\\\").replace('"', '\\"')
    return f"""\
-- Content filter: string matching over requests (paper section 1).

val httpPort : int = {http_port}
val policyServer : host = {policy_server}

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  let
    val body : blob = #3 p
  in
    if tcpDst(#2 p) = httpPort
       andalso blobIndex(body, "{escaped}") >= 0 then
      -- matched: steer the whole connection to the policy server
      (OnRemote(network, (ipDestSet(#1 p, policyServer), #2 p, body));
       (ps + 1, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""


def firewall_asp(blocked_ports: list[int]) -> str:
    """Drop inbound traffic to the blocked TCP ports.

    Intentionally fails the delivery analysis (it drops packets); the
    run-time accepts it only via privileged deployment.
    """
    if not blocked_ports:
        raise ValueError("need at least one blocked port")
    condition = " orelse ".join(f"tcpDst(#2 p) = {port}"
                                for port in blocked_ports)
    return f"""\
-- A port-blocklist firewall (requires privileged deployment: the
-- delivery analysis rightly refuses programs that drop packets).

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  if {condition} then
    (drop(p); (ps + 1, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
