"""The audio-broadcast ASPs of paper §3.1.

Wire format of an audio datagram (UDP, ``AUDIO_PORT``):

    byte 0      format tag: 0 = 16-bit stereo, 1 = 16-bit mono,
                            2 = 8-bit monaural
    bytes 1..4  frame sequence number (big-endian)
    bytes 5..   PCM samples (signed 16-bit LE, or unsigned 8-bit)

The router program measures the outgoing link locally (``linkLoad``) and
degrades the stream when headroom shrinks; the client program restores
degraded frames to 16-bit stereo so the unmodified audio application
keeps working.  The three quality levels consume bandwidth in the 4:2:1
ratio of the paper's figure 6 (176 / 88 / 44 kbit/s).
"""

from __future__ import annotations

AUDIO_PORT = 7000

FMT_STEREO16 = 0
FMT_MONO16 = 1
FMT_MONO8 = 2

#: Bytes of per-frame header (format tag + sequence number).
FRAME_HEADER_BYTES = 5


def audio_router_asp(*, audio_port: int = AUDIO_PORT,
                     headroom_low_kbps: int = 600,
                     headroom_mid_kbps: int = 1600) -> str:
    """The router adaptation program (68-line class of Figure 3).

    ``headroom_low_kbps``/``headroom_mid_kbps`` are the policy knobs the
    paper's "quickly test new strategies" claim is about: spare segment
    capacity below *low* forces 8-bit mono, below *mid* 16-bit mono.
    """
    return f"""\
-- Audio broadcasting: bandwidth adaptation in the router (paper 3.1).
-- Degrades the audio stream when the outgoing segment gets loaded;
-- measurement is local, so adaptation is immediate (no feedback loop).

val audioPort : int = {audio_port}
val headLow : int = {headroom_low_kbps}   -- kbit/s spare => 8-bit mono
val headMid : int = {headroom_mid_kbps}   -- kbit/s spare => 16-bit mono

fun targetFmt(headroom : int) : int =
  if headroom < headLow then 2
  else if headroom < headMid then 1
  else 0

fun degrade(pcm : blob, fromFmt : int, toFmt : int) : blob =
  if fromFmt = 0 andalso toFmt = 1 then
    audioStereoToMono(pcm)
  else if fromFmt = 0 andalso toFmt = 2 then
    audio16to8(audioStereoToMono(pcm))
  else if fromFmt = 1 andalso toFmt = 2 then
    audio16to8(pcm)
  else
    pcm

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udp : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udp) = audioPort then
      try
        let
          val group : host = ipDst(iph)
          val headroom : int = linkBandwidth(group) - linkLoad(group)
          val fmt : int = blobByte(body, 0)
          val want : int = targetFmt(headroom)
          val out : int = if want < fmt then fmt else want
        in
          if out = fmt then
            -- quality already at (or below) the target: pass through
            (OnRemote(network, p); (ps, ss))
          else
            let
              val hdr : blob = blobWithByte(blobSub(body, 0, 5), 0, out)
              val pcm : blob = blobSub(body, 5, blobLen(body) - 5)
            in
              (OnRemote(network,
                        (iph, udp, blobCat(hdr, degrade(pcm, fmt, out))));
               (ps + 1, ss))
            end
        end
      handle _ =>
        -- malformed frame: forward untouched rather than lose it
        (OnRemote(network, p); (ps, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""


def audio_client_asp(*, audio_port: int = AUDIO_PORT) -> str:
    """The client restoration program (28-line class of Figure 3).

    Runs on the audio client host; transforms degraded frames back to
    16-bit stereo before delivery so the application needs no change.
    """
    return f"""\
-- Audio broadcasting: format restoration at the client (paper 3.1).

val audioPort : int = {audio_port}

fun restore(pcm : blob, fmt : int) : blob =
  if fmt = 2 then audioMonoToStereo(audio8to16(pcm))
  else if fmt = 1 then audioMonoToStereo(pcm)
  else pcm

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val udp : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udp) = audioPort then
      try
        let
          val fmt : int = blobByte(body, 0)
          val hdr : blob = blobWithByte(blobSub(body, 0, 5), 0, 0)
          val pcm : blob = blobSub(body, 5, blobLen(body) - 5)
        in
          (deliver((#1 p, udp, blobCat(hdr, restore(pcm, fmt))));
           (ps + 1, ss))
        end
      handle _ =>
        (deliver(p); (ps, ss))
    else
      (OnRemote(network, p); (ps, ss))
  end
"""
