"""Command-line tooling for the PLAN-P toolchain."""
