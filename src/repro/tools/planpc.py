"""``planpc`` — the PLAN-P command-line front end.

The developer-facing face of the toolchain (the paper's workflow of
writing, checking and shipping ASPs, §2):

    python -m repro.tools.planpc check  program.planp
    python -m repro.tools.planpc verify program.planp
    python -m repro.tools.planpc compile program.planp --backend source
    python -m repro.tools.planpc fmt    program.planp
    python -m repro.tools.planpc bench  program.planp

* ``check``   — parse and type check; report the channels found.
* ``verify``  — run the four safety analyses, print the report,
  exit 1 on rejection.
* ``compile`` — time JIT code generation; with the source backend,
  ``--emit`` prints the generated Python.
* ``fmt``     — re-print the program from its AST (canonical form).
* ``bench``   — measure per-invocation cost of every execution engine
  on synthetic packets matching the first network channel.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..analysis.verifier import verify_report
from ..interp.context import RecordingContext
from ..interp.values import default_value
from ..jit.pipeline import count_source_lines, make_engine
from ..lang import PlanPError, parse, typecheck
from ..lang.unparse import unparse
from ..runtime import codec


def _load(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_check(args: argparse.Namespace) -> int:
    source = _load(args.program)
    info = typecheck(parse(source, args.program))
    print(f"{args.program}: OK ({count_source_lines(source)} lines)")
    for name, overloads in info.channels.items():
        for decl in overloads:
            print(f"  channel {name}({decl.protocol_state_type}, "
                  f"{decl.channel_state_type}, {decl.packet_type})")
    for name in info.funs:
        print(f"  fun {name}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    info = typecheck(parse(_load(args.program), args.program))
    report = verify_report(info)
    print(report.summary())
    if report.passed:
        print(f"{args.program}: ACCEPTED")
        return 0
    print(f"{args.program}: REJECTED")
    return 1


def cmd_compile(args: argparse.Namespace) -> int:
    info = typecheck(parse(_load(args.program), args.program))
    start = time.perf_counter()
    engine = make_engine(info, args.backend, RecordingContext())
    elapsed = (time.perf_counter() - start) * 1000
    print(f"{args.program}: compiled with {args.backend} backend in "
          f"{elapsed:.2f} ms")
    if args.emit:
        generated = getattr(engine, "generated_source", None)
        if generated is None:
            print("(--emit requires --backend source)", file=sys.stderr)
            return 2
        print(generated)
    return 0


def cmd_fmt(args: argparse.Namespace) -> int:
    program = parse(_load(args.program), args.program)
    sys.stdout.write(unparse(program))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from ..net.packet import IpHeader, TcpHeader, UdpHeader
    from ..lang import types as T

    info = typecheck(parse(_load(args.program), args.program))
    decl = info.channel_overloads("network")[0] if \
        info.channel_overloads("network") else info.all_channels()[0]
    transport_type, views = codec.packet_views(decl.packet_type)  # type: ignore[arg-type]
    transport = TcpHeader(dst_port=80) if transport_type == T.TCP \
        else UdpHeader(dst_port=80) if transport_type == T.UDP else None
    parts: list[object] = [IpHeader()]
    if transport is not None:
        parts.append(transport)
    for view in views:
        parts.append(default_value(view))
    packet = tuple(parts)

    class _Null(RecordingContext):
        def emit_remote(self, channel, packet_value):
            pass

    print(f"{args.program}: {args.n} invocations per engine")
    for backend in ("interpreter", "closure", "source"):
        ctx = _Null()
        engine = make_engine(info, backend, ctx)
        ps = default_value(decl.protocol_state_type)
        ss = engine.initial_channel_state(decl, ctx)
        start = time.perf_counter()
        for _ in range(args.n):
            ps, ss = engine.run_channel(decl, ps, ss, packet, ctx)
        elapsed = time.perf_counter() - start
        print(f"  {backend:12s} {elapsed / args.n * 1e6:8.2f} us/pkt")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="planpc", description="PLAN-P toolchain front end")
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="parse and type check")
    p_check.add_argument("program")
    p_check.set_defaults(fn=cmd_check)

    p_verify = sub.add_parser("verify", help="run the safety analyses")
    p_verify.add_argument("program")
    p_verify.set_defaults(fn=cmd_verify)

    p_compile = sub.add_parser("compile", help="JIT compile")
    p_compile.add_argument("program")
    p_compile.add_argument("--backend", default="closure",
                           choices=("interpreter", "closure", "source"))
    p_compile.add_argument("--emit", action="store_true",
                           help="print generated Python (source backend)")
    p_compile.set_defaults(fn=cmd_compile)

    p_fmt = sub.add_parser("fmt", help="canonical re-print")
    p_fmt.add_argument("program")
    p_fmt.set_defaults(fn=cmd_fmt)

    p_bench = sub.add_parser("bench", help="engine microbenchmark")
    p_bench.add_argument("program")
    p_bench.add_argument("-n", type=int, default=10_000)
    p_bench.set_defaults(fn=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as err:
        print(f"planpc: {err}", file=sys.stderr)
        return 2
    except PlanPError as err:
        print(f"planpc: {args.program}: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
