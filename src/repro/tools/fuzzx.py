"""``fuzzx`` — the differential fuzzing CLI.

    python -m repro.tools.fuzzx run --budget 60 --seed 7
    python -m repro.tools.fuzzx run --budget 0 --min-pairs 500 \\
        --out tests/fuzz/corpus --json report.json
    python -m repro.tools.fuzzx pairs --budget 60 --seed 7
    python -m repro.tools.fuzzx replay tests/fuzz/corpus/case.json
    python -m repro.tools.fuzzx replay tests/fuzz/corpus/wire/case.json
    python -m repro.tools.fuzzx replay --minimize failing-case.json

``run`` executes a bounded-time campaign: seeded program generation,
adversarial streams, and the full engine×mode differential oracle.
It prints a JSON report and exits non-zero iff any divergence (or
containment leak) was found — the CI smoke step is exactly
``fuzzx run --budget 60 --seed $RUN_ID`` with the exit code as the
verdict.  Findings are minimized and written as replayable case files
under ``--out``.

``pairs`` runs the wire-compatibility validation campaign: pairs of
program generations related by a channel-signature mutation, the
static :func:`repro.analysis.wire.check_compatible` verdict checked
against an actual packet exchange.  It exits non-zero iff any false
accept was found — the rollout gate trusting a checker that would
have waved a protocol break through.

``replay`` re-runs committed case files through the matching oracle,
dispatching on the case file's ``kind`` (engine-divergence cases and
wire-compatibility cases share the corpus).  A healthy corpus case
passes (the bug it captured is fixed and stays fixed); a failing
replay prints the detail and exits 1.  With ``--minimize`` a
still-failing case is shrunk further in place.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..fuzz import (WIRE_CASE_KIND, load_case, load_wire_case,
                    minimize_case, run_campaign, run_case,
                    run_pair_campaign, run_wire_case, save_case)
from ..fuzz.oracle import DEFAULT_BACKENDS


def _parse_backends(text: str | None):
    if not text:
        return DEFAULT_BACKENDS
    backends = tuple(b.strip() for b in text.split(",") if b.strip())
    for b in backends:
        if b not in DEFAULT_BACKENDS:
            raise SystemExit(
                f"unknown backend {b!r} (choose from "
                f"{', '.join(DEFAULT_BACKENDS)})")
    return backends


def cmd_run(args: argparse.Namespace) -> int:
    report = run_campaign(
        args.seed, budget_s=args.budget, min_pairs=args.min_pairs,
        max_pairs=args.max_pairs,
        streams_per_program=args.streams_per_program,
        stream_len=args.stream_len, batch_size=args.batch_size,
        backends=_parse_backends(args.backends), out_dir=args.out,
        minimize=not args.no_minimize)
    doc = report.to_dict()
    if args.json:
        with open(args.json, "w") as fp:
            json.dump(doc, fp, indent=2, sort_keys=True)
            fp.write("\n")
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if not report.ok:
        print(f"{report.divergences} divergence(s) in {report.pairs} "
              f"pairs — case files under {args.out or '(not saved)'}",
              file=sys.stderr)
        return 1
    print(f"ok: {report.pairs} pairs, {report.programs} programs, "
          f"0 divergences in {report.elapsed_s:.1f}s", file=sys.stderr)
    return 0


def cmd_pairs(args: argparse.Namespace) -> int:
    report = run_pair_campaign(
        args.seed, budget_s=args.budget, min_pairs=args.min_pairs,
        max_pairs=args.max_pairs, out_dir=args.out,
        minimize=not args.no_minimize)
    doc = report.to_dict()
    if args.json:
        with open(args.json, "w") as fp:
            json.dump(doc, fp, indent=2, sort_keys=True)
            fp.write("\n")
    json.dump(doc, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if not report.ok:
        print(f"{report.false_accepts} false accept(s) in "
              f"{report.pairs} pairs — case files under "
              f"{args.out or '(not saved)'}", file=sys.stderr)
        return 1
    print(f"ok: {report.pairs} pairs, {report.divergent} divergent, "
          f"0 false accepts in {report.elapsed_s:.1f}s",
          file=sys.stderr)
    return 0


def _replay_wire(path: str, case: dict) -> bool:
    """Replay one wire-compatibility case; True iff healthy: the
    exchange still diverges AND the checker flags the pair."""
    report, divergences = run_wire_case(case)
    if divergences and not report.ok:
        print(f"ok    {path}  ({len(case['packets'])} packets, "
              f"verdict {report.verdict})")
        return True
    print(f"FAIL  {path}")
    if not divergences:
        print("      exchange no longer diverges (stale witness)")
    if report.ok:
        print(f"      checker accepts the pair ({report.verdict}) "
              f"despite the divergence — false accept regressed")
        for line in divergences[:3]:
            print(f"      {line}")
    return False


def cmd_replay(args: argparse.Namespace) -> int:
    backends = _parse_backends(args.backends)
    failed = 0
    for path in args.cases:
        with open(path) as fp:
            kind = json.load(fp).get("kind")
        if kind == WIRE_CASE_KIND:
            if not _replay_wire(path, load_wire_case(path)):
                failed += 1
            continue
        case = load_case(path)
        result = run_case(case, backends=backends)
        if result.ok:
            print(f"ok    {path}  ({len(case['packets'])} packets)")
            continue
        failed += 1
        print(f"FAIL  {path}")
        for d in result.divergences:
            print(f"      {d.backend}/{d.mode}: {d.detail}")
        if args.minimize:
            minimized, steps = minimize_case(case, backends=backends)
            save_case(minimized, path)
            print(f"      minimized to {len(minimized['packets'])} "
                  f"packets in {steps} steps — rewrote {path}")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.fuzzx",
        description="grammar-based differential fuzzing harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a bounded-time campaign")
    p_run.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default: 0)")
    p_run.add_argument("--budget", type=float, default=60.0,
                       metavar="SECONDS",
                       help="time budget; the --min-pairs floor still "
                            "applies (default: 60)")
    p_run.add_argument("--min-pairs", type=int, default=200, metavar="N",
                       help="minimum (program, stream) pairs (default: "
                            "200)")
    p_run.add_argument("--max-pairs", type=int, default=None,
                       metavar="N", help="hard cap on pairs")
    p_run.add_argument("--streams-per-program", type=int, default=4,
                       metavar="N")
    p_run.add_argument("--stream-len", type=int, default=12, metavar="N")
    p_run.add_argument("--batch-size", type=int, default=4, metavar="N")
    p_run.add_argument("--backends", metavar="B1,B2",
                       help="comma-separated backend subset (default: "
                            "all three)")
    p_run.add_argument("--out", metavar="DIR",
                       help="directory for minimized finding case files")
    p_run.add_argument("--json", metavar="PATH",
                       help="also write the report JSON to a file")
    p_run.add_argument("--no-minimize", action="store_true",
                       help="save findings unminimized")
    p_run.set_defaults(fn=cmd_run)

    p_pairs = sub.add_parser(
        "pairs", help="validate the wire-compat checker against "
                      "actual packet exchange")
    p_pairs.add_argument("--seed", type=int, default=0,
                         help="campaign seed (default: 0)")
    p_pairs.add_argument("--budget", type=float, default=60.0,
                         metavar="SECONDS",
                         help="time budget; the --min-pairs floor "
                              "still applies (default: 60)")
    p_pairs.add_argument("--min-pairs", type=int, default=150,
                         metavar="N",
                         help="minimum program pairs (default: 150)")
    p_pairs.add_argument("--max-pairs", type=int, default=None,
                         metavar="N", help="hard cap on pairs")
    p_pairs.add_argument("--out", metavar="DIR",
                         help="directory for minimized false-accept "
                              "case files")
    p_pairs.add_argument("--json", metavar="PATH",
                         help="also write the report JSON to a file")
    p_pairs.add_argument("--no-minimize", action="store_true",
                         help="save findings unminimized")
    p_pairs.set_defaults(fn=cmd_pairs)

    p_replay = sub.add_parser("replay", help="re-run case files")
    p_replay.add_argument("cases", nargs="+", metavar="CASE.json")
    p_replay.add_argument("--backends", metavar="B1,B2")
    p_replay.add_argument("--minimize", action="store_true",
                          help="shrink still-failing cases in place")
    p_replay.set_defaults(fn=cmd_replay)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
