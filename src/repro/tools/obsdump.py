"""``obsdump`` — inspect the observability layer from the shell.

    python -m repro.tools.obsdump demo
    python -m repro.tools.obsdump audio --quick
    python -m repro.tools.obsdump http --quick --events-limit 50
    python -m repro.tools.obsdump images --json out.json
    python -m repro.tools.obsdump mpeg --quick
    python -m repro.tools.obsdump microbench
    python -m repro.tools.obsdump chaos --lifecycle
    python -m repro.tools.obsdump upgrade --lifecycle
    python -m repro.tools.obsdump fuzz --quick
    python -m repro.tools.obsdump scale --shards 4
    python -m repro.tools.obsdump web --quick --overload

Each mode runs one scenario and dumps its metrics snapshot as sorted
JSON on stdout; ``--events`` additionally prints the structured event
log as JSON lines (``demo`` prints events by default — that is what it
is for).  ``--json PATH`` writes ``{"metrics": ..., "events": [...]}``
to a file instead, which is the shape the CI artifact uses.

``demo`` builds a deliberately eventful little network: an ASP deployed
over the wire, a congested bottleneck link dropping packets, and a
scripted link flap — so every event kind (``deploy``, ``drop``,
``fault``, ``jit``) shows up in one run.

``scale`` runs the ring-of-clusters workload through the sharded core
(DESIGN §13) with ``--shards N`` segments and prints the per-segment
window summary — events processed, horizon stalls, and boundary
crossings per segment — instead of raw metrics (use ``--json`` for
both).  Boundary-crossing tracing is enabled, so ``shard-boundary``
events show up under ``--events``.

``chaos`` runs the poisoned-ASP lifecycle drill (rollouts, breaker
trips, quarantine, automatic rollback); ``upgrade`` runs the
rolling-upgrade drill (a wire-incompatible generation vetoed before
its canary window, a compatible one promoted).  Combined with
``--lifecycle`` either prints the per-node lifecycle summary —
rollout generations, vetoes, trips, and rollbacks folded from the
event log — instead of raw metrics.

``web`` runs the overload drill (a SYN flood against the cluster with
the shedding defense on); ``--overload`` prints the per-node
shed/expired fold with the shedding ASP's lifecycle verdict, and
``--json`` always includes it as the ``overload`` key.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..obs import GLOBAL

MODES = ("demo", "audio", "http", "images", "mpeg", "microbench",
         "chaos", "upgrade", "fuzz", "scale", "web")


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def _run_demo() -> tuple[dict, list]:
    """A small network exercising every event kind."""
    from ..asps import audio_router_asp
    from ..net.topology import Network
    from ..runtime.netdeploy import DeploymentManager, DeploymentService

    net = Network(seed=7)
    manager_host = net.add_host("mgr")
    router = net.add_router("r1")
    sink = net.add_host("sink")
    uplink = net.link(manager_host, router, bandwidth=1e6)
    # A deliberately narrow bottleneck: pushing datagrams through it
    # overruns the 4-packet queue and produces drop events.
    net.link(router, sink, bandwidth=64_000, queue_limit=4)
    net.finalize()

    DeploymentService(net, router)
    manager = DeploymentManager(net, manager_host)
    manager.push(audio_router_asp(), [router.address])

    # Congestion: blast datagrams at the sink through the bottleneck.
    socket = net.udp(manager_host).bind()
    for i in range(40):
        net.sim.at(0.5 + i * 0.001,
                   lambda: socket.sendto(sink.address, 9, b"x" * 512))

    # A link flap mid-run (fault events + reconvergence).
    net.faults.at(1.0, net.faults.link_down, uplink)
    net.faults.at(1.5, net.faults.link_up, uplink)

    net.run(until=3.0)
    events = [record.to_dict() for record in net.obs.events.filter()]
    return net.metrics_snapshot(), events


def _run_audio(quick: bool) -> tuple[dict, list]:
    from ..apps.audio import run_audio_experiment

    result = run_audio_experiment(duration=10.0 if quick else 45.0)
    return result.metrics, []


def _run_http(quick: bool) -> tuple[dict, list]:
    from ..apps.http import run_http_experiment

    result = run_http_experiment(mode="asp", n_clients=4,
                                 duration=4.0 if quick else 12.0,
                                 warmup=1.0 if quick else 3.0)
    return result.metrics, []


def _run_images(quick: bool) -> tuple[dict, list]:
    from ..apps.images import run_image_experiment

    result = run_image_experiment(distillation=True)
    return result.metrics, []


def _run_mpeg(quick: bool) -> tuple[dict, list]:
    from ..apps.mpeg import run_mpeg_experiment

    result = run_mpeg_experiment(use_asps=True, n_clients=3,
                                 duration=5.0 if quick else 15.0)
    return result.metrics, []


def _run_chaos(quick: bool) -> tuple[dict, list]:
    """The poisoned-ASP lifecycle drill, with its full event log."""
    from ..experiments.chaos import run_chaos_experiment
    from ..obs import Observability

    obs = Observability()
    result = run_chaos_experiment(profile="drill",
                                  n_routers=4 if quick else 16,
                                  duration=8.0 if quick else 12.0,
                                  seed=5, obs=obs)
    events = [record.to_dict() for record in obs.events.filter()]
    return result.metrics, events


def _run_upgrade(quick: bool) -> tuple[dict, list]:
    """The rolling-upgrade drill: wire-compat veto + promotion, with
    its full event log (the CI veto/rollout artifact)."""
    from ..experiments.upgrade import run_upgrade_experiment
    from ..obs import Observability

    obs = Observability()
    result = run_upgrade_experiment(n_routers=4 if quick else 16,
                                    duration=8.0, seed=5, obs=obs)
    events = [record.to_dict() for record in obs.events.filter()]
    return result.metrics, events


def lifecycle_summary(events: list[dict]) -> dict:
    """Fold an event list into the ``--lifecycle`` view: rollout
    totals (including wire-compatibility vetoes with their verdicts),
    plus per-node installs, breaker trips, half-opens, closes,
    rollbacks, and the generation each node ended on."""
    totals = {"rollouts": 0, "promoted": 0, "aborted": 0,
              "vetoed": 0, "fleet_rollbacks": 0, "rollback_skips": 0}
    vetoes: list[dict] = []
    nodes: dict[str, dict] = {}

    def node(name: str) -> dict:
        return nodes.setdefault(name, {
            "installs": 0, "trips": 0, "half_opens": 0, "closes": 0,
            "rollbacks": 0, "generation": None})

    for event in events:
        kind = event.get("kind")
        action = event.get("action", "")
        if kind == "deploy" and action in ("install", "restore"):
            node(event["node"])["installs"] += 1
        elif kind == "rollout":
            if action == "stage":
                totals["rollouts"] += 1
            elif action in ("promote", "force-promote"):
                totals["promoted"] += 1
            elif action == "abort":
                totals["aborted"] += 1
            elif action == "veto":
                totals["vetoed"] += 1
                vetoes.append({
                    "rollout": event.get("rollout"),
                    "sha": event.get("sha"),
                    "against": event.get("against"),
                    "nodes": event.get("nodes"),
                    "verdict": event.get("verdict"),
                })
        elif kind == "quarantine":
            key = {"trip": "trips", "half-open": "half_opens",
                   "close": "closes"}.get(action)
            if key is not None:
                node(event["node"])[key] += 1
        elif kind == "rollback":
            if action == "start":
                totals["fleet_rollbacks"] += 1
            elif action == "skip":
                totals["rollback_skips"] += 1
            elif action == "node":
                entry = node(event["node"])
                entry["rollbacks"] += 1
                entry["generation"] = event.get("to_generation")
    return {"totals": totals,
            "vetoes": vetoes,
            "nodes": {name: nodes[name] for name in sorted(nodes)}}


def _run_web(quick: bool) -> tuple[dict, list]:
    """The overload drill (SYN flood with the shedding defense on),
    with its event log — shed/expired decisions at the endpoint,
    lifecycle events at the gateway."""
    from ..experiments.web import run_web_experiment
    from ..obs import Observability

    obs = Observability()
    result = run_web_experiment(attack="syn", shedding=True,
                                duration=5.0 if quick else 10.0,
                                warmup=1.5 if quick else 2.5,
                                seed=17, obs=obs)
    events = [record.to_dict() for record in obs.events.filter()]
    return result.metrics, events


def overload_summary(events: list[dict]) -> dict:
    """Fold an event list into the ``--overload`` view: endpoint shed
    and expiry decisions grouped per node and reason, plus the
    lifecycle verdict on the shedding ASP (trips / rollbacks), so one
    glance shows where the overload went and whether the defense
    itself stayed healthy."""
    totals = {"shed": 0, "expired": 0, "trips": 0, "rollbacks": 0}
    nodes: dict[str, dict] = {}

    def node(name: str) -> dict:
        return nodes.setdefault(name, {"shed": 0, "expired": 0,
                                       "reasons": {}})

    for event in events:
        kind = event.get("kind")
        if kind == "overload":
            entry = node(event.get("node", "?"))
            action = event.get("action", "")
            if action == "shed":
                totals["shed"] += 1
                entry["shed"] += 1
                reason = event.get("reason", "")
                entry["reasons"][reason] = (
                    entry["reasons"].get(reason, 0) + 1)
            elif action == "expired":
                totals["expired"] += 1
                entry["expired"] += 1
        elif kind == "quarantine" and event.get("action") == "trip":
            totals["trips"] += 1
        elif kind == "rollback" and event.get("action") == "start":
            totals["rollbacks"] += 1
    return {"totals": totals,
            "nodes": {name: nodes[name] for name in sorted(nodes)}}


def _run_fuzz(quick: bool) -> tuple[dict, list]:
    """A short differential-fuzzing campaign; the snapshot shows the
    ``fuzz.*`` counters (programs, streams, pairs, divergences,
    minimizer steps) a real ``fuzzx`` run would emit."""
    from ..fuzz import run_campaign

    run_campaign(7, budget_s=0.0, min_pairs=40 if quick else 200,
                 minimize=False)
    events = [record.to_dict() for record in GLOBAL.events.filter()]
    return GLOBAL.snapshot(), events


def _run_scale(quick: bool, shards: int) -> tuple[dict, list, dict]:
    """The ring-of-clusters workload on the sharded core, with
    boundary tracing on and a per-segment window summary."""
    from ..experiments.scale import build_scale_net, scale_until

    params = dict(n_clusters=4 if quick else 8,
                  hosts_per_cluster=3 if quick else 6,
                  packets_per_host=4)
    net = build_scale_net(params=params, seed=7, shard_segments=shards)
    if net._shard is not None:
        net._shard.trace_boundary = True
    net.run(until=scale_until(params))
    events = [record.to_dict() for record in net.obs.events.filter()]
    return net.metrics_snapshot(), events, shard_summary(net)


def shard_summary(net) -> dict:
    """Fold a sharded network's runner state into the ``scale`` view:
    windows, lookahead, cut links, and per-segment event counts,
    horizon stalls, and boundary crossings."""
    runner = net._shard
    if runner is None:
        return {"windows": 0, "segments": [],
                "note": "serial run (shard_segments=1)"}
    plan = runner.plan
    keep = ("events_processed", "pending_events", "horizon_stalls",
            "boundary_in", "boundary_out")
    return {
        "windows": runner.windows,
        "lookahead": plan.lookahead,
        "cross_links": plan.cross_links,
        "segments": [
            {"segment": i,
             "nodes": sum(1 for s in plan.assignment.values()
                          if s == i),
             **{key: value
                for key, value in runner._segment_stats(i).items()
                if key in keep}}
            for i in range(plan.segments)],
    }


def _run_microbench(quick: bool) -> tuple[dict, list]:
    from ..experiments.microbench import run_engine_microbench

    n = 2_000 if quick else 20_000
    for engine in ("interpreter", "closure", "source", "builtin"):
        run_engine_microbench(engine=engine, n_packets=n)
    events = [record.to_dict() for record in GLOBAL.events.filter()]
    return GLOBAL.snapshot(), events


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.obsdump",
        description="dump metrics snapshots and event logs")
    parser.add_argument("mode", choices=MODES, nargs="?", default="demo")
    parser.add_argument("--quick", action="store_true",
                        help="shrink scenario durations")
    parser.add_argument("--events", action="store_true",
                        help="also print the event log as JSON lines")
    parser.add_argument("--events-limit", type=int, default=None,
                        metavar="N", help="print at most N events")
    parser.add_argument("--json", metavar="PATH",
                        help="write {metrics, events} JSON to a file")
    parser.add_argument("--lifecycle", action="store_true",
                        help="summarize rollout generations, breaker "
                             "trips and rollbacks per node from the "
                             "event log (instead of raw metrics)")
    parser.add_argument("--overload", action="store_true",
                        help="summarize shed/expired decisions per "
                             "node and the shedding ASP's lifecycle "
                             "verdict from the event log (instead of "
                             "raw metrics)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="scale mode: run the topology sharded "
                             "into N segments (default 2) and print "
                             "the per-segment window summary")
    args = parser.parse_args(argv)

    shards_doc = None
    if args.mode == "demo":
        metrics, events = _run_demo()
        show_events = True
    elif args.mode == "microbench":
        metrics, events = _run_microbench(args.quick)
        show_events = args.events
    elif args.mode == "chaos":
        metrics, events = _run_chaos(args.quick)
        show_events = args.events
    elif args.mode == "upgrade":
        metrics, events = _run_upgrade(args.quick)
        show_events = args.events
    elif args.mode == "fuzz":
        metrics, events = _run_fuzz(args.quick)
        show_events = args.events
    elif args.mode == "web":
        metrics, events = _run_web(args.quick)
        show_events = args.events
    elif args.mode == "scale":
        metrics, events, shards_doc = _run_scale(
            args.quick, args.shards if args.shards is not None else 2)
        show_events = args.events
    else:
        runner = {"audio": _run_audio, "http": _run_http,
                  "images": _run_images, "mpeg": _run_mpeg}[args.mode]
        metrics, events = runner(args.quick)
        show_events = args.events and events

    if args.json:
        doc = {"mode": args.mode, "metrics": metrics, "events": events}
        if args.lifecycle:
            doc["lifecycle"] = lifecycle_summary(events)
        if args.overload or args.mode == "web":
            doc["overload"] = overload_summary(events)
        if shards_doc is not None:
            doc["shards"] = shards_doc
        with open(args.json, "w") as fp:
            json.dump(doc, fp, indent=2, sort_keys=True, default=str)
        print(f"wrote {args.json}", file=sys.stderr)
        return 0

    if args.lifecycle:
        json.dump(lifecycle_summary(events), sys.stdout, indent=2,
                  sort_keys=True, default=str)
        sys.stdout.write("\n")
        return 0

    if args.overload:
        json.dump(overload_summary(events), sys.stdout, indent=2,
                  sort_keys=True, default=str)
        sys.stdout.write("\n")
        return 0

    if shards_doc is not None:
        json.dump(shards_doc, sys.stdout, indent=2, sort_keys=True,
                  default=str)
        sys.stdout.write("\n")
        return 0

    json.dump(metrics, sys.stdout, indent=2, sort_keys=True, default=str)
    sys.stdout.write("\n")
    if show_events:
        limited = events[:args.events_limit] \
            if args.events_limit is not None else events
        for record in limited:
            sys.stdout.write(json.dumps(record, default=str) + "\n")
        if len(limited) < len(events):
            print(f"... {len(events) - len(limited)} more events",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
