"""``runx`` — the experiment harness CLI.

    python -m repro.tools.runx list [--matrix M] [--filter TAG]
    python -m repro.tools.runx run NAME [NAME...] [--workers N]
    python -m repro.tools.runx sweep --filter smoke --workers 2
    python -m repro.tools.runx sweep --matrix standard --workers 4

``list`` shows the scenario matrices (name, experiment, seed, tags);
``run`` executes specific scenarios by name; ``sweep`` executes a whole
(filtered) matrix.  Both consult the content-addressed result cache in
``--results`` (default ``results/``) and skip scenarios whose
(params, seed, code) already have a stored record — so re-running a
finished sweep is O(read), and an interrupted one resumes where it
stopped.  ``--no-cache`` forces re-runs; ``--require-cached`` exits
non-zero if anything actually had to run (the CI cache-hit assertion).

Each sweep also writes ``sweep.json`` next to the store: workers, wall
time, cache hits, per-scenario elapsed — the wall-clock side channel
that deliberately stays out of the deterministic records.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from ..harness import (Runner, ResultStore, Scenario, filter_scenarios,
                       matrix, rehydrate)

from ..harness.matrix import MATRICES

MATRIX_CHOICES = ("all", *sorted(MATRICES))


def _select(args: argparse.Namespace) -> list[Scenario]:
    return filter_scenarios(matrix(args.matrix), args.filter)


def _progress(kind: str, line: dict[str, Any]) -> None:
    if kind == "cached":
        print(f"  cache {line['scenario']}")
    else:
        print(f"  ran   {line['scenario']:32s} "
              f"{line['elapsed_s']:8.2f}s")


def _write_sweep_summary(store: ResultStore, report) -> None:
    doc = {
        "workers": report.workers,
        "wall_s": round(report.wall_s, 3),
        "cpu_count": os.cpu_count(),
        "ran": sorted(report.ran),
        "cached": sorted(report.cached),
        "elapsed_s": {line["scenario"]: line["elapsed_s"]
                      for line in report.lines
                      if line["scenario"] in set(report.ran)},
    }
    store.root.mkdir(parents=True, exist_ok=True)
    (store.root / "sweep.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n")


def cmd_list(args: argparse.Namespace) -> int:
    scenarios = _select(args)
    if not scenarios:
        print("no scenarios match", file=sys.stderr)
        return 1
    width = max(len(s.name) for s in scenarios)
    for s in scenarios:
        print(f"{s.name:{width}s}  {s.experiment:16s} seed={s.seed:<3d} "
              f"[{', '.join(sorted(s.tags))}]")
    print(f"{len(scenarios)} scenarios", file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    by_name = {s.name: s for s in matrix(args.matrix)}
    try:
        scenarios = [by_name[name] for name in args.names]
    except KeyError as exc:
        print(f"unknown scenario {exc.args[0]!r} (see `runx list`)",
              file=sys.stderr)
        return 2
    store = ResultStore(args.results)
    runner = Runner(store, workers=args.workers,
                    use_cache=not args.no_cache, progress=_progress)
    report = runner.sweep(scenarios)
    if args.json:
        by_name_lines = {line["scenario"]: line for line in report.lines}
        for name in args.names:
            result = rehydrate(by_name_lines[name])
            print(result.to_json())
    print(report.summary(), file=sys.stderr)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    scenarios = _select(args)
    if not scenarios:
        print("no scenarios match", file=sys.stderr)
        return 1
    store = ResultStore(args.results)
    runner = Runner(store, workers=args.workers,
                    use_cache=not args.no_cache, progress=_progress)
    report = runner.sweep(scenarios)
    _write_sweep_summary(store, report)
    print(report.summary(), file=sys.stderr)
    print(f"store: {store.path}", file=sys.stderr)
    if args.require_cached and report.ran:
        print(f"--require-cached: {len(report.ran)} scenarios were not "
              f"cached: {sorted(report.ran)}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.runx",
        description="declarative, parallel experiment harness")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--matrix", default="all",
                       choices=MATRIX_CHOICES,
                       help="scenario matrix (default: all)")
        p.add_argument("--results", default="results", metavar="DIR",
                       help="result store directory (default: results)")
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="parallel worker processes (default: 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="re-run even when a cached record exists")

    p_list = sub.add_parser("list", help="show scenarios")
    p_list.add_argument("--matrix", default="all",
                        choices=MATRIX_CHOICES)
    p_list.add_argument("--filter", metavar="TAG",
                        help="tag (exact) or name substring")
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="run scenarios by name")
    p_run.add_argument("names", nargs="+", metavar="NAME")
    p_run.add_argument("--json", action="store_true",
                       help="print each result's canonical JSON")
    common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_sweep = sub.add_parser("sweep", help="run a whole matrix")
    p_sweep.add_argument("--filter", metavar="TAG",
                         help="tag (exact) or name substring")
    p_sweep.add_argument("--require-cached", action="store_true",
                         help="fail if any scenario actually ran")
    common(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
