"""PLAN-P: adapting distributed applications with application-specific
protocols on extensible networks.

A reproduction of Thibault, Marant & Muller, "Adapting Distributed
Applications Using Extensible Networks" (ICDCS 1999 / INRIA RR-3484).

Package map:

* :mod:`repro.lang` — the PLAN-P language front end;
* :mod:`repro.interp` — values, primitives, the portable interpreter;
* :mod:`repro.jit` — the JIT generated from the interpreter;
* :mod:`repro.analysis` — the four install-time safety analyses;
* :mod:`repro.net` — the deterministic network simulator;
* :mod:`repro.runtime` — the IP/PLAN-P layer and deployment;
* :mod:`repro.asps` — the paper's five ASP programs;
* :mod:`repro.apps` — the audio / HTTP / MPEG applications;
* :mod:`repro.experiments` — benchmark harness helpers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
