"""Documentation consistency: LANGUAGE.md matches the implementation."""

import re
from pathlib import Path

from repro.interp.primitives import BUILTIN_EXCEPTIONS, PRIMITIVES

DOC = Path(__file__).resolve().parents[2] / "docs" / "LANGUAGE.md"


def doc_text() -> str:
    return DOC.read_text(encoding="utf-8")


def documented_primitives() -> set[str]:
    """Primitive names from the reference's family table."""
    names: set[str] = set()
    in_table = False
    for line in doc_text().splitlines():
        if line.startswith("| family |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            cells = [c.strip() for c in line.strip("|").split("|")]
            if len(cells) == 2 and not cells[1].startswith("-"):
                names.update(cells[1].replace("`", "").split())
    return names


def test_every_primitive_documented():
    missing = set(PRIMITIVES) - documented_primitives()
    assert not missing, f"primitives absent from LANGUAGE.md: {missing}"


def test_no_phantom_primitives_documented():
    phantom = documented_primitives() - set(PRIMITIVES)
    assert not phantom, f"LANGUAGE.md documents non-existent: {phantom}"


def test_builtin_exceptions_documented():
    text = doc_text()
    for name in BUILTIN_EXCEPTIONS:
        assert name in text, f"exception {name} missing from LANGUAGE.md"


def test_emission_forms_documented():
    text = doc_text()
    for form in ("OnRemote", "OnNeighbor", "deliver", "drop"):
        assert form in text


def test_grammar_keywords_documented():
    text = doc_text()
    for keyword in ("initstate", "channel", "handle", "andalso",
                    "orelse", "hash_table"):
        assert keyword in text
