"""Every shipped ASP survives a parse → unparse → parse round trip with
its verification verdict unchanged."""

import pytest

from repro.analysis import verify_report
from repro.asps import (audio_client_asp, audio_router_asp,
                        content_filter_asp, firewall_asp,
                        http_gateway_asp, image_distiller_asp,
                        link_compressor_asp, link_decompressor_asp,
                        mpeg_client_asp, mpeg_monitor_asp)
from repro.lang import parse, typecheck
from repro.lang.unparse import unparse

SHIPPED = {
    "audio-router": audio_router_asp(),
    "audio-client": audio_client_asp(),
    "http-gateway": http_gateway_asp("10.0.1.2",
                                     ["10.0.2.2", "10.0.3.2"]),
    "mpeg-monitor": mpeg_monitor_asp(),
    "mpeg-client": mpeg_client_asp(),
    "image-distiller": image_distiller_asp(),
    "compressor": link_compressor_asp(app_port=4444),
    "decompressor": link_decompressor_asp(app_port=4444),
    "content-filter": content_filter_asp("/x", "10.0.9.9"),
    "firewall": firewall_asp([23]),
}


@pytest.mark.parametrize("name", sorted(SHIPPED))
def test_roundtrip_preserves_text_fixpoint(name):
    program = parse(SHIPPED[name], name)
    text = unparse(program)
    assert unparse(parse(text, name)) == text


@pytest.mark.parametrize("name", sorted(SHIPPED))
def test_roundtrip_preserves_verification_verdict(name):
    original = verify_report(typecheck(parse(SHIPPED[name], name)))
    reparsed = verify_report(typecheck(parse(
        unparse(parse(SHIPPED[name], name)), name)))
    assert original.passed == reparsed.passed
    assert ([r.name for r in original.failures]
            == [r.name for r in reparsed.failures])
