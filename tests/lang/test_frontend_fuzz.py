"""Front-end robustness: arbitrary input never crashes the toolchain
with anything but its own typed errors (late checking must survive
hostile downloads, paper §2.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (LexError, ParseError, PlanPError, TypeCheckError,
                        parse, tokenize, typecheck)

# Text biased toward PLAN-P-looking fragments.
_planp_alphabet = st.sampled_from(list(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789"
    ' _\'"#()*,;:.<>=+-/^\\\n\t'))
planp_soup = st.text(alphabet=_planp_alphabet, max_size=300)

keywords = st.sampled_from([
    "val", "fun", "channel", "initstate", "is", "let", "in", "end",
    "if", "then", "else", "try", "handle", "raise", "true", "false",
    "int", "bool", "ip", "tcp", "udp", "blob", "hash_table",
    "OnRemote", "network", "ps", "ss", "p", "#1", "(", ")", ",", ";",
    ":", "=", "*", "123", '"str"', "10.0.0.1", "--c\n", "(*b*)",
])
keyword_soup = st.lists(keywords, max_size=60).map(" ".join)


@given(planp_soup)
@settings(max_examples=200, deadline=None)
def test_lexer_total(text):
    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens[-1].kind.name == "EOF"


@given(keyword_soup)
@settings(max_examples=200, deadline=None)
def test_parser_total(text):
    try:
        parse(text)
    except (LexError, ParseError):
        pass


@given(keyword_soup)
@settings(max_examples=150, deadline=None)
def test_full_pipeline_total(text):
    """parse + typecheck + verify raise only PlanPError subclasses."""
    from repro.analysis import verify_report

    try:
        info = typecheck(parse(text))
    except PlanPError:
        return
    report = verify_report(info)  # must not crash either way
    assert isinstance(report.passed, bool)


@given(st.binary(max_size=120))
@settings(max_examples=100, deadline=None)
def test_lexer_survives_binary_garbage(data):
    text = data.decode("latin-1")
    try:
        tokenize(text)
    except LexError:
        pass
