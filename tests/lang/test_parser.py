"""Parser unit tests."""

import pytest

from repro.lang import ParseError, parse, parse_expr
from repro.lang import ast
from repro.lang import types as T


class TestDeclarations:
    def test_val_decl(self):
        prog = parse("val x : int = 3\n"
                     "channel network(a : int, b : unit, "
                     "p : ip*tcp*blob) is (OnRemote(network, p); (a, b))")
        assert isinstance(prog.decls[0], ast.ValDecl)
        assert prog.decls[0].name == "x"
        assert prog.decls[0].declared == T.INT

    def test_fun_decl(self):
        prog = parse("fun f(a : int, b : int) : int = a + b")
        fun = prog.decls[0]
        assert isinstance(fun, ast.FunDecl)
        assert [p.name for p in fun.params] == ["a", "b"]
        assert fun.return_type == T.INT

    def test_channel_decl_with_initstate(self):
        prog = parse("channel network(ps : int, ss : (int) hash_table, "
                     "p : ip*tcp*blob) initstate mkTable(256) is (ps, ss)")
        chan = prog.channels[0]
        assert chan.initstate is not None
        assert isinstance(chan.initstate, ast.Call)

    def test_channel_needs_three_params(self):
        with pytest.raises(ParseError, match="three parameters"):
            parse("channel network(a : int, b : unit) is (a, b)")

    def test_exception_decl(self):
        prog = parse("exception Oops")
        assert isinstance(prog.decls[0], ast.ExceptionDecl)
        assert prog.decls[0].name == "Oops"

    def test_type_keyword_as_binding_name(self):
        # The paper writes ``val tcp : tcp = #2 p``.
        expr = parse_expr("let val tcp : tcp = #2 p in tcp end")
        assert isinstance(expr, ast.Let)
        assert expr.bindings[0].name == "tcp"

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError, match="expected a declaration"):
            parse("42")


class TestTypes:
    def _ty(self, text: str) -> T.Type:
        prog = parse(f"fun f(x : {text}) : int = 1")
        return prog.decls[0].params[0].declared

    def test_base_types(self):
        assert self._ty("int") == T.INT
        assert self._ty("host") == T.HOST
        assert self._ty("blob") == T.BLOB

    def test_tuple_type(self):
        assert self._ty("ip*tcp*blob") == T.TupleType((T.IP, T.TCP,
                                                       T.BLOB))

    def test_parenthesised_tuple_in_tuple(self):
        got = self._ty("(host*int)*bool")
        assert got == T.TupleType((T.TupleType((T.HOST, T.INT)), T.BOOL))

    def test_hash_table_type(self):
        assert self._ty("(int) hash_table") == T.HashTableType(T.INT)

    def test_nested_hash_table(self):
        got = self._ty("((int) list) hash_table")
        assert got == T.HashTableType(T.ListType(T.INT))

    def test_list_type(self):
        assert self._ty("(host) list") == T.ListType(T.HOST)

    def test_postfix_binds_tighter_than_star(self):
        got = self._ty("int hash_table*bool")
        assert got == T.TupleType((T.HashTableType(T.INT), T.BOOL))


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_precedence_cmp_over_bool(self):
        expr = parse_expr("a = 1 andalso b = 2")
        assert expr.op == "andalso"
        assert expr.left.op == "="

    def test_orelse_lower_than_andalso(self):
        expr = parse_expr("a andalso b orelse c")
        assert expr.op == "orelse"
        assert expr.left.op == "andalso"

    def test_comparison_non_associative(self):
        with pytest.raises(ParseError):
            parse_expr("1 = 2 = 3")

    def test_unary_minus(self):
        expr = parse_expr("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.UnOp)

    def test_not(self):
        expr = parse_expr("not a andalso b")
        assert expr.op == "andalso"
        assert isinstance(expr.left, ast.UnOp)

    def test_projection_binds_tightest(self):
        expr = parse_expr("#1 p + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Proj)

    def test_nested_projection(self):
        expr = parse_expr("#2 #1 p")
        assert isinstance(expr, ast.Proj) and expr.index == 2
        assert isinstance(expr.tuple_expr, ast.Proj)

    def test_projection_index_zero_rejected(self):
        with pytest.raises(ParseError, match=">= 1"):
            parse_expr("#0 p")

    def test_cons_right_associative(self):
        expr = parse_expr("1 :: 2 :: listNew()")
        assert expr.op == "::"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "::"

    def test_string_concat(self):
        expr = parse_expr('"a" ^ "b"')
        assert expr.op == "^"

    def test_call_no_args(self):
        expr = parse_expr("thisHost()")
        assert isinstance(expr, ast.Call)
        assert expr.args == []

    def test_call_with_args(self):
        expr = parse_expr("f(1, 2, 3)")
        assert len(expr.args) == 3

    def test_sequence(self):
        expr = parse_expr("(a; b; c)")
        assert isinstance(expr, ast.Seq)
        assert len(expr.exprs) == 3

    def test_tuple(self):
        expr = parse_expr("(1, 2)")
        assert isinstance(expr, ast.TupleExpr)

    def test_parenthesised_expression_is_transparent(self):
        expr = parse_expr("(1)")
        assert isinstance(expr, ast.IntLit)

    def test_let_multiple_bindings(self):
        expr = parse_expr(
            "let val a : int = 1 val b : int = a in a + b end")
        assert len(expr.bindings) == 2

    def test_let_requires_binding(self):
        with pytest.raises(ParseError):
            parse_expr("let in 1 end")

    def test_if_then_else(self):
        expr = parse_expr("if a then 1 else 2")
        assert isinstance(expr, ast.If)

    def test_try_handle(self):
        expr = parse_expr("try f(x) handle NotFound => 0")
        assert isinstance(expr, ast.Try)
        assert expr.exn == "NotFound"

    def test_try_wildcard(self):
        expr = parse_expr("try f(x) handle _ => 0")
        assert expr.exn == "_"

    def test_raise(self):
        expr = parse_expr("raise NotFound")
        assert isinstance(expr, ast.Raise)

    def test_ip_literal_expression(self):
        expr = parse_expr("10.1.2.3")
        assert isinstance(expr, ast.HostLit)
        assert expr.value == "10.1.2.3"

    def test_unit_literal(self):
        assert isinstance(parse_expr("()"), ast.UnitLit)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing input"):
            parse_expr("1 2")

    def test_missing_end_reports_position(self):
        with pytest.raises(ParseError) as err:
            parse_expr("let val a : int = 1 in a")
        assert "end" in str(err.value)


class TestPaperFragments:
    def test_figure2_fragment_parses(self):
        """The load-balancing fragment of the paper's figure 2 (with the
        elided pieces filled in)."""
        source = """
channel network(ps : int, ss : (int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcp : tcp = #2 p
    val body : blob = #3 p
  in
    if (tcpDst(tcp) = 80) then
      -- incoming HTTP requests
      let
        val con : int = tableGetDefault(ss, ipSrc(iph), 0)
      in
        if (con = 0) then
          (OnRemote(network, (ipDestSet(iph, 131.254.60.81), tcp, body));
           (con, ss))
        else
          (OnRemote(network, (ipDestSet(iph, 131.254.60.109), tcp, body));
           (con, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
"""
        prog = parse(source)
        assert len(prog.channels) == 1

    def test_figure4_overloaded_channels_parse(self):
        source = """
val CmdA : int = 1
val CmdB : int = 2

channel network(ps : unit, ss : unit, p : ip*tcp*char*int) is
  if charPos(#3 p) = CmdA then
    (print("CmdA: "); println(#4 p); deliver(p); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))

channel network(ps : unit, ss : unit, p : ip*tcp*char*bool) is
  if charPos(#3 p) = CmdB then
    (print("CmdB: "); println(#4 p); deliver(p); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
        prog = parse(source)
        assert len(prog.channels) == 2
