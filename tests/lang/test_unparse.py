"""Pretty-printer tests and the parse/unparse round-trip property."""

from hypothesis import given, settings

from repro.lang import parse, parse_expr
from repro.lang.unparse import unparse, unparse_expr, unparse_type
from repro.lang import types as T

from .. import strategies


class TestUnparseType:
    def test_atomic(self):
        assert unparse_type(T.INT) == "int"

    def test_tuple(self):
        assert unparse_type(T.TupleType((T.IP, T.TCP, T.BLOB))) == \
            "ip*tcp*blob"

    def test_hash_table(self):
        assert unparse_type(T.HashTableType(T.TupleType(
            (T.HOST, T.INT)))) == "(host*int) hash_table"

    def test_roundtrips_through_parser(self):
        for t in (T.INT, T.TupleType((T.IP, T.TCP, T.BLOB)),
                  T.HashTableType(T.INT), T.ListType(T.HOST),
                  T.TupleType((T.TupleType((T.HOST, T.INT)), T.BOOL))):
            source = f"fun f(x : {unparse_type(t)}) : int = 1"
            prog = parse(source)
            assert prog.decls[0].params[0].declared == t


class TestUnparseExpr:
    def test_string_escaping(self):
        expr = parse_expr(r'"a\nb\"c"')
        again = parse_expr(unparse_expr(expr))
        assert again.value == expr.value

    def test_char(self):
        expr = parse_expr('#"Z"')
        assert parse_expr(unparse_expr(expr)).value == "Z"

    def test_precedence_preserved(self):
        expr = parse_expr("1 + 2 * 3")
        again = parse_expr(unparse_expr(expr))
        assert unparse_expr(again) == unparse_expr(expr)

    def test_projection(self):
        expr = parse_expr("#2 #1 p")
        assert unparse_expr(expr) == "#2 #1 p"


class TestProgramRoundTrip:
    def test_fixed_program(self):
        source = """\
val x : int = 3
exception Oops
fun f(a : int) : int = (a + x)
channel network(ps : int, ss : (int) hash_table, p : ip*tcp*blob) \
initstate mkTable(16) is (OnRemote(network, p); (f(ps), ss))
"""
        prog = parse(source)
        text = unparse(prog)
        assert unparse(parse(text)) == text

    @given(strategies.programs())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, source):
        """unparse is a fixed point: parse(unparse(parse(s))) prints the
        same text as parse(s)."""
        prog = parse(source)
        text = unparse(prog)
        assert unparse(parse(text)) == text
