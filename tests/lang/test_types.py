"""Type-language unit tests."""

from repro.lang import types as T


class TestEquality:
    def test_atomic_singletons_equal(self):
        assert T.INT == T.IntType()
        assert T.INT != T.BOOL

    def test_tuple_equality(self):
        assert T.TupleType((T.IP, T.TCP)) == T.TupleType((T.IP, T.TCP))
        assert T.TupleType((T.IP, T.TCP)) != T.TupleType((T.IP, T.UDP))

    def test_container_equality(self):
        assert T.HashTableType(T.INT) == T.HashTableType(T.INT)
        assert T.ListType(T.INT) != T.ListType(T.BOOL)

    def test_types_are_hashable(self):
        s = {T.INT, T.BOOL, T.TupleType((T.INT, T.BOOL)),
             T.HashTableType(T.INT)}
        assert len(s) == 4


class TestPrinting:
    def test_atomic_names(self):
        assert str(T.INT) == "int"
        assert str(T.BLOB) == "blob"
        assert str(T.IP) == "ip"

    def test_tuple_printing(self):
        assert str(T.TupleType((T.IP, T.TCP, T.BLOB))) == "ip*tcp*blob"

    def test_nested_tuple_parenthesised(self):
        t = T.TupleType((T.TupleType((T.HOST, T.INT)), T.BOOL))
        assert str(t) == "(host*int)*bool"

    def test_hash_table_printing(self):
        assert str(T.HashTableType(T.INT)) == "(int) hash_table"


class TestCompatible:
    def test_any_matches_everything(self):
        assert T.compatible(T.ANY, T.INT)
        assert T.compatible(T.HashTableType(T.INT), T.ANY)

    def test_any_inside_container(self):
        assert T.compatible(T.HashTableType(T.INT),
                            T.HashTableType(T.ANY))

    def test_tuple_componentwise(self):
        assert T.compatible(T.TupleType((T.INT, T.ANY)),
                            T.TupleType((T.INT, T.BOOL)))
        assert not T.compatible(T.TupleType((T.INT, T.BOOL)),
                                T.TupleType((T.BOOL, T.BOOL)))

    def test_tuple_arity_must_match(self):
        assert not T.compatible(T.TupleType((T.INT, T.INT)),
                                T.TupleType((T.INT, T.INT, T.INT)))

    def test_mismatched_atoms(self):
        assert not T.compatible(T.INT, T.BOOL)


class TestEqualityTypes:
    def test_scalars_admit_equality(self):
        for t in (T.INT, T.BOOL, T.STRING, T.CHAR, T.HOST, T.BLOB):
            assert T.is_equality_type(t)

    def test_hash_table_does_not(self):
        assert not T.is_equality_type(T.HashTableType(T.INT))

    def test_headers_do_not(self):
        assert not T.is_equality_type(T.IP)
        assert not T.is_equality_type(T.TCP)

    def test_tuple_of_equality_types(self):
        assert T.is_equality_type(T.TupleType((T.HOST, T.INT)))
        assert not T.is_equality_type(T.TupleType((T.HOST, T.IP)))


class TestPacketTypes:
    def test_classic_packet_type(self):
        assert T.is_packet_type(T.TupleType((T.IP, T.TCP, T.BLOB)))
        assert T.is_packet_type(T.TupleType((T.IP, T.UDP, T.BLOB)))

    def test_overload_views(self):
        assert T.is_packet_type(T.TupleType((T.IP, T.TCP, T.CHAR,
                                             T.INT)))
        assert T.is_packet_type(T.TupleType((T.IP, T.UDP, T.HOST,
                                             T.INT)))

    def test_raw_packet(self):
        assert T.is_packet_type(T.TupleType((T.IP, T.BLOB)))

    def test_must_start_with_ip(self):
        assert not T.is_packet_type(T.TupleType((T.TCP, T.BLOB)))

    def test_no_table_views(self):
        bad = T.TupleType((T.IP, T.TCP, T.HashTableType(T.INT)))
        assert not T.is_packet_type(bad)

    def test_non_tuple_is_not_packet(self):
        assert not T.is_packet_type(T.BLOB)
