"""Lexer unit tests."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # strip EOF


def single(source):
    toks = tokenize(source)
    assert len(toks) == 2, f"expected one token, got {toks}"
    return toks[0]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert kinds("  \t \n\r\n ") == []

    def test_integer(self):
        tok = single("42")
        assert tok.kind is TokenKind.INT
        assert tok.value == 42

    def test_zero(self):
        assert single("0").value == 0

    def test_large_integer(self):
        assert single("4294967295").value == 4294967295

    def test_identifier(self):
        tok = single("fooBar_3")
        assert tok.kind is TokenKind.IDENT
        assert tok.value == "fooBar_3"

    def test_identifier_with_prime(self):
        assert single("x'").value == "x'"

    def test_keywords(self):
        assert kinds("val fun channel initstate is let in end") == [
            TokenKind.VAL, TokenKind.FUN, TokenKind.CHANNEL,
            TokenKind.INITSTATE, TokenKind.IS, TokenKind.LET,
            TokenKind.IN, TokenKind.END]

    def test_type_keywords(self):
        assert kinds("int bool host blob hash_table") == [
            TokenKind.TINT, TokenKind.TBOOL, TokenKind.THOST,
            TokenKind.TBLOB, TokenKind.THASHTABLE]

    def test_bool_literals(self):
        assert kinds("true false") == [TokenKind.TRUE, TokenKind.FALSE]


class TestOperators:
    def test_arithmetic(self):
        assert kinds("+ - * / mod ^") == [
            TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR,
            TokenKind.SLASH, TokenKind.MOD, TokenKind.CARET]

    def test_comparisons(self):
        assert kinds("= <> < > <= >=") == [
            TokenKind.EQ, TokenKind.NEQ, TokenKind.LT, TokenKind.GT,
            TokenKind.LE, TokenKind.GE]

    def test_two_char_tokens_not_split(self):
        assert kinds("<=>") == [TokenKind.LE, TokenKind.GT]

    def test_unit_token(self):
        assert kinds("()") == [TokenKind.UNIT]

    def test_parens_with_space_are_not_unit(self):
        assert kinds("( )") == [TokenKind.LPAREN, TokenKind.RPAREN]

    def test_arrow_and_cons(self):
        assert kinds("=> ::") == [TokenKind.ARROW, TokenKind.CONS]

    def test_projection_hash(self):
        assert kinds("#1 p") == [TokenKind.HASH, TokenKind.INT,
                                 TokenKind.IDENT]


class TestStringsAndChars:
    def test_simple_string(self):
        tok = single('"hello"')
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hello"

    def test_empty_string(self):
        assert single('""').value == ""

    def test_string_escapes(self):
        assert single(r'"a\nb\tc\"d\\e"').value == 'a\nb\tc"d\\e'

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"abc')

    def test_string_with_newline_rejected(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_bad_escape(self):
        with pytest.raises(LexError, match="bad string escape"):
            tokenize(r'"\q"')

    def test_char_literal(self):
        tok = single('#"A"')
        assert tok.kind is TokenKind.CHAR
        assert tok.value == "A"

    def test_char_escape(self):
        assert single(r'#"\n"').value == "\n"

    def test_unterminated_char(self):
        with pytest.raises(LexError, match="unterminated char"):
            tokenize('#"A')


class TestIpAddresses:
    def test_ip_literal(self):
        tok = single("131.254.60.81")
        assert tok.kind is TokenKind.IPADDR
        assert tok.value == "131.254.60.81"

    def test_ip_group_out_of_range(self):
        with pytest.raises(LexError, match="out of range"):
            tokenize("1.2.3.256")

    def test_two_dotted_groups_rejected(self):
        with pytest.raises(LexError, match="malformed IP"):
            tokenize("1.2")

    def test_int_then_ident(self):
        assert kinds("3 x") == [TokenKind.INT, TokenKind.IDENT]


class TestComments:
    def test_line_comment(self):
        assert kinds("1 -- comment here\n2") == [TokenKind.INT,
                                                 TokenKind.INT]

    def test_line_comment_at_eof(self):
        assert kinds("1 -- no newline") == [TokenKind.INT]

    def test_block_comment(self):
        assert kinds("1 (* skip *) 2") == [TokenKind.INT, TokenKind.INT]

    def test_nested_block_comment(self):
        assert kinds("1 (* a (* b *) c *) 2") == [TokenKind.INT,
                                                  TokenKind.INT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated block"):
            tokenize("1 (* oops")

    def test_minus_minus_is_comment_not_double_negation(self):
        assert kinds("--1\n2") == [TokenKind.INT]


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("val\n  x")
        assert toks[0].pos.line == 1
        assert toks[0].pos.column == 1
        assert toks[1].pos.line == 2
        assert toks[1].pos.column == 3

    def test_position_after_comment(self):
        toks = tokenize("-- c\nfoo")
        assert toks[0].pos.line == 2

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a @ b")
