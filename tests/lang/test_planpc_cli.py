"""``planpc`` CLI tests."""

import pytest

from repro.tools.planpc import main

GOOD = """\
val x : int = 3
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + x, ss))
"""

UNSAFE = """\
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); OnRemote(network, p); (ps, ss))
"""


@pytest.fixture
def good(tmp_path):
    path = tmp_path / "good.planp"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def unsafe(tmp_path):
    path = tmp_path / "unsafe.planp"
    path.write_text(UNSAFE)
    return str(path)


class TestCheck:
    def test_good_program(self, good, capsys):
        assert main(["check", good]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "channel network" in out

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "broken.planp"
        path.write_text("channel (")
        assert main(["check", str(path)]) == 1
        assert "broken.planp" in capsys.readouterr().err

    def test_type_error(self, tmp_path, capsys):
        path = tmp_path / "typed.planp"
        path.write_text(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (true, ss))")
        assert main(["check", str(path)]) == 1

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.planp"]) == 2


class TestVerify:
    def test_accepts_safe(self, good, capsys):
        assert main(["verify", good]) == 0
        out = capsys.readouterr().out
        assert "ACCEPTED" in out
        assert out.count("PASS") == 4

    def test_rejects_unsafe(self, unsafe, capsys):
        assert main(["verify", unsafe]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "FAIL duplication" in out


class TestCompile:
    @pytest.mark.parametrize("backend", ["interpreter", "closure",
                                         "source"])
    def test_compile_backends(self, good, backend, capsys):
        assert main(["compile", good, "--backend", backend]) == 0
        assert "compiled" in capsys.readouterr().out

    def test_emit_requires_source_backend(self, good, capsys):
        assert main(["compile", good, "--emit"]) == 2

    def test_emit_prints_python(self, good, capsys):
        assert main(["compile", good, "--backend", "source",
                     "--emit"]) == 0
        out = capsys.readouterr().out
        assert "def C_network_0(" in out
        compile(out.split("ms\n", 1)[1], "<emitted>", "exec")


class TestFmtAndBench:
    def test_fmt_output_reparses(self, good, capsys, tmp_path):
        assert main(["fmt", good]) == 0
        text = capsys.readouterr().out
        again = tmp_path / "again.planp"
        again.write_text(text)
        assert main(["check", str(again)]) == 0

    def test_bench_reports_all_engines(self, good, capsys):
        assert main(["bench", good, "-n", "200"]) == 0
        out = capsys.readouterr().out
        for engine in ("interpreter", "closure", "source"):
            assert engine in out

    def test_bench_paper_asp(self, tmp_path, capsys):
        from repro.asps import http_gateway_asp

        path = tmp_path / "gw.planp"
        path.write_text(http_gateway_asp("10.0.1.2",
                                         ["10.0.2.2", "10.0.3.2"]))
        assert main(["bench", str(path), "-n", "200"]) == 0
